//! Old-vs-new per-round scoring latency for the batched `Policy` path,
//! plus serial-vs-parallel scaling for the [`ScorePool`] engine.
//!
//! The pre-redesign UCB round scored one event at a time — clone `θ̂`,
//! allocate a `Vector` per event for the confidence width, allocate the
//! oracle's order/mask scratch and a fresh `Arrangement` — while the
//! batched path (`select_into` + `ScoreWorkspace`) runs the same
//! arithmetic through `widths_into` with zero steady-state allocations.
//! This bench times three paths on identical estimator state:
//!
//! * `legacy`   — the reconstructed pre-redesign scalar round
//!   (skipped at `|V| ≥ 100k`, where one call alone would blow the
//!   measurement budget);
//! * `batched`  — serial `select_into`;
//! * `parallel` — `select_into` through an 8-thread [`ScorePool`].
//!
//! All paths produce bit-identical scores and arrangements (asserted
//! before timing), so every ratio is pure overhead, not numerics. The
//! grid is `|V| ∈ {100, 1k, 10k}` × `d ∈ {5, 20}` plus the large cells
//! `|V| = 100k (d = 20)` and `|V| = 1M (d = 5)` that the parallel
//! engine exists for.
//!
//! `parallel_speedup` is meaningful only when the host actually has
//! cores to scale onto — the JSON records `host_cores` next to
//! `threads` so a single-core CI container's ≈1.0× is read as a
//! machine property, not a regression.
//!
//! Output: one line per cell on stdout. When `FASEA_BENCH_JSON` names a
//! file, the measured table is also written there as JSON — that is how
//! the committed `BENCH_scoring.json` is produced:
//!
//! ```text
//! FASEA_BENCH_JSON=BENCH_scoring.json cargo bench --bench scoring_hot_path
//! ```
//!
//! `FASEA_BENCH_MS` bounds the per-measurement budget as in the other
//! benches (default 300 ms), so CI can smoke-run the whole file in a
//! couple of seconds without touching the committed numbers.

use fasea_bandit::{
    GreedyOracle, LinUcb, Oracle, OracleWorkspace, Policy, RidgeEstimator, ScorePool, SelectionView,
};
use fasea_core::{Arrangement, ConflictGraph, ContextMatrix, EventId, Feedback};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pool width for the parallel column (the ISSUE's scaling target is
/// quoted at 8 threads).
const POOL_THREADS: usize = 8;

/// Cells at or above this `|V|` skip the legacy path: the per-event
/// allocating round is ~100× slower, so a single call would eat the
/// whole budget without telling us anything new.
const LEGACY_CUTOFF: usize = 100_000;

/// The pre-redesign scalar UCB scoring round, kept verbatim: per-round
/// `θ̂` clone, per-event `Vector` allocation inside `confidence_width`,
/// and a cold greedy-oracle call (fresh workspace and arrangement every
/// round, the legacy `oracle_greedy` allocation profile).
struct LegacyUcb {
    estimator: RidgeEstimator,
    alpha: f64,
    scores: Vec<f64>,
}

impl LegacyUcb {
    fn select(&mut self, view: &SelectionView<'_>) -> Arrangement {
        let n = view.num_events();
        self.scores.resize(n, 0.0);
        let theta = self.estimator.theta_hat().clone();
        for v in 0..n {
            let x = view.contexts.context(EventId(v));
            let point = fasea_linalg::dot_slices(x, theta.as_slice());
            let width = self.estimator.confidence_width(x);
            self.scores[v] = point + self.alpha * width;
        }
        let mut ws = OracleWorkspace::new();
        let mut out = Arrangement::empty();
        GreedyOracle.arrange_into(
            &self.scores,
            view.conflicts,
            view.remaining,
            view.user_capacity,
            &mut ws,
            &mut out,
        );
        out
    }
}

/// Deterministic xorshift so fixtures need no `rand` dependency.
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct Cell {
    num_events: usize,
    dim: usize,
    /// `None` for the large cells where the legacy path is skipped.
    legacy_ns: Option<f64>,
    batched_ns: f64,
    parallel_ns: f64,
}

fn budget() -> Duration {
    let ms = std::env::var("FASEA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(10))
}

/// Mean ns per call of `f`, measured in ~1 ms batches until the budget
/// is spent (same scheme as the workspace's criterion stand-in).
fn time_ns(budget: Duration, mut f: impl FnMut()) -> f64 {
    let warm_start = Instant::now();
    while warm_start.elapsed() < budget / 10 {
        f();
    }
    let probe_start = Instant::now();
    f();
    let probe = probe_start.elapsed().max(Duration::from_nanos(20));
    let batch = (Duration::from_millis(1).as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;

    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    let run_start = Instant::now();
    while run_start.elapsed() < budget {
        let batch_start = Instant::now();
        for _ in 0..batch {
            f();
        }
        total += batch_start.elapsed();
        iters += batch;
    }
    total.as_nanos() as f64 / iters.max(1) as f64
}

fn bench_cell(num_events: usize, dim: usize, budget: Duration, pool: &Arc<ScorePool>) -> Cell {
    let mut rng = XorShift(0x5C0_71A6 ^ (num_events as u64) << 8 ^ dim as u64);
    let contexts = ContextMatrix::from_fn(num_events, dim, |_, _| rng.next_f64());
    // A sparse conflict graph, enough for the oracle's mask checks to
    // run but not to dominate timing.
    let pairs: Vec<(usize, usize)> = (0..num_events / 10)
        .map(|i| (i, i + num_events / 2))
        .collect();
    let conflicts = ConflictGraph::from_pairs(num_events, &pairs);
    let remaining = vec![u32::MAX; num_events];
    let cu = 5u32;

    // Warm a policy so Y⁻¹ and θ̂ are non-trivial, then clone its
    // estimator into the legacy path: all paths score the same model.
    // Large cells get a short warm-up — the estimator state only needs
    // to be non-trivial, and 32 full scans of |V| = 1M are pure wait.
    let warm_rounds = if num_events >= LEGACY_CUTOFF { 2 } else { 32 };
    let mut policy = LinUcb::new(dim, 1.0, 2.0);
    let mut out = Arrangement::empty();
    for t in 0..warm_rounds {
        let view = SelectionView {
            t,
            user_capacity: cu,
            contexts: &contexts,
            conflicts: &conflicts,
            remaining: &remaining,
        };
        policy.select_into(&view, &mut out);
        let fb = Feedback::new(
            (0..out.len())
                .map(|i| (t as usize + i).is_multiple_of(2))
                .collect(),
        );
        policy.observe(t, &contexts, &out, &fb);
    }

    let view = SelectionView {
        t: warm_rounds,
        user_capacity: cu,
        contexts: &contexts,
        conflicts: &conflicts,
        remaining: &remaining,
    };

    // Serial reference: scores + arrangement every other path must hit.
    policy.select_into(&view, &mut out);
    let serial_out = out.clone();
    let serial_scores: Vec<f64> = policy.last_scores().expect("scores after select").to_vec();

    let run_legacy = num_events < LEGACY_CUTOFF;
    let legacy_ns = run_legacy.then(|| {
        // Same scores, same arrangement — the paths differ only in cost.
        let mut legacy = LegacyUcb {
            estimator: policy.estimator().clone(),
            alpha: policy.alpha(),
            scores: Vec::new(),
        };
        let legacy_out = legacy.select(&view);
        assert_eq!(legacy_out.events(), serial_out.events(), "paths diverge");
        for (v, (l, s)) in legacy.scores.iter().zip(&serial_scores).enumerate() {
            assert_eq!(l.to_bits(), s.to_bits(), "legacy score {v} differs in bits");
        }
        time_ns(budget, || {
            black_box(legacy.select(black_box(&view)).len());
        })
    });

    let batched_ns = time_ns(budget, || {
        policy.select_into(black_box(&view), &mut out);
        black_box(out.len());
    });

    // Parallel: install the shared pool, prove bit-equality against the
    // serial reference, then time the identical call.
    policy
        .workspace_mut()
        .set_score_pool(Some(Arc::clone(pool)));
    policy.select_into(&view, &mut out);
    assert_eq!(out.events(), serial_out.events(), "parallel path diverges");
    let pooled_scores = policy.last_scores().expect("scores after pooled select");
    for (v, (p, s)) in pooled_scores.iter().zip(&serial_scores).enumerate() {
        assert_eq!(
            p.to_bits(),
            s.to_bits(),
            "parallel score {v} differs in bits"
        );
    }
    let parallel_ns = time_ns(budget, || {
        policy.select_into(black_box(&view), &mut out);
        black_box(out.len());
    });
    policy.workspace_mut().set_score_pool(None);

    Cell {
        num_events,
        dim,
        legacy_ns,
        batched_ns,
        parallel_ns,
    }
}

fn main() {
    let budget = budget();
    let pool = ScorePool::shared(POOL_THREADS).expect("multi-thread pool");
    // Keep worker-thread startup out of the first cell's timing.
    pool.wait_ready();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host_cores == 1 {
        println!(
            "warning: single-core host — parallel_speedup < 1 measures ScorePool \
             dispatch overhead, not a scaling regression"
        );
    }

    let grid: &[(usize, usize)] = &[
        (100, 5),
        (100, 20),
        (1_000, 5),
        (1_000, 20),
        (10_000, 5),
        (10_000, 20),
        // The cells the parallel engine exists for; legacy is skipped.
        (100_000, 20),
        (1_000_000, 5),
    ];
    let mut cells = Vec::new();
    for &(num_events, dim) in grid {
        let cell = bench_cell(num_events, dim, budget, &pool);
        let legacy = cell
            .legacy_ns
            .map_or_else(|| "      (skipped)".into(), |ns| format!("{ns:>12.1} ns"));
        println!(
            "scoring_hot_path/UCB/{}x{:<20} legacy: {legacy}   batched: {:>12.1} ns   parallel[{}t]: {:>12.1} ns   par speedup: {:.2}x",
            cell.num_events,
            cell.dim,
            cell.batched_ns,
            POOL_THREADS,
            cell.parallel_ns,
            cell.batched_ns / cell.parallel_ns,
        );
        cells.push(cell);
    }

    if let Ok(path) = std::env::var("FASEA_BENCH_JSON") {
        let mut json = format!(
            "{{\n  \"bench\": \"scoring_hot_path\",\n  \"policy\": \"UCB\",\n  \"units\": \"ns_per_round\",\n  \"threads\": {POOL_THREADS},\n  \"host_cores\": {host_cores},\n  \"cells\": [\n",
        );
        for (i, c) in cells.iter().enumerate() {
            let (legacy_ns, legacy_speedup) = match c.legacy_ns {
                Some(ns) => (format!("{ns:.1}"), format!("{:.2}", ns / c.batched_ns)),
                None => ("null".into(), "null".into()),
            };
            json.push_str(&format!(
                "    {{\"num_events\": {}, \"dim\": {}, \"legacy_ns\": {legacy_ns}, \"batched_ns\": {:.1}, \"parallel_ns\": {:.1}, \"speedup\": {legacy_speedup}, \"parallel_speedup\": {:.2}}}{}\n",
                c.num_events,
                c.dim,
                c.batched_ns,
                c.parallel_ns,
                c.batched_ns / c.parallel_ns,
                if i + 1 == cells.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write FASEA_BENCH_JSON");
        println!("wrote {path}");
    }
}

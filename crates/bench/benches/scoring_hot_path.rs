//! Old-vs-new per-round scoring latency for the batched `Policy` path.
//!
//! The pre-redesign UCB round scored one event at a time — clone `θ̂`,
//! allocate a `Vector` per event for the confidence width, allocate the
//! oracle's order/mask scratch and a fresh `Arrangement` — while the
//! batched path (`select_into` + `ScoreWorkspace`) runs the same
//! arithmetic through `widths_into` with zero steady-state allocations.
//! This bench times both paths on identical estimator state at
//! `|V| ∈ {100, 1k, 10k}` × `d ∈ {5, 20}` and reports the speedup.
//!
//! The legacy path below is a line-for-line reconstruction of the old
//! `LinUcb::select`; both paths produce bit-identical scores (asserted
//! before timing), so the comparison is pure overhead, not numerics.
//!
//! Output: one line per cell on stdout. When `FASEA_BENCH_JSON` names a
//! file, the measured table is also written there as JSON — that is how
//! the committed `BENCH_scoring.json` is produced:
//!
//! ```text
//! FASEA_BENCH_JSON=BENCH_scoring.json cargo bench --bench scoring_hot_path
//! ```
//!
//! `FASEA_BENCH_MS` bounds the per-measurement budget as in the other
//! benches (default 300 ms), so CI can smoke-run the whole file in a
//! couple of seconds without touching the committed numbers.

use fasea_bandit::{oracle_greedy, LinUcb, Policy, RidgeEstimator, SelectionView};
use fasea_core::{Arrangement, ConflictGraph, ContextMatrix, EventId, Feedback};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The pre-redesign scalar UCB scoring round, kept verbatim: per-round
/// `θ̂` clone, per-event `Vector` allocation inside `confidence_width`,
/// allocating `oracle_greedy`.
struct LegacyUcb {
    estimator: RidgeEstimator,
    alpha: f64,
    scores: Vec<f64>,
}

impl LegacyUcb {
    fn select(&mut self, view: &SelectionView<'_>) -> Arrangement {
        let n = view.num_events();
        self.scores.resize(n, 0.0);
        let theta = self.estimator.theta_hat().clone();
        for v in 0..n {
            let x = view.contexts.context(EventId(v));
            let point = fasea_linalg::dot_slices(x, theta.as_slice());
            let width = self.estimator.confidence_width(x);
            self.scores[v] = point + self.alpha * width;
        }
        oracle_greedy(
            &self.scores,
            view.conflicts,
            view.remaining,
            view.user_capacity,
        )
    }
}

/// Deterministic xorshift so fixtures need no `rand` dependency.
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct Cell {
    num_events: usize,
    dim: usize,
    legacy_ns: f64,
    batched_ns: f64,
}

fn budget() -> Duration {
    let ms = std::env::var("FASEA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(10))
}

/// Mean ns per call of `f`, measured in ~1 ms batches until the budget
/// is spent (same scheme as the workspace's criterion stand-in).
fn time_ns(budget: Duration, mut f: impl FnMut()) -> f64 {
    let warm_start = Instant::now();
    while warm_start.elapsed() < budget / 10 {
        f();
    }
    let probe_start = Instant::now();
    f();
    let probe = probe_start.elapsed().max(Duration::from_nanos(20));
    let batch = (Duration::from_millis(1).as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;

    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    let run_start = Instant::now();
    while run_start.elapsed() < budget {
        let batch_start = Instant::now();
        for _ in 0..batch {
            f();
        }
        total += batch_start.elapsed();
        iters += batch;
    }
    total.as_nanos() as f64 / iters.max(1) as f64
}

fn bench_cell(num_events: usize, dim: usize, budget: Duration) -> Cell {
    let mut rng = XorShift(0x5C0_71A6 ^ (num_events as u64) << 8 ^ dim as u64);
    let contexts = ContextMatrix::from_fn(num_events, dim, |_, _| rng.next_f64());
    // A sparse conflict graph, enough for the oracle's mask checks to
    // run but not to dominate timing.
    let pairs: Vec<(usize, usize)> = (0..num_events / 10)
        .map(|i| (i, i + num_events / 2))
        .collect();
    let conflicts = ConflictGraph::from_pairs(num_events, &pairs);
    let remaining = vec![u32::MAX; num_events];
    let cu = 5u32;

    // Warm a policy so Y⁻¹ and θ̂ are non-trivial, then clone its
    // estimator into the legacy path: both score the same model.
    let mut policy = LinUcb::new(dim, 1.0, 2.0);
    let mut out = Arrangement::empty();
    for t in 0..32u64 {
        let view = SelectionView {
            t,
            user_capacity: cu,
            contexts: &contexts,
            conflicts: &conflicts,
            remaining: &remaining,
        };
        policy.select_into(&view, &mut out);
        let fb = Feedback::new(
            (0..out.len())
                .map(|i| (t as usize + i).is_multiple_of(2))
                .collect(),
        );
        policy.observe(t, &contexts, &out, &fb);
    }
    let mut legacy = LegacyUcb {
        estimator: policy.estimator().clone(),
        alpha: policy.alpha(),
        scores: Vec::new(),
    };

    let view = SelectionView {
        t: 32,
        user_capacity: cu,
        contexts: &contexts,
        conflicts: &conflicts,
        remaining: &remaining,
    };

    // Same scores, same arrangement — the two paths differ only in cost.
    let legacy_out = legacy.select(&view);
    policy.select_into(&view, &mut out);
    assert_eq!(legacy_out.events(), out.events(), "paths diverge");
    let batched_scores = policy.last_scores().expect("scores after select");
    for (v, (b, l)) in batched_scores.iter().zip(&legacy.scores).enumerate() {
        assert_eq!(b.to_bits(), l.to_bits(), "score {v} differs in bits");
    }

    let legacy_ns = time_ns(budget, || {
        black_box(legacy.select(black_box(&view)).len());
    });
    let batched_ns = time_ns(budget, || {
        policy.select_into(black_box(&view), &mut out);
        black_box(out.len());
    });
    Cell {
        num_events,
        dim,
        legacy_ns,
        batched_ns,
    }
}

fn main() {
    let budget = budget();
    let mut cells = Vec::new();
    for &num_events in &[100usize, 1_000, 10_000] {
        for &dim in &[5usize, 20] {
            let cell = bench_cell(num_events, dim, budget);
            println!(
                "scoring_hot_path/UCB/{}x{:<24} legacy: {:>12.1} ns   batched: {:>12.1} ns   speedup: {:.2}x",
                cell.num_events,
                cell.dim,
                cell.legacy_ns,
                cell.batched_ns,
                cell.legacy_ns / cell.batched_ns,
            );
            cells.push(cell);
        }
    }

    if let Ok(path) = std::env::var("FASEA_BENCH_JSON") {
        let mut json = String::from(
            "{\n  \"bench\": \"scoring_hot_path\",\n  \"policy\": \"UCB\",\n  \"units\": \"ns_per_round\",\n  \"cells\": [\n",
        );
        for (i, c) in cells.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"num_events\": {}, \"dim\": {}, \"legacy_ns\": {:.1}, \"batched_ns\": {:.1}, \"speedup\": {:.2}}}{}\n",
                c.num_events,
                c.dim,
                c.legacy_ns,
                c.batched_ns,
                c.legacy_ns / c.batched_ns,
                if i + 1 == cells.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write FASEA_BENCH_JSON");
        println!("wrote {path}");
    }
}

//! Ablation benches for the design choices called out in DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fasea_linalg::{Cholesky, Matrix, ShermanMorrisonInverse, Vector};
use fasea_stats::{kendall_tau, kendall_tau_naive};
use std::hint::black_box;

/// Sherman–Morrison O(d²) maintenance vs a full O(d³) re-factorisation
/// per observation — the paper's complexity analysis assumes the latter.
fn bench_inverse_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_inverse");
    for &d in &[10usize, 20, 64] {
        let x = Vector::from_fn(d, |i| (i as f64 * 0.29).sin() / (d as f64).sqrt());
        group.bench_with_input(BenchmarkId::new("sherman_morrison", d), &d, |b, _| {
            let mut sm = ShermanMorrisonInverse::new(d, 1.0);
            b.iter(|| {
                sm.rank1_update(&x).unwrap();
                black_box(sm.y_inv()[(0, 0)])
            })
        });
        group.bench_with_input(BenchmarkId::new("full_refactor", d), &d, |b, _| {
            let mut y = Matrix::scaled_identity(d, 1.0);
            b.iter(|| {
                y.add_outer(&x, 1.0);
                let inv = Cholesky::factor(&y).unwrap().inverse();
                black_box(inv[(0, 0)])
            })
        });
    }
    group.finish();
}

/// Knight's O(n log n) Kendall τ vs the naive O(n²) pair count — the
/// harness computes τ at ~110 checkpoints per Figure 2 run over up to
/// |V| = 1000 events.
fn bench_kendall(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_kendall");
    for &n in &[100usize, 500, 1000] {
        let a: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761) % 1000003) as f64)
            .collect();
        let b_: Vec<f64> = (0..n).map(|i| ((i * 40503 + 7) % 999983) as f64).collect();
        group.bench_with_input(BenchmarkId::new("merge_sort", n), &n, |bch, _| {
            bch.iter(|| black_box(kendall_tau(&a, &b_).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| black_box(kendall_tau_naive(&a, &b_).unwrap()))
        });
    }
    group.finish();
}

/// Common random numbers: the counter-hash draw vs a seeded-RNG draw per
/// coin — justifying the stateless CRN design on the hot feedback path.
fn bench_crn(c: &mut Criterion) {
    use fasea_stats::CoinStream;
    use rand::Rng as _;
    let mut group = c.benchmark_group("ablation_crn");
    let stream = CoinStream::new(42);
    group.bench_function("counter_hash", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(stream.uniform(t, 17))
        })
    });
    group.bench_function("seeded_stdrng_per_draw", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let mut rng = fasea_stats::rng_from_seed(t);
            black_box(rng.gen::<f64>())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inverse_maintenance, bench_kendall, bench_crn);
criterion_main!(benches);

//! Pipelined round-engine throughput at *equal durability* (every
//! acked round fsynced before the caller proceeds), at two layers:
//!
//! * **sim** — the [`RoundPipeline`] driving a durable service with
//!   group commit: depth 1 is the sequential loop; depth ≥ 2 prefetches
//!   round t+1's contexts and `score_into` kernel work while round t's
//!   feedback record waits in the commit queue. Even on one core the
//!   overlap is real — the fsync is I/O wait, not compute — but the
//!   *compute* overlap only materialises with cores to spare.
//! * **serve** — a loopback server at `pipeline_depth` ∈ {1, 4} under
//!   four concurrent clients: depth 1 admits one round at a time (each
//!   client's claim waits for the previous round's feedback), depth 4
//!   grants four consecutive rounds at once so network turnaround and
//!   speculative scoring overlap.
//!
//! Output: one line per cell on stdout. When `FASEA_BENCH_JSON` names a
//! file, the measured table is also written there as JSON — that is how
//! the committed `BENCH_pipeline.json` is produced:
//!
//! ```text
//! FASEA_BENCH_MS=2000 FASEA_BENCH_JSON=BENCH_pipeline.json \
//!     cargo bench --bench pipeline_throughput
//! ```
//!
//! `FASEA_BENCH_MS` bounds the per-cell measurement window (default
//! 300 ms) so CI can smoke-run the file without touching committed
//! numbers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use fasea_bandit::LinUcb;
use fasea_core::EventId;
use fasea_datagen::{SyntheticConfig, SyntheticWorkload};
use fasea_serve::{ClientConfig, ServeClient, Server, ServerConfig};
use fasea_sim::{DurableArrangementService, DurableOptions, RoundPipeline};
use fasea_stats::CoinStream;
use fasea_store::FsyncPolicy;

const SEED: u64 = 0x919E_5EED;
const NUM_EVENTS: usize = 30;
const DIM: usize = 5;
const CLIENTS: usize = 4;
const CHUNK: u64 = 64;

fn workload() -> SyntheticWorkload {
    SyntheticWorkload::generate(SyntheticConfig {
        num_events: NUM_EVENTS,
        dim: DIM,
        seed: SEED,
        ..SyntheticConfig::default()
    })
}

fn budget() -> Duration {
    let ms = std::env::var("FASEA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(10))
}

fn durable_opts() -> DurableOptions {
    DurableOptions::new()
        .with_fsync(FsyncPolicy::Always)
        .with_group_commit(true)
}

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fasea-bench-pipe-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Cell {
    layer: &'static str,
    depth: usize,
    clients: usize,
    rounds: u64,
    rounds_per_sec: f64,
}

/// Sim layer: the pipelined engine against a group-commit durable
/// service, timed over `window` in fixed-size chunks.
fn run_sim_cell(depth: usize, window: Duration) -> Cell {
    let dir = tmp(&format!("sim-{depth}"));
    let w = workload();
    let mut svc = DurableArrangementService::open(
        &dir,
        w.instance.clone(),
        Box::new(LinUcb::new(DIM, 1.0, 2.0)),
        durable_opts(),
    )
    .unwrap();
    let coins = CoinStream::new(SEED ^ 0xFEED);
    let mut pipe = RoundPipeline::new(depth);
    let started = Instant::now();
    let deadline = started + window;
    while Instant::now() < deadline {
        let upto = svc.rounds_completed() + CHUNK;
        pipe.run(
            &mut svc,
            upto,
            |t| w.arrivals.arrival(t),
            |t, a| {
                let arrival = w.arrivals.arrival(t);
                a.events()
                    .iter()
                    .map(|&v| {
                        coins.uniform(t, v.index() as u64)
                            < w.model.accept_probability(&arrival.contexts, v)
                    })
                    .collect()
            },
            None,
        )
        .unwrap();
    }
    let elapsed = started.elapsed();
    let rounds = svc.rounds_completed();
    svc.close().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    Cell {
        layer: "sim",
        depth,
        clients: 1,
        rounds,
        rounds_per_sec: rounds as f64 / elapsed.as_secs_f64(),
    }
}

fn drive_one_round(client: &mut ServeClient, workload: &SyntheticWorkload, coins: &CoinStream) {
    let claimed = client.claim().unwrap();
    let t = claimed.t;
    let arrival = workload.arrivals.arrival(t);
    let arrangement = match claimed.pending {
        Some(pending) => pending,
        None => {
            client
                .propose(
                    arrival.capacity,
                    NUM_EVENTS as u32,
                    DIM as u32,
                    arrival.contexts.as_slice().to_vec(),
                )
                .unwrap()
                .1
        }
    };
    let accepts: Vec<bool> = arrangement
        .iter()
        .map(|&v| {
            coins.uniform(t, v as u64)
                < workload
                    .model
                    .accept_probability(&arrival.contexts, EventId(v as usize))
        })
        .collect();
    client.feedback(&accepts).unwrap();
}

/// Serve layer: four concurrent loopback clients against a server at
/// the given admission depth, group commit on, fsync before ack.
fn run_serve_cell(depth: usize, window: Duration) -> Cell {
    let dir = tmp(&format!("serve-{depth}"));
    let svc = DurableArrangementService::open(
        &dir,
        workload().instance,
        Box::new(LinUcb::new(DIM, 1.0, 2.0)),
        durable_opts(),
    )
    .unwrap();
    let handle = Server::spawn(
        svc,
        "127.0.0.1:0",
        ServerConfig {
            workers: CLIENTS,
            pipeline_depth: depth,
            stats_interval: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();

    // Warm up the connection path outside the timed window.
    {
        let wl = workload();
        let coins = CoinStream::new(SEED ^ 0xFEED);
        let mut client = ServeClient::connect(addr.clone(), ClientConfig::default()).unwrap();
        for _ in 0..4 {
            drive_one_round(&mut client, &wl, &coins);
        }
    }

    let completed = AtomicU64::new(0);
    let started = Instant::now();
    let deadline = started + window;
    crossbeam::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let addr = addr.clone();
            let completed = &completed;
            s.spawn(move |_| {
                let wl = workload();
                let coins = CoinStream::new(SEED ^ 0xFEED);
                let mut client = ServeClient::connect(
                    addr,
                    ClientConfig {
                        read_timeout: Duration::from_secs(120),
                        ..ClientConfig::default()
                    },
                )
                .unwrap();
                while Instant::now() < deadline {
                    drive_one_round(&mut client, &wl, &coins);
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    })
    .unwrap();
    let elapsed = started.elapsed();

    handle.initiate_shutdown();
    let report = handle.join();
    assert!(report.close.error.is_none(), "{:?}", report.close.error);
    let _ = std::fs::remove_dir_all(&dir);

    let rounds = completed.load(Ordering::Relaxed);
    Cell {
        layer: "serve",
        depth,
        clients: CLIENTS,
        rounds,
        rounds_per_sec: rounds as f64 / elapsed.as_secs_f64(),
    }
}

fn main() {
    let window = budget();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_depth = 4usize;
    if host_cores < max_depth {
        println!(
            "WARNING: host has {host_cores} core(s) but the deepest measured pipeline_depth \
             is {max_depth} — prefetch and speculation have no spare cores to run on, so \
             depth>1 numbers measure I/O overlap only and UNDERSTATE multi-core scaling. \
             Re-baseline on a host with >= {max_depth} cores before quoting speedups."
        );
    }

    let mut cells = Vec::new();
    for depth in [1usize, 2, 4] {
        let cell = run_sim_cell(depth, window);
        println!(
            "pipeline_throughput/sim/depth={}   {:>8} rounds   {:>10.1} rounds/sec",
            cell.depth, cell.rounds, cell.rounds_per_sec,
        );
        cells.push(cell);
    }
    for depth in [1usize, 4] {
        let cell = run_serve_cell(depth, window);
        println!(
            "pipeline_throughput/serve/depth={}/clients={}   {:>8} rounds   {:>10.1} rounds/sec",
            cell.depth, cell.clients, cell.rounds, cell.rounds_per_sec,
        );
        cells.push(cell);
    }

    let baseline = |layer: &str| {
        cells
            .iter()
            .find(|c| c.layer == layer && c.depth == 1)
            .map(|c| c.rounds_per_sec)
    };
    for c in cells.iter().filter(|c| c.depth > 1) {
        if let Some(base) = baseline(c.layer) {
            println!(
                "{} depth {} vs depth 1: {:.2}x",
                c.layer,
                c.depth,
                c.rounds_per_sec / base,
            );
        }
    }

    if let Ok(path) = std::env::var("FASEA_BENCH_JSON") {
        // `check-bench` rejects >1x speedups on a single-core host
        // unless the table says where they come from.
        let caveat = if host_cores == 1 {
            "\n  \"caveat\": \"single-core host: depth>1 gains reflect overlap with fsync I/O wait only; compute overlap needs more cores (see the bench's stdout warning)\","
        } else {
            ""
        };
        let mut json = format!(
            "{{\n  \"bench\": \"pipeline_throughput\",\n  \"units\": \"rounds_per_sec\",\n  \"durability\": \"fsync_before_ack\",\n  \"host_cores\": {host_cores},{caveat}\n  \"cells\": [\n",
        );
        for (i, c) in cells.iter().enumerate() {
            let speedup = match (c.depth, baseline(c.layer)) {
                (d, Some(base)) if d > 1 => format!("{:.2}", c.rounds_per_sec / base),
                _ => "null".into(),
            };
            json.push_str(&format!(
                "    {{\"layer\": \"{}\", \"pipeline_depth\": {}, \"clients\": {}, \"rounds\": {}, \"rounds_per_sec\": {:.1}, \"speedup_vs_depth1\": {speedup}}}{}\n",
                c.layer,
                c.depth,
                c.clients,
                c.rounds,
                c.rounds_per_sec,
                if i + 1 == cells.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write FASEA_BENCH_JSON");
        println!("wrote {path}");
    }
}

//! Table 5 (time column): average per-round latency of each algorithm
//! at |V| ∈ {100, 500, 1000}, default d = 20.
//!
//! Each iteration plays one full policy round: score every event,
//! run Oracle-Greedy, and absorb the feedback. Expected shape (paper):
//! Random ≪ eGreedy ≈ Exploit < TS < UCB, with UCB's cost growing
//! fastest in |V| (it pays an O(d²) confidence bound per event).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fasea_bandit::SelectionView;
use fasea_bench::{policy_by_name, RoundFixture, POLICY_NAMES};
use fasea_core::Feedback;
use std::hint::black_box;

fn bench_round_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_latency");
    group.sample_size(20);
    for &num_events in &[100usize, 500, 1000] {
        let fixture = RoundFixture::new(num_events, 20);
        let remaining: Vec<u32> = vec![u32::MAX; num_events];
        for name in POLICY_NAMES {
            let mut policy = policy_by_name(name, 20);
            let mut t = 0u64;
            group.bench_with_input(BenchmarkId::new(name, num_events), &num_events, |b, _| {
                b.iter(|| {
                    let view = SelectionView {
                        t,
                        user_capacity: 3,
                        contexts: &fixture.arrival.contexts,
                        conflicts: fixture.workload.instance.conflicts(),
                        remaining: &remaining,
                    };
                    let arrangement = policy.select(&view);
                    let fb = Feedback::new(vec![false; arrangement.len()]);
                    policy.observe(t, &fixture.arrival.contexts, &arrangement, &fb);
                    t += 1;
                    black_box(arrangement.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_round_latency);
criterion_main!(benches);

//! Serving-layer benches: full claim→propose→feedback round latency
//! over loopback TCP (single client, varying worker counts), aggregate
//! multi-client throughput, and the pure wire codec cost.
//!
//! Uses `FsyncPolicy::Never` so the numbers measure the serving stack
//! (framing, actor hop, scheduling), not the disk.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fasea_bandit::LinUcb;
use fasea_core::EventId;
use fasea_datagen::{SyntheticConfig, SyntheticWorkload};
use fasea_serve::{
    decode_request, encode_request, ClientConfig, Request, ServeClient, Server, ServerConfig,
    ServerHandle,
};
use fasea_sim::{DurableArrangementService, DurableOptions};
use fasea_stats::CoinStream;
use fasea_store::FsyncPolicy;
use std::hint::black_box;

const SEED: u64 = 0xBE7C_5EED;
const NUM_EVENTS: usize = 30;
const DIM: usize = 5;

fn workload() -> SyntheticWorkload {
    SyntheticWorkload::generate(SyntheticConfig {
        num_events: NUM_EVENTS,
        dim: DIM,
        seed: SEED,
        ..SyntheticConfig::default()
    })
}

fn start_server(tag: &str, workers: usize) -> (ServerHandle, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "fasea-bench-serve-{tag}-{workers}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let svc = DurableArrangementService::open(
        &dir,
        workload().instance,
        Box::new(LinUcb::new(DIM, 1.0, 2.0)),
        DurableOptions::new().with_fsync(FsyncPolicy::Never),
    )
    .unwrap();
    let handle = Server::spawn(
        svc,
        "127.0.0.1:0",
        ServerConfig {
            workers,
            stats_interval: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (handle, dir)
}

fn drive_one_round(
    client: &mut ServeClient,
    workload: &SyntheticWorkload,
    coins: &CoinStream,
) -> u64 {
    let claimed = client.claim().unwrap();
    let t = claimed.t;
    let arrival = workload.arrivals.arrival(t);
    let arrangement = match claimed.pending {
        Some(pending) => pending,
        None => {
            client
                .propose(
                    arrival.capacity,
                    NUM_EVENTS as u32,
                    DIM as u32,
                    arrival.contexts.as_slice().to_vec(),
                )
                .unwrap()
                .1
        }
    };
    let accepts: Vec<bool> = arrangement
        .iter()
        .map(|&v| {
            coins.uniform(t, v as u64)
                < workload
                    .model
                    .accept_probability(&arrival.contexts, EventId(v as usize))
        })
        .collect();
    client.feedback(&accepts).unwrap().0
}

/// One full protocol round over loopback, single session, as a function
/// of the worker pool size (1 vs 4 — the actor serialises rounds either
/// way; this measures the pool's overhead, not parallel speedup).
fn bench_round_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_round_latency");
    for &workers in &[1usize, 4] {
        let (handle, dir) = start_server("latency", workers);
        let addr = handle.local_addr().to_string();
        let wl = workload();
        let coins = CoinStream::new(SEED ^ 0xFEED);
        let mut client = ServeClient::connect(addr, ClientConfig::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| black_box(drive_one_round(&mut client, &wl, &coins)))
        });
        drop(client);
        handle.initiate_shutdown();
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Aggregate rounds/sec with concurrent sessions contending for the
/// sequential round stream.
fn bench_multi_client_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    const BATCH: u64 = 64;
    group.throughput(Throughput::Elements(BATCH));
    for &clients in &[1usize, 4] {
        let (handle, dir) = start_server("throughput", 4);
        let addr = handle.local_addr().to_string();
        group.bench_with_input(BenchmarkId::new("clients", clients), &clients, |b, _| {
            b.iter(|| {
                let done = AtomicU64::new(0);
                crossbeam::thread::scope(|s| {
                    for _ in 0..clients {
                        let addr = addr.clone();
                        let done = &done;
                        s.spawn(move |_| {
                            let wl = workload();
                            let coins = CoinStream::new(SEED ^ 0xFEED);
                            let mut client = ServeClient::connect(
                                addr,
                                ClientConfig {
                                    read_timeout: Duration::from_secs(120),
                                    ..ClientConfig::default()
                                },
                            )
                            .unwrap();
                            while done.fetch_add(1, Ordering::Relaxed) < BATCH {
                                drive_one_round(&mut client, &wl, &coins);
                            }
                        });
                    }
                })
                .unwrap();
            })
        });
        handle.initiate_shutdown();
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// The codec alone: encode + decode one PROPOSE payload (the largest
/// request — `|V| × d` context doubles).
fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_codec");
    let request = Request::Propose {
        user_capacity: 3,
        num_events: NUM_EVENTS as u32,
        dim: DIM as u32,
        contexts: (0..NUM_EVENTS * DIM).map(|i| i as f64 * 0.01).collect(),
    };
    let encoded = encode_request(42, &request);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("propose_encode", |b| {
        b.iter(|| black_box(encode_request(42, &request)))
    });
    group.bench_function("propose_decode", |b| {
        b.iter(|| black_box(decode_request(&encoded).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_round_latency,
    bench_multi_client_throughput,
    bench_codec
);
criterion_main!(benches);

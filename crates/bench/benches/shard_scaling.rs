//! Sharded-service round throughput: rounds/sec of the in-process
//! [`ShardedArrangementService`] at 1, 2 and 4 shards against the
//! single-actor [`DurableArrangementService`] baseline on the same
//! workload.
//!
//! The sharded service is byte-identical to the baseline (see
//! `tests/shard_parity.rs`), so this bench isolates the *cost of the
//! machinery*: per-round the coordinator stages scores, fans
//! `subset_top_k` queries out to the shard actors, merges the ranked
//! candidates, and commits the accepted write sets with durable
//! prepares plus a commit fan-out. Both sides run `FsyncPolicy::Never`
//! so the numbers compare coordination overhead, not disk stalls —
//! with fsync on, per-shard logs would additionally spread the fsync
//! load across files.
//!
//! Output: one line per cell on stdout. When `FASEA_BENCH_JSON` names
//! a file, the measured table is also written there as JSON — that is
//! how the committed `BENCH_shard.json` is produced:
//!
//! ```text
//! FASEA_BENCH_MS=2000 FASEA_BENCH_JSON=BENCH_shard.json \
//!     cargo bench --bench shard_scaling
//! ```
//!
//! `FASEA_BENCH_MS` bounds the per-cell measurement window (default
//! 300 ms) so CI can smoke-run the file without touching committed
//! numbers.

use std::time::{Duration, Instant};

use fasea_bandit::LinUcb;
use fasea_core::EventId;
use fasea_datagen::{SyntheticConfig, SyntheticWorkload};
use fasea_shard::ShardedArrangementService;
use fasea_sim::{DurableArrangementService, DurableOptions};
use fasea_stats::CoinStream;
use fasea_store::FsyncPolicy;

const SEED: u64 = 0x0005_AA2D_BE7C;
const NUM_EVENTS: usize = 200;
const DIM: usize = 5;

fn workload() -> SyntheticWorkload {
    SyntheticWorkload::generate(SyntheticConfig {
        num_events: NUM_EVENTS,
        dim: DIM,
        seed: SEED,
        ..SyntheticConfig::default()
    })
}

fn budget() -> Duration {
    let ms = std::env::var("FASEA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(10))
}

fn opts() -> DurableOptions {
    DurableOptions::new()
        .with_fsync(FsyncPolicy::Never)
        .with_segment_bytes(u64::MAX)
}

struct Cell {
    mode: &'static str,
    shards: usize,
    rounds: u64,
    rounds_per_sec: f64,
}

/// One feedback round against whichever service: CRN acceptance coins
/// keyed on (t, event) so every cell sees the identical trajectory.
macro_rules! drive_round {
    ($svc:expr, $wl:expr, $coins:expr) => {{
        let t = $svc.rounds_completed();
        let arrival = $wl.arrivals.arrival(t);
        let arrangement = $svc.propose(&arrival).unwrap();
        let accepts: Vec<bool> = arrangement
            .events()
            .iter()
            .map(|&v| {
                $coins.uniform(t, v.index() as u64)
                    < $wl
                        .model
                        .accept_probability(&arrival.contexts, EventId(v.index()))
            })
            .collect();
        $svc.feedback(&accepts).unwrap();
    }};
}

fn run_cell(mode: &'static str, shards: usize, window: Duration) -> Cell {
    let dir = std::env::temp_dir().join(format!(
        "fasea-bench-shard-scaling-{mode}-{shards}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wl = workload();
    let coins = CoinStream::new(SEED ^ 0xFEED);
    let policy = Box::new(LinUcb::new(DIM, 1.0, 2.0));

    let mut rounds = 0u64;
    let started;
    let elapsed;
    if shards == 0 {
        let mut svc =
            DurableArrangementService::open(&dir, wl.instance.clone(), policy, opts()).unwrap();
        // Warm-up outside the timed window.
        for _ in 0..8 {
            drive_round!(svc, wl, coins);
        }
        started = Instant::now();
        let deadline = started + window;
        while Instant::now() < deadline {
            drive_round!(svc, wl, coins);
            rounds += 1;
        }
        elapsed = started.elapsed();
        svc.close().unwrap();
    } else {
        let mut svc =
            ShardedArrangementService::open(&dir, wl.instance.clone(), policy, opts(), shards)
                .unwrap();
        for _ in 0..8 {
            drive_round!(svc, wl, coins);
        }
        started = Instant::now();
        let deadline = started + window;
        while Instant::now() < deadline {
            drive_round!(svc, wl, coins);
            rounds += 1;
        }
        elapsed = started.elapsed();
        svc.close().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);

    Cell {
        mode,
        shards,
        rounds,
        rounds_per_sec: rounds as f64 / elapsed.as_secs_f64(),
    }
}

fn main() {
    let window = budget();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host_cores == 1 {
        println!(
            "warning: single-core host — the coordinator and every shard actor \
             share one core, so the fan-out rounds are pure overhead and shard \
             scaling is understated"
        );
    }

    let grid: &[(&'static str, usize)] = &[
        ("single_actor", 0),
        ("sharded", 1),
        ("sharded", 2),
        ("sharded", 4),
    ];
    let mut cells = Vec::new();
    for &(mode, shards) in grid {
        let cell = run_cell(mode, shards, window);
        println!(
            "shard_scaling/{}/shards={}   {:>8} rounds   {:>10.1} rounds/sec",
            cell.mode, cell.shards, cell.rounds, cell.rounds_per_sec,
        );
        cells.push(cell);
    }

    let baseline = cells
        .iter()
        .find(|c| c.mode == "single_actor")
        .map(|c| c.rounds_per_sec);
    if let Some(base) = baseline {
        for c in cells.iter().filter(|c| c.mode == "sharded") {
            println!(
                "sharded({}) vs single_actor: {:.2}x",
                c.shards,
                c.rounds_per_sec / base,
            );
        }
    }

    if let Ok(path) = std::env::var("FASEA_BENCH_JSON") {
        let mut json = format!(
            "{{\n  \"bench\": \"shard_scaling\",\n  \"units\": \"rounds_per_sec\",\n  \"fsync\": \"never\",\n  \"host_cores\": {host_cores},\n  \"cells\": [\n",
        );
        for (i, c) in cells.iter().enumerate() {
            let relative = match baseline {
                Some(base) if c.mode == "sharded" => format!("{:.2}", c.rounds_per_sec / base),
                _ => "null".into(),
            };
            json.push_str(&format!(
                "    {{\"mode\": \"{}\", \"shards\": {}, \"rounds\": {}, \"rounds_per_sec\": {:.1}, \"relative_to_single_actor\": {relative}}}{}\n",
                c.mode,
                c.shards,
                c.rounds,
                c.rounds_per_sec,
                if i + 1 == cells.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write FASEA_BENCH_JSON");
        println!("wrote {path}");
    }
}

//! End-to-end serving throughput: rounds/sec over loopback TCP as a
//! function of commit mode × concurrent client count, at *equal
//! durability* (every acked round is fsynced before the client sees
//! the reply).
//!
//! `per_round_fsync` is the PR 1/2 baseline: `FsyncPolicy::Always`
//! through the synchronous WAL, so every propose and every feedback
//! pays its own fsync before the actor replies. `group_commit` keeps
//! the identical acked-implies-durable guarantee but batches the
//! fsyncs: the actor applies rounds in memory, withholds the replies,
//! and the commit syncer releases each ack the moment its batch's
//! watermark covers it — N concurrent sessions share one fsync. The
//! headline cell is `group_commit` at 4 clients vs `per_round_fsync`
//! at 4 clients: the pipeline must win at least the fsync sharing.
//!
//! Output: one line per cell on stdout. When `FASEA_BENCH_JSON` names
//! a file, the measured table is also written there as JSON — that is
//! how the committed `BENCH_serve.json` is produced:
//!
//! ```text
//! FASEA_BENCH_MS=2000 FASEA_BENCH_JSON=BENCH_serve.json \
//!     cargo bench --bench serve_throughput
//! ```
//!
//! `FASEA_BENCH_MS` bounds the per-cell measurement window (default
//! 300 ms) so CI can smoke-run the file without touching committed
//! numbers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use fasea_bandit::LinUcb;
use fasea_core::EventId;
use fasea_datagen::{SyntheticConfig, SyntheticWorkload};
use fasea_serve::{ClientConfig, ServeClient, Server, ServerConfig, ServerHandle};
use fasea_sim::{DurableArrangementService, DurableOptions};
use fasea_stats::CoinStream;
use fasea_store::FsyncPolicy;

const SEED: u64 = 0xBE7C_5EED;
const NUM_EVENTS: usize = 30;
const DIM: usize = 5;

fn workload() -> SyntheticWorkload {
    SyntheticWorkload::generate(SyntheticConfig {
        num_events: NUM_EVENTS,
        dim: DIM,
        seed: SEED,
        ..SyntheticConfig::default()
    })
}

fn budget() -> Duration {
    let ms = std::env::var("FASEA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(10))
}

fn start_server(tag: &str, group_commit: bool) -> (ServerHandle, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "fasea-bench-serve-tput-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let svc = DurableArrangementService::open(
        &dir,
        workload().instance,
        Box::new(LinUcb::new(DIM, 1.0, 2.0)),
        DurableOptions::new()
            .with_fsync(FsyncPolicy::Always)
            .with_group_commit(group_commit),
    )
    .unwrap();
    let handle = Server::spawn(
        svc,
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            stats_interval: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (handle, dir)
}

fn drive_one_round(client: &mut ServeClient, workload: &SyntheticWorkload, coins: &CoinStream) {
    let claimed = client.claim().unwrap();
    let t = claimed.t;
    let arrival = workload.arrivals.arrival(t);
    let arrangement = match claimed.pending {
        Some(pending) => pending,
        None => {
            client
                .propose(
                    arrival.capacity,
                    NUM_EVENTS as u32,
                    DIM as u32,
                    arrival.contexts.as_slice().to_vec(),
                )
                .unwrap()
                .1
        }
    };
    let accepts: Vec<bool> = arrangement
        .iter()
        .map(|&v| {
            coins.uniform(t, v as u64)
                < workload
                    .model
                    .accept_probability(&arrival.contexts, EventId(v as usize))
        })
        .collect();
    client.feedback(&accepts).unwrap();
}

struct Cell {
    mode: &'static str,
    clients: usize,
    rounds: u64,
    rounds_per_sec: f64,
}

/// Runs `clients` loopback sessions against a fresh server for the
/// budget window and reports aggregate completed rounds/sec.
fn run_cell(mode: &'static str, group_commit: bool, clients: usize, window: Duration) -> Cell {
    let (handle, dir) = start_server(&format!("{mode}-{clients}"), group_commit);
    let addr = handle.local_addr().to_string();

    // Warm up connections + the policy state outside the timed window.
    {
        let wl = workload();
        let coins = CoinStream::new(SEED ^ 0xFEED);
        let mut client = ServeClient::connect(addr.clone(), ClientConfig::default()).unwrap();
        for _ in 0..4 {
            drive_one_round(&mut client, &wl, &coins);
        }
    }

    let completed = AtomicU64::new(0);
    let started = Instant::now();
    let deadline = started + window;
    crossbeam::thread::scope(|s| {
        for _ in 0..clients {
            let addr = addr.clone();
            let completed = &completed;
            s.spawn(move |_| {
                let wl = workload();
                let coins = CoinStream::new(SEED ^ 0xFEED);
                let mut client = ServeClient::connect(
                    addr,
                    ClientConfig {
                        read_timeout: Duration::from_secs(120),
                        ..ClientConfig::default()
                    },
                )
                .unwrap();
                while Instant::now() < deadline {
                    drive_one_round(&mut client, &wl, &coins);
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    })
    .unwrap();
    let elapsed = started.elapsed();

    handle.initiate_shutdown();
    let report = handle.join();
    assert!(report.close.error.is_none(), "{:?}", report.close.error);
    let _ = std::fs::remove_dir_all(&dir);

    let rounds = completed.load(Ordering::Relaxed);
    Cell {
        mode,
        clients,
        rounds,
        rounds_per_sec: rounds as f64 / elapsed.as_secs_f64(),
    }
}

fn main() {
    let window = budget();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host_cores == 1 {
        println!(
            "warning: single-core host — client threads, server workers and the \
             commit syncer share one core, so multi-client scaling is understated"
        );
    }

    let grid: &[(&'static str, bool, usize)] = &[
        ("per_round_fsync", false, 1),
        ("per_round_fsync", false, 4),
        ("group_commit", true, 1),
        ("group_commit", true, 4),
    ];
    let mut cells = Vec::new();
    for &(mode, group_commit, clients) in grid {
        let cell = run_cell(mode, group_commit, clients, window);
        println!(
            "serve_throughput/{}/clients={}   {:>8} rounds   {:>10.1} rounds/sec",
            cell.mode, cell.clients, cell.rounds, cell.rounds_per_sec,
        );
        cells.push(cell);
    }

    let baseline = |clients: usize| {
        cells
            .iter()
            .find(|c| c.mode == "per_round_fsync" && c.clients == clients)
            .map(|c| c.rounds_per_sec)
    };
    for c in cells.iter().filter(|c| c.mode == "group_commit") {
        if let Some(base) = baseline(c.clients) {
            println!(
                "group_commit vs per_round_fsync at {} client(s): {:.2}x",
                c.clients,
                c.rounds_per_sec / base,
            );
        }
    }

    if let Ok(path) = std::env::var("FASEA_BENCH_JSON") {
        // `check-bench` rejects >1x speedups on a single-core host
        // unless the table says where they come from.
        let caveat = if host_cores == 1 {
            "\n  \"caveat\": \"single-core host: group-commit speedups come from sharing fsyncs across sessions, not parallel compute\","
        } else {
            ""
        };
        let mut json = format!(
            "{{\n  \"bench\": \"serve_throughput\",\n  \"units\": \"rounds_per_sec\",\n  \"durability\": \"fsync_before_ack\",\n  \"host_cores\": {host_cores},{caveat}\n  \"cells\": [\n",
        );
        for (i, c) in cells.iter().enumerate() {
            let speedup = match (c.mode, baseline(c.clients)) {
                ("group_commit", Some(base)) => format!("{:.2}", c.rounds_per_sec / base),
                _ => "null".into(),
            };
            json.push_str(&format!(
                "    {{\"mode\": \"{}\", \"clients\": {}, \"rounds\": {}, \"rounds_per_sec\": {:.1}, \"speedup_vs_per_round_fsync\": {speedup}}}{}\n",
                c.mode,
                c.clients,
                c.rounds,
                c.rounds_per_sec,
                if i + 1 == cells.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write FASEA_BENCH_JSON");
        println!("wrote {path}");
    }
}

//! The arrangement oracle alone (Algorithm 2): cost across |V| and
//! conflict ratios. The paper's complexity analysis predicts
//! O(|V| log |V| + c_u·|V|); the conflict ratio only affects the masked
//! conflict probes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fasea_bandit::{GreedyOracle, Oracle, OracleWorkspace};
use fasea_core::Arrangement;
use fasea_datagen::synthetic::generate_conflicts;
use fasea_stats::rng_from_seed;
use std::hint::black_box;

fn scores_for(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 * 0.7311).sin() + 1.0) / 2.0)
        .collect()
}

fn bench_by_num_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_greedy_by_v");
    for &n in &[100usize, 500, 1000, 5000] {
        let mut rng = rng_from_seed(1);
        let conflicts = generate_conflicts(n, 0.25, &mut rng);
        let scores = scores_for(n);
        let remaining = vec![10u32; n];
        let mut ws = OracleWorkspace::new();
        let mut out = Arrangement::empty();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                GreedyOracle.arrange_into(&scores, &conflicts, &remaining, 5, &mut ws, &mut out);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

fn bench_by_conflict_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_greedy_by_cr");
    let n = 500;
    let scores = scores_for(n);
    let remaining = vec![10u32; n];
    for &cr in &[0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let mut rng = rng_from_seed(2);
        let conflicts = generate_conflicts(n, cr, &mut rng);
        let mut ws = OracleWorkspace::new();
        let mut out = Arrangement::empty();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("cr{}", (cr * 100.0) as u32)),
            &cr,
            |b, _| {
                b.iter(|| {
                    GreedyOracle
                        .arrange_into(&scores, &conflicts, &remaining, 5, &mut ws, &mut out);
                    black_box(out.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_by_num_events, bench_by_conflict_ratio);
criterion_main!(benches);

//! # fasea-bench
//!
//! Shared fixtures for the Criterion benchmarks that reproduce the
//! paper's efficiency tables:
//!
//! * `round_latency` — per-round time of each algorithm at
//!   `|V| ∈ {100, 500, 1000}` (Table 5's time column).
//! * `dimension_latency` — per-round time at `d ∈ {1, 5, 10, 15, 20}`
//!   (Table 6's time column).
//! * `oracle_greedy` — the greedy arrangement oracle alone (through the
//!   `Oracle` trait), across `|V|` and conflict ratios.
//! * `oracle_compare` — greedy vs tabu oracles: fitness and latency
//!   side by side (the committed `BENCH_oracle.json`).
//! * `linalg_micro` — Cholesky, Sherman–Morrison and quadratic forms at
//!   bandit-relevant dimensions.
//! * `ablations` — the design choices DESIGN.md calls out:
//!   Sherman–Morrison vs full re-factorisation, O(n log n) vs O(n²)
//!   Kendall, full sort vs the oracle's actual cost profile.
//! * `datagen_throughput` — arrival-stream generation cost.

use fasea_bandit::{EpsilonGreedy, Exploit, LinUcb, Policy, RandomPolicy, ThompsonSampling};
use fasea_core::UserArrival;
use fasea_datagen::{SyntheticConfig, SyntheticWorkload};

/// Builds the default-parameter policy by paper name.
///
/// # Panics
/// Panics on an unknown name.
pub fn policy_by_name(name: &str, dim: usize) -> Box<dyn Policy> {
    match name {
        "UCB" => Box::new(LinUcb::new(dim, 1.0, 2.0)),
        "TS" => Box::new(ThompsonSampling::new(dim, 1.0, 0.1, 7)),
        "eGreedy" => Box::new(EpsilonGreedy::new(dim, 1.0, 0.1, 8)),
        "Exploit" => Box::new(Exploit::new(dim, 1.0)),
        "Random" => Box::new(RandomPolicy::new(9)),
        other => panic!("unknown policy {other}"),
    }
}

/// The paper's five algorithm names in reporting order.
pub const POLICY_NAMES: [&str; 5] = ["UCB", "TS", "eGreedy", "Exploit", "Random"];

/// A benchmark fixture: a workload plus a pre-generated arrival, so the
/// benchmarked closure measures only the policy round (select + observe).
pub struct RoundFixture {
    /// The generated workload.
    pub workload: SyntheticWorkload,
    /// One arrival reused every iteration.
    pub arrival: UserArrival,
}

impl RoundFixture {
    /// Builds the fixture for a Table 5/6 cell.
    pub fn new(num_events: usize, dim: usize) -> Self {
        let workload = SyntheticWorkload::generate(SyntheticConfig {
            num_events,
            dim,
            seed: 0xBE7C4,
            ..Default::default()
        });
        let arrival = workload.arrivals.arrival(0);
        RoundFixture { workload, arrival }
    }
}

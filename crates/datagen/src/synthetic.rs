//! Synthetic workload generator — every cell of the paper's Table 4.

use fasea_core::{
    ConflictGraph, ContextMatrix, EventId, LinearPayoffModel, ProblemInstance, ProblemMode,
    UserArrival,
};
use fasea_linalg::Vector;
use fasea_stats::crn::mix64;
use fasea_stats::dist::Distribution as _;
use fasea_stats::{rng_from_seed, Normal, PowerLaw, Uniform};

/// The scalar distributions Table 4 draws `θ` and feature values from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueDistribution {
    /// Uniform[-1, 1] — the paper's default.
    Uniform,
    /// N(0, 1).
    Normal,
    /// Power(2) on [0, 1] (mass near 1; see `fasea_stats::PowerLaw`).
    Power,
    /// The "shuffle" mixture: dimension `i` (0-based) cycles through
    /// Uniform[-1,1], N((i+1)/d, 1), Power(2) — "the value of each
    /// dimension i is generated following Uniform, Normal with mean i/d
    /// and Power distributions in turn" (Section 5.1).
    Shuffle,
}

impl ValueDistribution {
    /// Human-readable name used in experiment reports.
    pub fn label(self) -> &'static str {
        match self {
            ValueDistribution::Uniform => "Uniform",
            ValueDistribution::Normal => "Normal",
            ValueDistribution::Power => "Power",
            ValueDistribution::Shuffle => "Shuffle",
        }
    }

    /// Fills `out[i]` with a draw for dimension `i` of a `d`-dimensional
    /// vector.
    pub fn fill(&self, rng: &mut fasea_stats::Rng, out: &mut [f64]) {
        let d = out.len().max(1);
        match self {
            ValueDistribution::Uniform => {
                Uniform::symmetric_unit().sample_into(rng, out);
            }
            ValueDistribution::Normal => {
                Normal::standard().sample_into(rng, out);
            }
            ValueDistribution::Power => {
                PowerLaw::new(2.0).sample_into(rng, out);
            }
            ValueDistribution::Shuffle => {
                for (i, x) in out.iter_mut().enumerate() {
                    *x = match i % 3 {
                        0 => Uniform::symmetric_unit().sample(rng),
                        1 => Normal::new((i + 1) as f64 / d as f64, 1.0).sample(rng),
                        _ => PowerLaw::new(2.0).sample(rng),
                    };
                }
            }
        }
    }
}

/// Event-capacity model: `c_v ∼ N(mean, std)`, truncated at 0 and
/// rounded. Table 4 offers N(100,100), **N(200,100)** (default) and
/// N(500,200).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityModel {
    /// Mean of the normal draw.
    pub mean: f64,
    /// Standard deviation of the normal draw.
    pub std: f64,
}

impl CapacityModel {
    /// The paper's default N(200, 100).
    pub fn default_paper() -> Self {
        CapacityModel {
            mean: 200.0,
            std: 100.0,
        }
    }

    /// Draws one capacity.
    pub fn sample(&self, rng: &mut fasea_stats::Rng) -> u32 {
        Normal::new(self.mean, self.std)
            .sample(rng)
            .max(0.0)
            .round() as u32
    }
}

/// Full synthetic configuration — one row of the Table 4 grid. The
/// `Default` instance is the paper's bold default setting.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Number of events `|V|` (default 500).
    pub num_events: usize,
    /// Horizon `T` (default 100 000).
    pub horizon: u64,
    /// Context dimension `d` (default 20).
    pub dim: usize,
    /// Distribution of `θ` (default Uniform).
    pub theta_dist: ValueDistribution,
    /// Distribution of feature values (default Uniform).
    pub x_dist: ValueDistribution,
    /// Event capacity model (default N(200, 100)).
    pub capacity: CapacityModel,
    /// Inclusive user-capacity range (default 1..=5, i.e. `c_u ∼ U[1,5]`).
    pub user_capacity: (u32, u32),
    /// Conflict ratio `cr` (default 0.25).
    pub conflict_ratio: f64,
    /// Master seed: instance structure, `θ` and the per-round contexts
    /// all derive from it.
    pub seed: u64,
    /// Problem mode (default full FASEA).
    pub mode: ProblemMode,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            num_events: 500,
            horizon: 100_000,
            dim: 20,
            theta_dist: ValueDistribution::Uniform,
            x_dist: ValueDistribution::Uniform,
            capacity: CapacityModel::default_paper(),
            user_capacity: (1, 5),
            conflict_ratio: 0.25,
            seed: 0x5EED_FA5E_A001,
            mode: ProblemMode::Fasea,
        }
    }
}

impl SyntheticConfig {
    /// The paper's "basic contextual bandit" ablation of this config
    /// (Figures 11–13): unlimited capacities, no conflicts, `c_u = 1`.
    pub fn into_basic(mut self) -> Self {
        self.mode = ProblemMode::BasicContextual;
        self.conflict_ratio = 0.0;
        self.user_capacity = (1, 1);
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics on nonsensical configurations (zero events/dim, cr outside
    /// \[0,1\], inverted user-capacity range).
    pub fn validate(&self) {
        assert!(
            self.num_events > 0,
            "SyntheticConfig: num_events must be > 0"
        );
        assert!(self.dim > 0, "SyntheticConfig: dim must be > 0");
        assert!(
            (0.0..=1.0).contains(&self.conflict_ratio),
            "SyntheticConfig: conflict_ratio must be in [0, 1]"
        );
        assert!(
            self.user_capacity.0 <= self.user_capacity.1 && self.user_capacity.0 >= 1,
            "SyntheticConfig: user_capacity range must be 1 <= lo <= hi"
        );
    }
}

/// Samples a conflict graph with exactly
/// `round(cr · n(n−1)/2)` distinct conflicting pairs.
///
/// For `cr ≤ 0.5` pairs are rejection-sampled directly; for larger `cr`
/// the *complement* pairs are sampled instead and everything else is
/// marked conflicting — so `cr = 1` (complete graph) costs no rejection
/// loop at all.
pub fn generate_conflicts(n: usize, cr: f64, rng: &mut fasea_stats::Rng) -> ConflictGraph {
    use rand::Rng as _;
    assert!((0.0..=1.0).contains(&cr), "generate_conflicts: cr in [0,1]");
    if n < 2 {
        return ConflictGraph::new(n);
    }
    let max_pairs = n * (n - 1) / 2;
    let target = (cr * max_pairs as f64).round() as usize;
    let sample_pairs =
        |count: usize, rng: &mut fasea_stats::Rng| -> std::collections::HashSet<(usize, usize)> {
            let mut set = std::collections::HashSet::with_capacity(count);
            while set.len() < count {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                if i == j {
                    continue;
                }
                set.insert((i.min(j), i.max(j)));
            }
            set
        };
    if target * 2 <= max_pairs {
        let pairs = sample_pairs(target, rng);
        let mut g = ConflictGraph::new(n);
        for (i, j) in pairs {
            g.add_conflict(EventId(i), EventId(j));
        }
        g
    } else {
        // Sample the complement.
        let keep_out = sample_pairs(max_pairs - target, rng);
        let mut g = ConflictGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if !keep_out.contains(&(i, j)) {
                    g.add_conflict(EventId(i), EventId(j));
                }
            }
        }
        g
    }
}

/// Lazily generates the arrival stream: user capacities and per-round
/// context blocks, derived deterministically from `(seed, t)` so every
/// policy replays exactly the same stream without materialising
/// `T × |V| × d` floats.
#[derive(Debug, Clone)]
pub struct ArrivalGenerator {
    num_events: usize,
    dim: usize,
    x_dist: ValueDistribution,
    user_capacity: (u32, u32),
    seed: u64,
}

impl ArrivalGenerator {
    /// The arrival (capacity + normalised contexts) at time step `t`.
    pub fn arrival(&self, t: u64) -> UserArrival {
        use rand::Rng as _;
        let mut rng = rng_from_seed(mix64(self.seed ^ t.wrapping_mul(0xA24BAED4963EE407)));
        let capacity = rng.gen_range(self.user_capacity.0..=self.user_capacity.1);
        let mut ctx = ContextMatrix::zeros(self.num_events, self.dim);
        for v in 0..self.num_events {
            self.x_dist.fill(&mut rng, ctx.context_mut(EventId(v)));
        }
        ctx.normalize_rows();
        UserArrival::new(capacity, ctx)
    }

    /// Number of events per arrival.
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// Context dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// A fully generated synthetic workload: the immutable instance, the
/// ground-truth payoff model, and the lazy arrival stream.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    /// The problem instance (capacities + conflicts + mode).
    pub instance: ProblemInstance,
    /// Ground truth `θ` (unit-normalised).
    pub model: LinearPayoffModel,
    /// Lazy arrival stream shared by all policies.
    pub arrivals: ArrivalGenerator,
    /// The generating configuration (kept for reports).
    pub config: SyntheticConfig,
}

impl SyntheticWorkload {
    /// Generates the workload for `config`.
    pub fn generate(config: SyntheticConfig) -> Self {
        config.validate();
        let mut rng = rng_from_seed(config.seed);

        // θ, unit-normalised per the paper.
        let mut theta = vec![0.0; config.dim];
        config.theta_dist.fill(&mut rng, &mut theta);
        let model = LinearPayoffModel::new_normalized(Vector::from(theta));

        // Structure: capacities and conflicts (basic mode overrides).
        let (capacities, conflicts) = match config.mode {
            ProblemMode::Fasea => {
                let caps: Vec<u32> = (0..config.num_events)
                    .map(|_| config.capacity.sample(&mut rng))
                    .collect();
                let g = generate_conflicts(config.num_events, config.conflict_ratio, &mut rng);
                (caps, g)
            }
            ProblemMode::BasicContextual => (
                vec![u32::MAX; config.num_events],
                ConflictGraph::new(config.num_events),
            ),
        };
        let instance = ProblemInstance::new(capacities, conflicts, config.dim, config.mode);

        let arrivals = ArrivalGenerator {
            num_events: config.num_events,
            dim: config.dim,
            x_dist: config.x_dist,
            user_capacity: config.user_capacity,
            seed: mix64(config.seed ^ 0xC0FFEE),
        };
        SyntheticWorkload {
            instance,
            model,
            arrivals,
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_bold_values() {
        let c = SyntheticConfig::default();
        assert_eq!(c.num_events, 500);
        assert_eq!(c.horizon, 100_000);
        assert_eq!(c.dim, 20);
        assert_eq!(c.theta_dist, ValueDistribution::Uniform);
        assert_eq!(c.x_dist, ValueDistribution::Uniform);
        assert_eq!(
            c.capacity,
            CapacityModel {
                mean: 200.0,
                std: 100.0
            }
        );
        assert_eq!(c.user_capacity, (1, 5));
        assert!((c.conflict_ratio - 0.25).abs() < 1e-15);
        assert_eq!(c.mode, ProblemMode::Fasea);
    }

    #[test]
    fn workload_theta_is_unit_norm() {
        for dist in [
            ValueDistribution::Uniform,
            ValueDistribution::Normal,
            ValueDistribution::Power,
            ValueDistribution::Shuffle,
        ] {
            let w = SyntheticWorkload::generate(SyntheticConfig {
                num_events: 20,
                dim: 8,
                theta_dist: dist,
                ..Default::default()
            });
            assert!(
                (w.model.theta().norm() - 1.0).abs() < 1e-12,
                "{}",
                dist.label()
            );
        }
    }

    #[test]
    fn conflict_ratio_is_exact() {
        let mut rng = rng_from_seed(1);
        for cr in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let g = generate_conflicts(40, cr, &mut rng);
            let max_pairs = 40 * 39 / 2;
            let expect = (cr * max_pairs as f64).round() as usize;
            assert_eq!(g.num_conflicts(), expect, "cr={cr}");
        }
    }

    #[test]
    fn conflicts_complete_and_empty_extremes() {
        let mut rng = rng_from_seed(2);
        let g0 = generate_conflicts(10, 0.0, &mut rng);
        assert_eq!(g0.num_conflicts(), 0);
        let g1 = generate_conflicts(10, 1.0, &mut rng);
        assert_eq!(g1.num_conflicts(), 45);
        assert_eq!(g1.conflict_ratio(), 1.0);
    }

    #[test]
    fn arrivals_are_deterministic_and_normalised() {
        let w = SyntheticWorkload::generate(SyntheticConfig {
            num_events: 30,
            dim: 5,
            ..Default::default()
        });
        let a1 = w.arrivals.arrival(17);
        let a2 = w.arrivals.arrival(17);
        assert_eq!(a1.capacity, a2.capacity);
        assert_eq!(a1.contexts, a2.contexts);
        assert!(a1.contexts.rows_norm_bounded(1e-12));
        // Different rounds give different contexts.
        let a3 = w.arrivals.arrival(18);
        assert_ne!(a1.contexts, a3.contexts);
    }

    #[test]
    fn user_capacity_in_declared_range() {
        let w = SyntheticWorkload::generate(SyntheticConfig {
            num_events: 5,
            dim: 2,
            user_capacity: (1, 5),
            ..Default::default()
        });
        let mut seen = std::collections::HashSet::new();
        for t in 0..500 {
            let c = w.arrivals.arrival(t).capacity;
            assert!((1..=5).contains(&c));
            seen.insert(c);
        }
        assert_eq!(seen.len(), 5, "all capacities should occur: {seen:?}");
    }

    #[test]
    fn capacity_model_truncates_at_zero() {
        let m = CapacityModel {
            mean: 0.0,
            std: 50.0,
        };
        let mut rng = rng_from_seed(3);
        for _ in 0..100 {
            // No panics, and values are valid u32 (>= 0 by type).
            let _ = m.sample(&mut rng);
        }
    }

    #[test]
    fn capacity_model_mean_matches() {
        let m = CapacityModel::default_paper();
        let mut rng = rng_from_seed(4);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| m.sample(&mut rng) as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 200.0).abs() < 3.0, "mean={mean}");
    }

    #[test]
    fn shuffle_cycles_distributions() {
        // Power dimensions (i % 3 == 2) must be within [0, 1].
        let mut rng = rng_from_seed(5);
        let mut buf = vec![0.0; 9];
        for _ in 0..200 {
            ValueDistribution::Shuffle.fill(&mut rng, &mut buf);
            for i in (2..9).step_by(3) {
                assert!((0.0..=1.0).contains(&buf[i]), "dim {i}: {}", buf[i]);
            }
            // Uniform dimensions within [-1, 1].
            for i in (0..9).step_by(3) {
                assert!((-1.0..=1.0).contains(&buf[i]), "dim {i}: {}", buf[i]);
            }
        }
    }

    #[test]
    fn basic_mode_strips_constraints() {
        let cfg = SyntheticConfig {
            num_events: 10,
            dim: 3,
            conflict_ratio: 0.8,
            ..Default::default()
        }
        .into_basic();
        let w = SyntheticWorkload::generate(cfg);
        assert_eq!(w.instance.mode(), ProblemMode::BasicContextual);
        assert_eq!(w.instance.conflicts().num_conflicts(), 0);
        assert_eq!(w.instance.capacity(EventId(0)), u32::MAX);
        assert_eq!(w.arrivals.arrival(0).capacity, 1);
    }

    #[test]
    fn different_seeds_give_different_workloads() {
        let w1 = SyntheticWorkload::generate(SyntheticConfig {
            num_events: 10,
            dim: 4,
            seed: 1,
            ..Default::default()
        });
        let w2 = SyntheticWorkload::generate(SyntheticConfig {
            num_events: 10,
            dim: 4,
            seed: 2,
            ..Default::default()
        });
        assert_ne!(w1.model.theta().as_slice(), w2.model.theta().as_slice());
    }

    #[test]
    #[should_panic(expected = "conflict_ratio")]
    fn invalid_cr_rejected() {
        SyntheticWorkload::generate(SyntheticConfig {
            conflict_ratio: 1.5,
            ..Default::default()
        });
    }
}

//! Compact binary encoding of categorical features.
//!
//! The paper encodes each categorical feature "into a binary vector
//! following \[26\]", illustrated with performers: male → `<0,1>`,
//! female → `<1,0>`, group → `<1,1>` — i.e. the 1-based value index
//! written in binary over the minimum number of bits that distinguishes
//! all values. This module implements exactly that code, plus the final
//! divide-by-`d` normalisation ("we finally normalize the feature vectors
//! by dividing each feature value by d = 20").

/// Number of bits needed to encode `num_values` distinct values with the
/// 1-based binary code (so that no value encodes to all-zeros).
///
/// # Panics
/// Panics if `num_values == 0`.
pub fn bits_for(num_values: usize) -> usize {
    assert!(num_values > 0, "bits_for: need at least one value");
    // Codes are 1..=num_values, so we need bits for num_values itself.
    (usize::BITS - num_values.leading_zeros()) as usize
}

/// Appends the binary code of the (0-based) `value` of a categorical
/// feature with `num_values` values onto `out`, most significant bit
/// first. The paper's performer example: value 0 → `[0,1]`, 1 → `[1,0]`,
/// 2 → `[1,1]`.
///
/// # Panics
/// Panics if `value >= num_values`.
pub fn encode_categorical(value: usize, num_values: usize, out: &mut Vec<f64>) {
    assert!(
        value < num_values,
        "encode_categorical: value {value} out of range {num_values}"
    );
    let bits = bits_for(num_values);
    let code = value + 1; // 1-based so no category is all-zero.
    for b in (0..bits).rev() {
        out.push(((code >> b) & 1) as f64);
    }
}

/// Divides every feature by `d` in place — the paper's normalisation
/// guaranteeing `‖x‖ ≤ √d/d ≤ 1`.
///
/// # Panics
/// Panics if `features.len() != d` (the vector must already be
/// `d`-dimensional) or `d == 0`.
pub fn normalize_by_dimension(features: &mut [f64], d: usize) {
    assert!(d > 0, "normalize_by_dimension: d must be positive");
    assert_eq!(
        features.len(),
        d,
        "normalize_by_dimension: feature vector must have length d"
    );
    for f in features {
        *f /= d as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_counts() {
        assert_eq!(bits_for(1), 1); // code 1 -> 1 bit
        assert_eq!(bits_for(3), 2); // codes 1..3 -> 2 bits
        assert_eq!(bits_for(4), 3); // code 4 = 100 -> 3 bits
        assert_eq!(bits_for(7), 3);
        assert_eq!(bits_for(8), 4);
        assert_eq!(bits_for(11), 4);
    }

    #[test]
    fn paper_performer_example() {
        // male, female, group -> <0,1>, <1,0>, <1,1>.
        let mut out = Vec::new();
        encode_categorical(0, 3, &mut out);
        assert_eq!(out, vec![0.0, 1.0]);
        out.clear();
        encode_categorical(1, 3, &mut out);
        assert_eq!(out, vec![1.0, 0.0]);
        out.clear();
        encode_categorical(2, 3, &mut out);
        assert_eq!(out, vec![1.0, 1.0]);
    }

    #[test]
    fn codes_are_distinct_and_nonzero() {
        for num_values in 1..=16 {
            let mut seen = std::collections::HashSet::new();
            for v in 0..num_values {
                let mut out = Vec::new();
                encode_categorical(v, num_values, &mut out);
                assert_eq!(out.len(), bits_for(num_values));
                assert!(out.iter().any(|&b| b != 0.0), "all-zero code for {v}");
                let bits: Vec<u8> = out.iter().map(|&b| b as u8).collect();
                assert!(seen.insert(bits), "duplicate code for {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_value_panics() {
        let mut out = Vec::new();
        encode_categorical(3, 3, &mut out);
    }

    #[test]
    fn normalization_divides_by_d() {
        let mut f = vec![1.0, 0.0, 1.0, 0.5];
        normalize_by_dimension(&mut f, 4);
        assert_eq!(f, vec![0.25, 0.0, 0.25, 0.125]);
    }

    #[test]
    fn normalized_binary_vector_has_small_norm() {
        // Worst case: all 20 features are 1 -> norm = sqrt(20)/20 < 1.
        let mut f = vec![1.0; 20];
        normalize_by_dimension(&mut f, 20);
        let norm = f.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm <= 1.0);
        assert!((norm - 20f64.sqrt() / 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length d")]
    fn normalization_checks_length() {
        let mut f = vec![1.0; 3];
        normalize_by_dimension(&mut f, 4);
    }
}

//! # fasea-datagen
//!
//! Workload generators for the FASEA reproduction.
//!
//! Two data sources drive the paper's evaluation (Section 5.1):
//!
//! 1. **Synthetic** (Table 4) — [`synthetic`] implements every cell of
//!    the configuration grid: `|V| ∈ {100, 500, 1000}`, `T = 100 000`,
//!    `d ∈ {1, 5, 10, 15, 20}`, `θ`/`x` from Uniform[-1,1] / Power(2) /
//!    N(0,1) / per-dimension "shuffle", unit normalisation, event
//!    capacities `c_v ∼ N(µ, σ)`, user capacities `c_u ∼ U{1..5}`,
//!    and conflict ratios `cr ∈ {0, 0.25, 0.5, 0.75, 1}`.
//!    Contexts are generated **lazily per round** from counter-derived
//!    seeds — the default grid would otherwise need `10⁹` floats — so
//!    every policy deterministically sees the same arrival stream.
//!
//! 2. **Real-data analogue** (Table 3) — [`real`] synthesises the
//!    Damai.com study the authors ran: 50 Beijing events with the exact
//!    Table 3 schema (6 categories / 24 sub-categories, performers,
//!    country/district, lowest-price band, day-of-week, normalised
//!    distance), binary-coded categorical features concatenated to
//!    `d = 20` and divided by `d`; conflicts from overlapping date/time
//!    slots; and 19 users whose fixed Yes/No ground-truth labels are
//!    generated from per-user linear preference scores, with Yes-counts
//!    matching the paper's `c_u = full` row exactly
//!    (12, 26, 11, …, 17). See `DESIGN.md` §4 for the substitution
//!    rationale.
//!
//! [`mis`] provides the exact maximum-independent-set solver behind the
//! real dataset's "Full Knowledge" reference column.
//!
//! Two further generators implement the paper's extension Remarks
//! (Section 2): [`multi_user`] — populations of recurring users with
//! individual hidden `θ_u`'s over shared event capacities (Remark 1) —
//! and [`rotating`] — time-varying event sets `V_t` on a weekday-style
//! calendar (Remark 2).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod encode;
pub mod mis;
pub mod multi_user;
pub mod real;
pub mod rotating;
pub mod synthetic;

pub use multi_user::{MultiUserConfig, MultiUserWorkload};
pub use real::{RealDataset, RealEvent, RealUser};
pub use rotating::RotatingSchedule;
pub use synthetic::{
    ArrivalGenerator, CapacityModel, SyntheticConfig, SyntheticWorkload, ValueDistribution,
};

//! Remark 1 extension: a population of recurring users with individual
//! preference models.
//!
//! The paper's FASEA definition shares one `θ` across all arrivals and
//! notes (Remark 1) that "it is easy to extend FASEA to the scenario
//! where different models (θ's) are estimated for different users. That
//! is, an individual θ is learned for each user but the information of
//! events (conflicts and capacities) is shared among the users." This
//! module generates that workload: a population of `U` users, each with
//! their own hidden unit-norm `θ_u`, arriving in a deterministic
//! pseudo-random round-robin; event capacities and conflicts stay
//! global.
//!
//! User heterogeneity is controlled by `heterogeneity ∈ [0, 1]`:
//! every `θ_u = normalize((1 − h)·θ_base + h·θ_u_own)`. At `h = 0` the
//! workload degenerates to standard FASEA (all users identical); at
//! `h = 1` users are independent. The extension experiment compares a
//! shared-model learner against per-user learners across `h`.

use crate::synthetic::{SyntheticConfig, SyntheticWorkload};
use fasea_core::LinearPayoffModel;
use fasea_linalg::Vector;
use fasea_stats::crn::mix64;
use fasea_stats::rng_from_seed;

/// Configuration of the multi-user workload.
#[derive(Debug, Clone)]
pub struct MultiUserConfig {
    /// The base synthetic configuration (events, capacities, conflicts,
    /// contexts, horizon).
    pub base: SyntheticConfig,
    /// Population size `U ≥ 1`.
    pub population: usize,
    /// Interpolation between one shared θ (0.0) and fully individual
    /// θ's (1.0).
    pub heterogeneity: f64,
}

/// The generated multi-user workload.
#[derive(Debug, Clone)]
pub struct MultiUserWorkload {
    /// The single-θ workload providing instance + arrival stream; its
    /// `model` is the base θ the user models interpolate towards.
    pub inner: SyntheticWorkload,
    /// Per-user hidden models, indexed by user id.
    pub user_models: Vec<LinearPayoffModel>,
    schedule_seed: u64,
}

impl MultiUserWorkload {
    /// Generates the workload.
    ///
    /// # Panics
    /// Panics if `population == 0` or `heterogeneity ∉ [0, 1]`.
    pub fn generate(config: MultiUserConfig) -> Self {
        assert!(
            config.population > 0,
            "MultiUserWorkload: population must be > 0"
        );
        assert!(
            (0.0..=1.0).contains(&config.heterogeneity),
            "MultiUserWorkload: heterogeneity must be in [0, 1]"
        );
        let inner = SyntheticWorkload::generate(config.base.clone());
        let d = config.base.dim;
        let h = config.heterogeneity;
        let base_theta = inner.model.theta().clone();
        let mut rng = rng_from_seed(mix64(config.base.seed ^ 0x0517_u64));
        let user_models = (0..config.population)
            .map(|_| {
                let mut own = vec![0.0; d];
                config.base.theta_dist.fill(&mut rng, &mut own);
                let own = Vector::from(own).normalized();
                let mut theta = base_theta.scaled(1.0 - h);
                theta.axpy(h, &own);
                LinearPayoffModel::new_normalized(theta)
            })
            .collect();
        MultiUserWorkload {
            inner,
            user_models,
            schedule_seed: mix64(config.base.seed ^ 0x5C4E_D01E),
        }
    }

    /// Population size `U`.
    pub fn population(&self) -> usize {
        self.user_models.len()
    }

    /// The (deterministic, hash-scheduled) user arriving at time `t`.
    pub fn user_at(&self, t: u64) -> usize {
        (mix64(self.schedule_seed ^ t) % self.population() as u64) as usize
    }

    /// The seed of the arrival schedule hash. Store-backed policies
    /// (`fasea-models`) rebuild the exact `user_at` map from this seed
    /// plus [`MultiUserWorkload::population`], so policy and workload
    /// agree on who arrives at every round.
    pub fn schedule_seed(&self) -> u64 {
        self.schedule_seed
    }

    /// The hidden model of user `u`.
    pub fn model_of(&self, u: usize) -> &LinearPayoffModel {
        &self.user_models[u]
    }

    /// Mean pairwise cosine similarity between user models — a direct
    /// measurement of how heterogeneous the population actually is.
    pub fn mean_pairwise_similarity(&self) -> f64 {
        let n = self.population();
        if n < 2 {
            return 1.0;
        }
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                sum += self.user_models[i].theta().dot(self.user_models[j].theta());
                count += 1;
            }
        }
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(seed: u64) -> SyntheticConfig {
        SyntheticConfig {
            num_events: 20,
            dim: 6,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn zero_heterogeneity_reduces_to_shared_theta() {
        let w = MultiUserWorkload::generate(MultiUserConfig {
            base: base(1),
            population: 5,
            heterogeneity: 0.0,
        });
        for u in 0..5 {
            let diff = w.model_of(u).theta() - w.inner.model.theta();
            assert!(diff.norm() < 1e-12, "user {u} differs from base");
        }
        assert!((w.mean_pairwise_similarity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_heterogeneity_gives_distinct_models() {
        let w = MultiUserWorkload::generate(MultiUserConfig {
            base: base(2),
            population: 8,
            heterogeneity: 1.0,
        });
        let sim = w.mean_pairwise_similarity();
        assert!(sim < 0.8, "users too similar: {sim}");
        // All models are unit norm.
        for u in 0..8 {
            assert!((w.model_of(u).theta().norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn heterogeneity_is_monotone_in_similarity() {
        let sim_at = |h: f64| {
            MultiUserWorkload::generate(MultiUserConfig {
                base: base(3),
                population: 10,
                heterogeneity: h,
            })
            .mean_pairwise_similarity()
        };
        let s0 = sim_at(0.0);
        let s_half = sim_at(0.5);
        let s1 = sim_at(1.0);
        assert!(s0 > s_half, "{s0} <= {s_half}");
        assert!(s_half > s1, "{s_half} <= {s1}");
    }

    #[test]
    fn schedule_is_deterministic_and_covers_population() {
        let w = MultiUserWorkload::generate(MultiUserConfig {
            base: base(4),
            population: 6,
            heterogeneity: 0.5,
        });
        let mut seen = std::collections::HashSet::new();
        for t in 0..600 {
            let u = w.user_at(t);
            assert!(u < 6);
            assert_eq!(u, w.user_at(t));
            seen.insert(u);
        }
        assert_eq!(seen.len(), 6, "schedule misses users: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "population must be > 0")]
    fn empty_population_rejected() {
        let _ = MultiUserWorkload::generate(MultiUserConfig {
            base: base(5),
            population: 0,
            heterogeneity: 0.5,
        });
    }
}

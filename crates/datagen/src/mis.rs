//! Exact maximum independent set over small conflict graphs.
//!
//! The real dataset's "Full Knowledge" column needs, per user, the size
//! of the largest set of mutually non-conflicting events that the user
//! would accept (ground-truth "Yes"). With 50 events this is a maximum
//! independent set (MIS) instance small enough for exact bitmask
//! branch-and-bound.

use fasea_core::{ConflictGraph, EventId};

/// Exact MIS size restricted to the vertices in `allowed`, using bitmask
/// branch-and-bound (branch on the highest-degree remaining vertex,
/// bound by remaining vertex count).
///
/// # Panics
/// Panics if the graph has more than 64 events (the bitmask domain) or
/// `allowed` references an out-of-range event.
pub fn max_independent_set(conflicts: &ConflictGraph, allowed: &[EventId]) -> usize {
    let n = conflicts.num_events();
    assert!(
        n <= 64,
        "max_independent_set: bitmask solver handles |V| <= 64"
    );
    let mut allowed_mask = 0u64;
    for &v in allowed {
        assert!(v.index() < n, "max_independent_set: event out of range");
        allowed_mask |= 1 << v.index();
    }
    // Precompute adjacency masks restricted to allowed vertices.
    let mut adj = vec![0u64; n];
    for (v, mask) in adj.iter_mut().enumerate() {
        if allowed_mask & (1 << v) == 0 {
            continue;
        }
        for u in conflicts.neighbours(EventId(v)) {
            if allowed_mask & (1 << u.index()) != 0 {
                *mask |= 1 << u.index();
            }
        }
    }

    fn bnb(candidates: u64, adj: &[u64], best: &mut usize, current: usize) {
        let remaining = candidates.count_ones() as usize;
        if current + remaining <= *best {
            return; // bound
        }
        if candidates == 0 {
            *best = (*best).max(current);
            return;
        }
        // Pick the candidate with the most candidate-neighbours: either
        // it is in some optimal MIS, or all is decided without it.
        let mut pivot = candidates.trailing_zeros() as usize;
        let mut pivot_deg = 0u32;
        let mut rest = candidates;
        while rest != 0 {
            let v = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let deg = (adj[v] & candidates).count_ones();
            if deg > pivot_deg {
                pivot_deg = deg;
                pivot = v;
            }
        }
        if pivot_deg == 0 {
            // No edges left: everything remaining is independent.
            *best = (*best).max(current + remaining);
            return;
        }
        // Branch 1: include pivot (drop its neighbours).
        bnb(
            candidates & !(1 << pivot) & !adj[pivot],
            adj,
            best,
            current + 1,
        );
        // Branch 2: exclude pivot.
        bnb(candidates & !(1 << pivot), adj, best, current);
    }

    let mut best = 0usize;
    bnb(allowed_mask, &adj, &mut best, 0);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<EventId> {
        v.iter().map(|&i| EventId(i)).collect()
    }

    #[test]
    fn empty_allowed_set() {
        let g = ConflictGraph::complete(5);
        assert_eq!(max_independent_set(&g, &[]), 0);
    }

    #[test]
    fn no_conflicts_takes_everything() {
        let g = ConflictGraph::new(6);
        assert_eq!(max_independent_set(&g, &ids(&[0, 2, 4])), 3);
        assert_eq!(max_independent_set(&g, &ids(&[0, 1, 2, 3, 4, 5])), 6);
    }

    #[test]
    fn complete_graph_takes_one() {
        let g = ConflictGraph::complete(8);
        assert_eq!(max_independent_set(&g, &ids(&[1, 3, 5, 7])), 1);
    }

    #[test]
    fn path_graph_alternates() {
        // Path 0-1-2-3-4: MIS = {0, 2, 4} = 3.
        let g = ConflictGraph::from_pairs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(max_independent_set(&g, &ids(&[0, 1, 2, 3, 4])), 3);
    }

    #[test]
    fn cycle_graph() {
        // 5-cycle: MIS = 2.
        let g = ConflictGraph::from_pairs(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(max_independent_set(&g, &ids(&[0, 1, 2, 3, 4])), 2);
    }

    #[test]
    fn star_graph() {
        // Centre 0 conflicts with all leaves: MIS = leaves.
        let g = ConflictGraph::from_pairs(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        assert_eq!(max_independent_set(&g, &ids(&[0, 1, 2, 3, 4, 5])), 5);
        assert_eq!(max_independent_set(&g, &ids(&[0])), 1);
    }

    #[test]
    fn restriction_to_allowed_set() {
        let g = ConflictGraph::from_pairs(4, &[(0, 1), (2, 3)]);
        // All events: pick one of each pair = 2.
        assert_eq!(max_independent_set(&g, &ids(&[0, 1, 2, 3])), 2);
        // Only the first pair allowed: 1.
        assert_eq!(max_independent_set(&g, &ids(&[0, 1])), 1);
        // Cross pair with no conflict: 2.
        assert_eq!(max_independent_set(&g, &ids(&[0, 2])), 2);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        // Exhaustive reference over n <= 12 vertices.
        let mut state = 0xABCDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..30 {
            let n = 4 + (trial % 8) as usize;
            let mut pairs = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if next() % 3 == 0 {
                        pairs.push((i, j));
                    }
                }
            }
            let g = ConflictGraph::from_pairs(n, &pairs);
            let all: Vec<EventId> = (0..n).map(EventId).collect();
            // Brute force.
            let mut best = 0;
            'subset: for mask in 0u32..(1 << n) {
                for i in 0..n {
                    if mask & (1 << i) == 0 {
                        continue;
                    }
                    for j in (i + 1)..n {
                        if mask & (1 << j) != 0 && g.are_conflicting(EventId(i), EventId(j)) {
                            continue 'subset;
                        }
                    }
                }
                best = best.max(mask.count_ones() as usize);
            }
            assert_eq!(
                max_independent_set(&g, &all),
                best,
                "trial {trial} n={n} pairs={pairs:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "|V| <= 64")]
    fn large_graphs_rejected() {
        let g = ConflictGraph::new(65);
        let _ = max_independent_set(&g, &[]);
    }
}

//! Remark 2 extension: time-varying event sets `V_t`.
//!
//! The paper notes (Remark 2) that "it is easy to extend FASEA to the
//! scenario where different sets of events V_t are revealed at different
//! time steps. For example, when a user logs in on Monday, V could be
//! the set of events on Tuesday and when a user logs in on Friday, V
//! could be the set of events on the weekend."
//!
//! This module implements that calendar as a [`RotatingSchedule`]:
//! events are assigned to slots (think weekdays), time advances through
//! slots in blocks of `slot_len` rounds, and at time `t` only the
//! events of the current slot — plus the always-available ones — can be
//! arranged. The simulator enforces availability by masking the
//! remaining-capacity view shown to policies (an unavailable event
//! looks full), so every existing policy works unmodified.

use fasea_core::EventId;
use fasea_stats::crn::mix64;

/// Slot index reserved for "always available" events.
pub const ALWAYS_AVAILABLE: u8 = u8::MAX;

/// A cyclic availability calendar over the event catalogue.
#[derive(Debug, Clone)]
pub struct RotatingSchedule {
    assignment: Vec<u8>,
    num_slots: u8,
    slot_len: u64,
}

impl RotatingSchedule {
    /// Assigns each of `n` events pseudo-randomly to one of `num_slots`
    /// slots; a fraction `always_fraction` of events is always
    /// available. Time advances one slot every `slot_len` rounds.
    ///
    /// # Panics
    /// Panics if `num_slots == 0`, `slot_len == 0` or `always_fraction`
    /// is outside `[0, 1]`.
    pub fn new(n: usize, num_slots: u8, slot_len: u64, always_fraction: f64, seed: u64) -> Self {
        assert!(num_slots > 0, "RotatingSchedule: num_slots must be > 0");
        assert!(slot_len > 0, "RotatingSchedule: slot_len must be > 0");
        assert!(
            (0.0..=1.0).contains(&always_fraction),
            "RotatingSchedule: always_fraction must be in [0, 1]"
        );
        let assignment = (0..n)
            .map(|v| {
                let h = mix64(seed ^ (v as u64).wrapping_mul(0x9FB21C651E98DF25));
                let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
                if frac < always_fraction {
                    ALWAYS_AVAILABLE
                } else {
                    (mix64(h) % num_slots as u64) as u8
                }
            })
            .collect();
        RotatingSchedule {
            assignment,
            num_slots,
            slot_len,
        }
    }

    /// Number of events covered.
    pub fn num_events(&self) -> usize {
        self.assignment.len()
    }

    /// Number of rotating slots.
    pub fn num_slots(&self) -> u8 {
        self.num_slots
    }

    /// The active slot at time `t`.
    pub fn slot_at(&self, t: u64) -> u8 {
        ((t / self.slot_len) % self.num_slots as u64) as u8
    }

    /// The slot event `v` is assigned to ([`ALWAYS_AVAILABLE`] if it is
    /// never masked).
    pub fn slot_of(&self, v: EventId) -> u8 {
        self.assignment[v.index()]
    }

    /// `true` iff event `v` can be arranged at time `t`.
    pub fn is_available(&self, t: u64, v: EventId) -> bool {
        let s = self.assignment[v.index()];
        s == ALWAYS_AVAILABLE || s == self.slot_at(t)
    }

    /// Writes the availability-masked remaining capacities into `out`
    /// (unavailable events appear full, i.e. 0).
    pub fn mask_remaining(&self, t: u64, remaining: &[u32], out: &mut Vec<u32>) {
        assert_eq!(
            remaining.len(),
            self.assignment.len(),
            "mask_remaining: |V| mismatch"
        );
        out.clear();
        out.extend(remaining.iter().enumerate().map(|(v, &r)| {
            if self.is_available(t, EventId(v)) {
                r
            } else {
                0
            }
        }));
    }

    /// Number of events available at time `t` (ignoring capacity).
    pub fn available_count(&self, t: u64) -> usize {
        (0..self.num_events())
            .filter(|&v| self.is_available(t, EventId(v)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_cycle_with_time() {
        let s = RotatingSchedule::new(10, 3, 5, 0.0, 1);
        assert_eq!(s.slot_at(0), 0);
        assert_eq!(s.slot_at(4), 0);
        assert_eq!(s.slot_at(5), 1);
        assert_eq!(s.slot_at(14), 2);
        assert_eq!(s.slot_at(15), 0);
    }

    #[test]
    fn availability_follows_assignment() {
        let s = RotatingSchedule::new(40, 4, 10, 0.0, 7);
        for t in [0u64, 13, 27, 39] {
            let slot = s.slot_at(t);
            for v in 0..40 {
                assert_eq!(s.is_available(t, EventId(v)), s.slot_of(EventId(v)) == slot);
            }
        }
    }

    #[test]
    fn always_available_events_never_masked() {
        let s = RotatingSchedule::new(200, 5, 3, 0.3, 11);
        let always: Vec<usize> = (0..200)
            .filter(|&v| s.slot_of(EventId(v)) == ALWAYS_AVAILABLE)
            .collect();
        assert!(!always.is_empty(), "expected some always-available events");
        // ~30% ± tolerance.
        let frac = always.len() as f64 / 200.0;
        assert!((frac - 0.3).abs() < 0.12, "frac={frac}");
        for t in 0..30 {
            for &v in &always {
                assert!(s.is_available(t, EventId(v)));
            }
        }
    }

    #[test]
    fn mask_remaining_zeroes_unavailable() {
        let s = RotatingSchedule::new(6, 2, 1, 0.0, 3);
        let remaining = [5u32; 6];
        let mut masked = Vec::new();
        s.mask_remaining(0, &remaining, &mut masked);
        for (v, &m) in masked.iter().enumerate() {
            if s.is_available(0, EventId(v)) {
                assert_eq!(m, 5);
            } else {
                assert_eq!(m, 0);
            }
        }
        // Complementary slot at t=1.
        let mut masked1 = Vec::new();
        s.mask_remaining(1, &remaining, &mut masked1);
        let avail0 = masked.iter().filter(|&&r| r > 0).count();
        let avail1 = masked1.iter().filter(|&&r| r > 0).count();
        assert_eq!(avail0 + avail1, 6);
    }

    #[test]
    fn all_slots_populated_for_large_catalogues() {
        let s = RotatingSchedule::new(500, 7, 10, 0.0, 9);
        let mut counts = [0usize; 7];
        for v in 0..500 {
            counts[s.slot_of(EventId(v)) as usize] += 1;
        }
        for (slot, &c) in counts.iter().enumerate() {
            assert!(c > 30, "slot {slot} nearly empty: {c}");
        }
        assert_eq!(counts.iter().sum::<usize>(), 500);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = RotatingSchedule::new(50, 4, 5, 0.2, 42);
        let b = RotatingSchedule::new(50, 4, 5, 0.2, 42);
        for v in 0..50 {
            assert_eq!(a.slot_of(EventId(v)), b.slot_of(EventId(v)));
        }
    }

    #[test]
    #[should_panic(expected = "num_slots must be > 0")]
    fn zero_slots_rejected() {
        let _ = RotatingSchedule::new(5, 0, 1, 0.0, 1);
    }
}

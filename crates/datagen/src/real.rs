//! The real-dataset analogue: a deterministic re-synthesis of the
//! paper's Damai.com study (Section 5.1, Table 3).
//!
//! The authors scraped 50 popular Beijing events and asked 19 users for
//! fixed Yes/No ground-truth feedbacks. Neither asset is public, so this
//! module rebuilds the study from its published schema:
//!
//! * **Events** carry exactly the Table 3 attributes: one of 6
//!   categories, a sub-category within it, performers, country/district,
//!   a lowest-price band, a day-of-week slot, plus a location and a
//!   concrete (day, start-hour, duration) used to derive conflicts
//!   ("a concert at 2016.10.21 7:30 pm is conflicting with another one
//!   at 2016.10.21 7:00 pm").
//! * **Features** are the paper's encoding: each categorical feature is
//!   binary-coded ([`crate::encode`]), concatenated with the normalised
//!   user↔event distance into a 20-dimensional vector, then divided by
//!   `d = 20`. The same feature block is shown every round (the real
//!   experiment is a pure learning-speed test).
//! * **Users** are interest profiles: a hidden per-user weight vector
//!   scores every event *linearly in its encoded features*, and the
//!   user's ground-truth "Yes" set is exactly the top-`k` events by that
//!   score, where `k` is the paper's reported `c_u = full` value
//!   (12, 26, 11, 10, 15, 22, 16, 7, 22, 11, 13, 19, 23, 11, 11, 7, 9,
//!   13, 17). Linear generation keeps the labels learnable by the
//!   paper's linear-payoff policies; matching `k` reproduces the
//!   Table 7 `c_u` row exactly.
//! * **Full Knowledge** is the exact maximum independent set of the
//!   user's Yes-events in the conflict graph ([`crate::mis`]).
//! * **OnlineGreedy-GEACC scores** implement reference \[39\]'s
//!   tag-interestingness: users prefer the category/sub-category tags of
//!   their Yes events; an event's interestingness is its fraction of
//!   preferred tags.

use crate::encode::{encode_categorical, normalize_by_dimension};
use crate::mis::max_independent_set;
use fasea_core::{
    ConflictGraph, ContextMatrix, EventId, ProblemInstance, ProblemMode, RewardModel,
};
use fasea_stats::dist::Distribution as _;
use fasea_stats::{rng_from_seed, Normal, Uniform};
use rand::Rng as _;

/// Number of events in the study.
pub const NUM_EVENTS: usize = 50;
/// Number of annotating users.
pub const NUM_USERS: usize = 19;
/// Feature dimensionality after encoding.
pub const DIM: usize = 20;

/// The paper's per-user "Yes" counts — the `c_u` row of Table 7.
pub const PAPER_YES_COUNTS: [usize; NUM_USERS] = [
    12, 26, 11, 10, 15, 22, 16, 7, 22, 11, 13, 19, 23, 11, 11, 7, 9, 13, 17,
];

/// Category catalogue (Table 3): `(name, sub-categories)`.
pub const CATEGORIES: [(&str, &[&str]); 6] = [
    ("Pop Concert", &["Pop", "Classic", "Folk", "Jazz"]),
    ("Theater", &["Drama", "Opera", "Musical", "Children drama"]),
    ("Sports", &["Basketball", "Football", "Boxing"]),
    ("Folk Art", &["Cross talk", "Magic", "Acrobatics"]),
    ("Music", &["Piano", "Orchestral", "Choral"]),
    (
        "Movie",
        &[
            "Adventure",
            "Cartoon",
            "Romance",
            "Fantasy",
            "Documentary",
            "Horror",
            "Comedy",
        ],
    ),
];

/// Performer kinds (Table 3).
pub const PERFORMERS: [&str; 3] = ["Male", "Female", "Group"];

/// Countries/districts (Table 3).
pub const COUNTRIES: [&str; 11] = [
    "Hong Kong",
    "Taiwan",
    "Mainland China",
    "Japan",
    "USA",
    "UK",
    "France",
    "Denmark",
    "Germany",
    "Canada",
    "Poland",
];

/// Lowest-price bands (Table 3, in yuan).
pub const PRICE_BANDS: [&str; 8] = [
    "0-49", "50-99", "100-149", "150-199", "200-299", "300-399", "400-599", ">=600",
];

/// Day-of-week values (Table 3).
pub const DAYS: [&str; 5] = ["Wed", "Fri", "Sat", "Sun", "Any"];

/// One catalogued event.
#[derive(Debug, Clone, PartialEq)]
pub struct RealEvent {
    /// Category index into [`CATEGORIES`].
    pub category: usize,
    /// Sub-category index within the category.
    pub subcategory: usize,
    /// Performer index into [`PERFORMERS`].
    pub performers: usize,
    /// Country index into [`COUNTRIES`].
    pub country: usize,
    /// Price-band index into [`PRICE_BANDS`].
    pub price_band: usize,
    /// Day-of-week index into [`DAYS`].
    pub day: usize,
    /// Venue location in the unit square (city map analogue).
    pub location: (f64, f64),
    /// Calendar day the event happens on (0-based day-of-study).
    pub calendar_day: u32,
    /// Start hour (fractional, 24h clock).
    pub start_hour: f64,
    /// Duration in hours.
    pub duration: f64,
}

impl RealEvent {
    /// `true` if this event's time slot overlaps `other`'s — the paper's
    /// conflict criterion.
    pub fn overlaps(&self, other: &RealEvent) -> bool {
        self.calendar_day == other.calendar_day
            && self.start_hour < other.start_hour + other.duration
            && other.start_hour < self.start_hour + self.duration
    }

    /// Encodes the event's categorical block plus the supplied
    /// user-specific normalised distance into the final `d = 20`,
    /// divide-by-`d` feature vector.
    pub fn encode(&self, normalized_distance: f64) -> Vec<f64> {
        let mut f = Vec::with_capacity(DIM);
        encode_categorical(self.category, CATEGORIES.len(), &mut f); // 3 bits
                                                                     // Sub-categories are coded over the maximum arity (7, Movie) so
                                                                     // every event uses the same layout.
        let max_sub = CATEGORIES.iter().map(|(_, s)| s.len()).max().unwrap();
        encode_categorical(self.subcategory, max_sub, &mut f); // 3 bits
        encode_categorical(self.performers, PERFORMERS.len(), &mut f); // 2 bits
        encode_categorical(self.country, COUNTRIES.len(), &mut f); // 4 bits
        encode_categorical(self.price_band, PRICE_BANDS.len(), &mut f); // 4 bits
        encode_categorical(self.day, DAYS.len(), &mut f); // 3 bits
        f.push(normalized_distance); // 1 numeric feature => 19 + 1 = 20
        debug_assert_eq!(f.len(), DIM);
        normalize_by_dimension(&mut f, DIM);
        f
    }
}

/// One annotating user.
#[derive(Debug, Clone, PartialEq)]
pub struct RealUser {
    /// Home location in the unit square.
    pub home: (f64, f64),
    /// Fixed ground-truth labels, one per event (the "Yes"/"No" answers).
    pub labels: Vec<bool>,
    /// The hidden linear preference weights that generated the labels
    /// (kept for diagnostics; policies never see them).
    pub preference_weights: Vec<f64>,
}

impl RealUser {
    /// Number of "Yes" answers — the user's `c_u = full` capacity.
    pub fn yes_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }
}

/// Deterministic reward model for real-data simulation: the acceptance
/// probability of event `v` is exactly 1 if the user's ground-truth
/// label is "Yes" and 0 otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelRewardModel {
    labels: Vec<bool>,
    dim: usize,
}

impl LabelRewardModel {
    /// Wraps a label table.
    pub fn new(labels: Vec<bool>, dim: usize) -> Self {
        LabelRewardModel { labels, dim }
    }
}

impl RewardModel for LabelRewardModel {
    fn dim(&self) -> usize {
        self.dim
    }

    fn accept_probability(&self, _ctx: &ContextMatrix, v: EventId) -> f64 {
        if self.labels[v.index()] {
            1.0
        } else {
            0.0
        }
    }

    fn expected_reward(&self, ctx: &ContextMatrix, v: EventId) -> f64 {
        self.accept_probability(ctx, v)
    }
}

/// The full generated study.
///
/// # Example
///
/// ```
/// use fasea_datagen::RealDataset;
///
/// let study = RealDataset::generate(2016); // the canonical seed
/// assert_eq!(study.num_events(), 50);
/// assert_eq!(study.num_users(), 19);
/// // Table 7's c_u row is reproduced exactly.
/// assert_eq!(study.yes_count(1), 26);
/// // Contexts respect the paper's ‖x‖ ≤ 1 bound.
/// assert!(study.contexts_for(0).rows_norm_bounded(1e-12));
/// ```
#[derive(Debug, Clone)]
pub struct RealDataset {
    events: Vec<RealEvent>,
    users: Vec<RealUser>,
    conflicts: ConflictGraph,
}

impl RealDataset {
    /// Generates the study deterministically from `seed`. The canonical
    /// dataset used by the experiment harness is `RealDataset::generate(2016)`
    /// (the year of the original collection).
    pub fn generate(seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let events = Self::generate_events(&mut rng);
        let conflicts = Self::derive_conflicts(&events);
        let users = Self::generate_users(&events, &mut rng);
        RealDataset {
            events,
            users,
            conflicts,
        }
    }

    fn generate_events(rng: &mut fasea_stats::Rng) -> Vec<RealEvent> {
        let uniform01 = Uniform::new(0.0, 1.0);
        let mut events = Vec::with_capacity(NUM_EVENTS);
        for i in 0..NUM_EVENTS {
            // Round-robin over categories so all six are populated
            // ("six categories of events were collected").
            let category = i % CATEGORIES.len();
            let subs = CATEGORIES[category].1.len();
            let subcategory = rng.gen_range(0..subs);
            let performers = rng.gen_range(0..PERFORMERS.len());
            let country = rng.gen_range(0..COUNTRIES.len());
            let price_band = rng.gen_range(0..PRICE_BANDS.len());
            let day = rng.gen_range(0..DAYS.len());
            let location = (uniform01.sample(rng), uniform01.sample(rng));
            // ~18 distinct calendar days over the study window, evening-
            // heavy start times: enough collisions for a sparse conflict
            // graph, mirroring the paper's date/time-derived conflicts.
            let calendar_day = rng.gen_range(0..18u32);
            let start_hour = 14.0 + uniform01.sample(rng) * 6.0; // 14:00–20:00
            let duration = 1.5 + uniform01.sample(rng) * 1.5; // 1.5–3 h
            events.push(RealEvent {
                category,
                subcategory,
                performers,
                country,
                price_band,
                day,
                location,
                calendar_day,
                start_hour,
                duration,
            });
        }
        events
    }

    fn derive_conflicts(events: &[RealEvent]) -> ConflictGraph {
        let mut g = ConflictGraph::new(events.len());
        for i in 0..events.len() {
            for j in (i + 1)..events.len() {
                if events[i].overlaps(&events[j]) {
                    g.add_conflict(EventId(i), EventId(j));
                }
            }
        }
        g
    }

    fn generate_users(events: &[RealEvent], rng: &mut fasea_stats::Rng) -> Vec<RealUser> {
        let uniform01 = Uniform::new(0.0, 1.0);
        let normal = Normal::standard();
        let mut users = Vec::with_capacity(NUM_USERS);
        for &yes_count in PAPER_YES_COUNTS.iter() {
            let home = (uniform01.sample(rng), uniform01.sample(rng));
            // Hidden linear preference over the encoded features. A
            // negative weight on the distance coordinate encodes "closer
            // is better" (the paper's observation that users may prefer
            // nearer events).
            let mut w: Vec<f64> = (0..DIM).map(|_| normal.sample(rng)).collect();
            w[DIM - 1] = -w[DIM - 1].abs(); // distance dimension
                                            // Score every event with that user's encoded features and
                                            // label the top `yes_count` as "Yes".
            let scores: Vec<f64> = events
                .iter()
                .map(|e| {
                    let x = e.encode(normalized_distance(home, e.location));
                    x.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>()
                })
                .collect();
            let mut order: Vec<usize> = (0..events.len()).collect();
            order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
            let mut labels = vec![false; events.len()];
            for &i in order.iter().take(yes_count) {
                labels[i] = true;
            }
            users.push(RealUser {
                home,
                labels,
                preference_weights: w,
            });
        }
        users
    }

    /// The 50 events.
    pub fn events(&self) -> &[RealEvent] {
        &self.events
    }

    /// The 19 users.
    pub fn users(&self) -> &[RealUser] {
        &self.users
    }

    /// Conflicts derived from overlapping time slots.
    pub fn conflicts(&self) -> &ConflictGraph {
        &self.conflicts
    }

    /// Number of events.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// The fixed `|V| × 20` feature block shown to user `u` every round.
    pub fn contexts_for(&self, user: usize) -> ContextMatrix {
        let home = self.users[user].home;
        let mut data = Vec::with_capacity(self.events.len() * DIM);
        for e in &self.events {
            data.extend(e.encode(normalized_distance(home, e.location)));
        }
        ContextMatrix::from_rows(self.events.len(), DIM, data)
    }

    /// Ground-truth labels of user `u`.
    pub fn labels(&self, user: usize) -> &[bool] {
        &self.users[user].labels
    }

    /// The deterministic reward model for user `u`'s simulation.
    pub fn reward_model(&self, user: usize) -> LabelRewardModel {
        LabelRewardModel::new(self.users[user].labels.clone(), DIM)
    }

    /// "Yes" count of user `u` (their `c_u = full` capacity).
    pub fn yes_count(&self, user: usize) -> usize {
        self.users[user].yes_count()
    }

    /// "Full Knowledge" for user `u`: the exact maximum number of
    /// mutually non-conflicting events the user would accept.
    pub fn full_knowledge(&self, user: usize) -> usize {
        let liked: Vec<EventId> = self.users[user]
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(i, _)| EventId(i))
            .collect();
        max_independent_set(&self.conflicts, &liked)
    }

    /// The problem instance for real-data runs: unlimited event
    /// capacities (the study probes learning speed over repeated rounds
    /// with the same user, not capacity depletion) and the time-derived
    /// conflict graph.
    pub fn instance(&self) -> ProblemInstance {
        ProblemInstance::new(
            vec![u32::MAX; self.events.len()],
            self.conflicts.clone(),
            DIM,
            ProblemMode::Fasea,
        )
    }

    /// OnlineGreedy-GEACC interestingness scores for user `u`
    /// (reference \[39\]): the user's preferred tags are the
    /// category/sub-category tags of their "Yes" events; an event's
    /// interestingness is the fraction of its two tags the user prefers.
    pub fn online_greedy_scores(&self, user: usize) -> Vec<f64> {
        use std::collections::HashSet;
        let mut preferred: HashSet<(usize, Option<usize>)> = HashSet::new();
        for (i, e) in self.events.iter().enumerate() {
            if self.users[user].labels[i] {
                preferred.insert((e.category, None));
                preferred.insert((e.category, Some(e.subcategory)));
            }
        }
        self.events
            .iter()
            .map(|e| {
                let mut hit = 0usize;
                if preferred.contains(&(e.category, None)) {
                    hit += 1;
                }
                if preferred.contains(&(e.category, Some(e.subcategory))) {
                    hit += 1;
                }
                hit as f64 / 2.0
            })
            .collect()
    }
}

/// Euclidean distance between two unit-square points, normalised by the
/// square's diagonal so the result lies in `[0, 1]` — the paper's
/// "normalized distance" feature.
pub fn normalized_distance(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    (dx * dx + dy * dy).sqrt() / std::f64::consts::SQRT_2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> RealDataset {
        RealDataset::generate(2016)
    }

    #[test]
    fn dimensions_match_paper() {
        let d = dataset();
        assert_eq!(d.num_events(), 50);
        assert_eq!(d.num_users(), 19);
        assert_eq!(d.contexts_for(0).dim(), 20);
        assert_eq!(d.contexts_for(0).num_events(), 50);
    }

    #[test]
    fn yes_counts_match_table7_cu_row() {
        let d = dataset();
        for (u, &expect) in PAPER_YES_COUNTS.iter().enumerate() {
            assert_eq!(d.yes_count(u), expect, "user u{}", u + 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = RealDataset::generate(2016);
        let b = RealDataset::generate(2016);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.users(), b.users());
        assert_eq!(a.conflicts(), b.conflicts());
    }

    #[test]
    fn contexts_satisfy_norm_bound() {
        let d = dataset();
        for u in 0..d.num_users() {
            assert!(d.contexts_for(u).rows_norm_bounded(1e-12), "user {u}");
        }
    }

    #[test]
    fn all_categories_populated() {
        let d = dataset();
        let mut seen = [false; 6];
        for e in d.events() {
            seen[e.category] = true;
            assert!(e.subcategory < CATEGORIES[e.category].1.len());
        }
        assert!(seen.iter().all(|&s| s), "missing category: {seen:?}");
    }

    #[test]
    fn conflicts_come_from_time_overlap() {
        let d = dataset();
        for (i, j) in d.conflicts().pairs() {
            assert!(d.events()[i.index()].overlaps(&d.events()[j.index()]));
        }
        // And the graph is sparse but non-empty (the paper's Full
        // Knowledge < 1 for c_u = full needs some conflicts).
        assert!(d.conflicts().num_conflicts() > 0);
        assert!(d.conflicts().conflict_ratio() < 0.2);
    }

    #[test]
    fn overlap_predicate() {
        let mut e1 = dataset().events()[0].clone();
        let mut e2 = e1.clone();
        e1.calendar_day = 3;
        e1.start_hour = 19.5;
        e1.duration = 2.0;
        e2.calendar_day = 3;
        e2.start_hour = 19.0;
        e2.duration = 2.0;
        assert!(e1.overlaps(&e2)); // the paper's 7:30pm vs 7:00pm example
        e2.start_hour = 21.5;
        assert!(!e1.overlaps(&e2)); // back-to-back, no overlap
        e2.calendar_day = 4;
        e2.start_hour = 19.0;
        assert!(!e1.overlaps(&e2)); // different days never conflict
    }

    #[test]
    fn full_knowledge_at_most_yes_count() {
        let d = dataset();
        for u in 0..d.num_users() {
            let fk = d.full_knowledge(u);
            assert!(fk <= d.yes_count(u), "user {u}");
            assert!(fk >= 1, "user {u} has no acceptable event at all");
        }
    }

    #[test]
    fn some_user_is_conflict_limited() {
        // The paper's c_u = full Full-Knowledge row is < 1 for several
        // users — i.e. conflicts bite. At least one user must have
        // MIS < yes_count.
        let d = dataset();
        let limited = (0..d.num_users()).any(|u| d.full_knowledge(u) < d.yes_count(u));
        assert!(limited, "conflict graph never binds — dataset too easy");
    }

    #[test]
    fn labels_are_linearly_generated_hence_learnable() {
        // A ridge fit on (features, labels) must rank most Yes events
        // above most No events — the property the bandit experiment
        // depends on.
        let d = dataset();
        for u in [0usize, 7, 15] {
            let ctx = d.contexts_for(u);
            let labels = d.labels(u);
            let mut est = fasea_bandit_testshim::fit(&ctx, labels);
            let mut yes_scores = Vec::new();
            let mut no_scores = Vec::new();
            for (v, &label) in labels.iter().enumerate() {
                let s = est.point_estimate(ctx.context(EventId(v)));
                if label {
                    yes_scores.push(s);
                } else {
                    no_scores.push(s);
                }
            }
            let yes_mean: f64 = yes_scores.iter().sum::<f64>() / yes_scores.len() as f64;
            let no_mean: f64 = no_scores.iter().sum::<f64>() / no_scores.len() as f64;
            assert!(
                yes_mean > no_mean,
                "user {u}: yes mean {yes_mean} <= no mean {no_mean}"
            );
        }
    }

    /// Minimal in-test ridge fit (avoids a dev-dependency cycle on
    /// fasea-bandit).
    mod fasea_bandit_testshim {
        use fasea_core::{ContextMatrix, EventId};
        use fasea_linalg::{Cholesky, Matrix, Vector};

        pub struct Fit {
            theta: Vector,
        }

        impl Fit {
            pub fn point_estimate(&mut self, x: &[f64]) -> f64 {
                fasea_linalg::dot_slices(x, self.theta.as_slice())
            }
        }

        pub fn fit(ctx: &ContextMatrix, labels: &[bool]) -> Fit {
            let d = ctx.dim();
            let mut y = Matrix::scaled_identity(d, 1e-3);
            let mut b = Vector::zeros(d);
            for (v, &label) in labels.iter().enumerate() {
                let x = Vector::from(ctx.context(EventId(v)));
                y.add_outer(&x, 1.0);
                if label {
                    b.axpy(1.0, &x);
                }
            }
            let theta = Cholesky::factor(&y).unwrap().solve(&b);
            Fit { theta }
        }
    }

    #[test]
    fn label_reward_model_is_deterministic() {
        let d = dataset();
        let m = d.reward_model(0);
        let ctx = d.contexts_for(0);
        for v in 0..d.num_events() {
            let p = m.accept_probability(&ctx, EventId(v));
            assert_eq!(p, if d.labels(0)[v] { 1.0 } else { 0.0 });
            assert_eq!(p, m.expected_reward(&ctx, EventId(v)));
        }
        assert_eq!(m.dim(), DIM);
    }

    #[test]
    fn online_greedy_scores_favour_preferred_tags() {
        let d = dataset();
        for u in 0..d.num_users() {
            let scores = d.online_greedy_scores(u);
            assert_eq!(scores.len(), d.num_events());
            // Every Yes event carries both of its own tags.
            for (v, &label) in d.labels(u).iter().enumerate() {
                if label {
                    assert_eq!(scores[v], 1.0, "user {u} event {v}");
                }
                assert!((0.0..=1.0).contains(&scores[v]));
            }
        }
    }

    #[test]
    fn instance_has_unlimited_capacity_and_dataset_conflicts() {
        let d = dataset();
        let inst = d.instance();
        assert_eq!(inst.num_events(), 50);
        assert_eq!(inst.dim(), 20);
        assert_eq!(inst.capacity(EventId(0)), u32::MAX);
        assert_eq!(
            inst.conflicts().num_conflicts(),
            d.conflicts().num_conflicts()
        );
    }

    #[test]
    fn normalized_distance_bounds() {
        assert_eq!(normalized_distance((0.0, 0.0), (0.0, 0.0)), 0.0);
        assert!((normalized_distance((0.0, 0.0), (1.0, 1.0)) - 1.0).abs() < 1e-12);
        let d = normalized_distance((0.2, 0.4), (0.7, 0.1));
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn different_users_see_different_distance_features() {
        let d = dataset();
        let c0 = d.contexts_for(0);
        let c1 = d.contexts_for(1);
        // Categorical block identical, distance dimension differs.
        let dist_dim = DIM - 1;
        let mut any_diff = false;
        for v in 0..d.num_events() {
            let r0 = c0.context(EventId(v));
            let r1 = c1.context(EventId(v));
            assert_eq!(r0[..dist_dim], r1[..dist_dim], "categorical block differs");
            if (r0[dist_dim] - r1[dist_dim]).abs() > 1e-12 {
                any_diff = true;
            }
        }
        assert!(any_diff);
    }
}

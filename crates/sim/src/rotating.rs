//! Remark 2 runner: time-varying event sets `V_t`.
//!
//! Availability is enforced by masking the remaining-capacity view a
//! policy sees — an unavailable event looks full, so Oracle-Greedy-based
//! policies skip it without modification — while the true capacity pool
//! persists across slots (a Tuesday event not shown on Monday keeps its
//! seats).

use fasea_bandit::{Opt, Policy, SelectionView};
use fasea_core::{Environment, RegretAccounting};
use fasea_datagen::{RotatingSchedule, SyntheticWorkload};
use fasea_stats::CoinStream;

/// Result of one policy under the rotating calendar.
#[derive(Debug, Clone)]
pub struct RotatingRunResult {
    /// Policy display name.
    pub name: String,
    /// Final accounting.
    pub accounting: RegretAccounting,
    /// OPT's total rewards under the same calendar (regret reference).
    pub opt_rewards: u64,
}

/// Runs `policies` plus OPT under an availability schedule. Both see
/// only the masked remaining capacities; arrangements are additionally
/// asserted to respect availability.
pub fn run_rotating(
    workload: &SyntheticWorkload,
    schedule: &RotatingSchedule,
    policies: &mut [Box<dyn Policy>],
    horizon: u64,
    feedback_seed: u64,
) -> Vec<RotatingRunResult> {
    assert_eq!(
        schedule.num_events(),
        workload.instance.num_events(),
        "run_rotating: schedule does not cover the catalogue"
    );
    let coins = CoinStream::new(feedback_seed);
    let mut opt = Opt::new(workload.model.clone());

    struct State<'a> {
        policy: &'a mut dyn Policy,
        env: Environment,
        accounting: RegretAccounting,
        arrangement: fasea_core::Arrangement,
    }
    let mut opt_state = State {
        policy: &mut opt,
        env: Environment::new(workload.instance.clone(), workload.model.clone(), coins),
        accounting: RegretAccounting::new(),
        arrangement: fasea_core::Arrangement::empty(),
    };
    let mut states: Vec<State<'_>> = policies
        .iter_mut()
        .map(|p| State {
            policy: p.as_mut(),
            env: Environment::new(workload.instance.clone(), workload.model.clone(), coins),
            accounting: RegretAccounting::new(),
            arrangement: fasea_core::Arrangement::empty(),
        })
        .collect();

    let mut masked = Vec::new();
    for t in 0..horizon {
        let arrival = workload.arrivals.arrival(t);
        for st in std::iter::once(&mut opt_state).chain(states.iter_mut()) {
            schedule.mask_remaining(t, st.env.remaining(), &mut masked);
            let view = SelectionView {
                t,
                user_capacity: arrival.capacity,
                contexts: &arrival.contexts,
                conflicts: st.env.instance().conflicts(),
                remaining: &masked,
            };
            st.policy.select_into(&view, &mut st.arrangement);
            let arrangement = &st.arrangement;
            for &v in arrangement.events() {
                assert!(
                    schedule.is_available(t, v),
                    "{} arranged unavailable event {v} at t={t}",
                    st.policy.name()
                );
            }
            let outcome = st
                .env
                .step(t, &arrival, arrangement)
                .unwrap_or_else(|e| panic!("{}: {e}", st.policy.name()));
            st.policy
                .observe(t, &arrival.contexts, arrangement, &outcome.feedback);
            st.accounting
                .record_round(arrangement.len(), outcome.reward);
        }
    }

    let opt_rewards = opt_state.accounting.total_rewards();
    states
        .into_iter()
        .map(|st| RotatingRunResult {
            name: st.policy.name().to_string(),
            accounting: st.accounting,
            opt_rewards,
        })
        .collect()
}

/// Convenience: fraction of the catalogue visible at time `t` — used by
/// reports to annotate how much the calendar constrains each slot.
pub fn visibility(schedule: &RotatingSchedule, t: u64) -> f64 {
    schedule.available_count(t) as f64 / schedule.num_events().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_bandit::{LinUcb, RandomPolicy};
    use fasea_datagen::SyntheticConfig;

    fn workload(seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::generate(SyntheticConfig {
            num_events: 40,
            dim: 5,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn arrangements_respect_the_calendar() {
        let w = workload(5);
        let schedule = RotatingSchedule::new(40, 4, 7, 0.1, 3);
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(LinUcb::new(5, 1.0, 2.0)),
            Box::new(RandomPolicy::new(1)),
        ];
        // The availability assertion inside run_rotating is the test.
        let results = run_rotating(&w, &schedule, &mut policies, 500, 9);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.accounting.rounds(), 500);
        }
    }

    #[test]
    fn learning_still_beats_random_under_rotation() {
        let w = workload(8);
        let schedule = RotatingSchedule::new(40, 3, 10, 0.2, 4);
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(LinUcb::new(5, 1.0, 2.0)),
            Box::new(RandomPolicy::new(2)),
        ];
        let results = run_rotating(&w, &schedule, &mut policies, 2500, 11);
        let ucb = results[0].accounting.total_rewards();
        let random = results[1].accounting.total_rewards();
        assert!(ucb > random, "UCB {ucb} <= Random {random}");
        assert!(results[0].opt_rewards >= ucb.min(results[0].opt_rewards));
    }

    #[test]
    fn rotation_reduces_per_round_choice() {
        let w = workload(13);
        // One slot of 5 ⇒ ~1/5 of events visible per round (plus none
        // always available).
        let schedule = RotatingSchedule::new(40, 5, 1, 0.0, 6);
        let mut total_visible = 0.0;
        for t in 0..100 {
            total_visible += visibility(&schedule, t);
        }
        let mean_visibility = total_visible / 100.0;
        assert!(
            (mean_visibility - 0.2).abs() < 0.1,
            "mean visibility {mean_visibility}"
        );
        // And a run completes under the tight calendar.
        let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(RandomPolicy::new(3))];
        let results = run_rotating(&w, &schedule, &mut policies, 300, 17);
        assert_eq!(results[0].accounting.rounds(), 300);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn schedule_size_mismatch_panics() {
        let w = workload(1);
        let schedule = RotatingSchedule::new(10, 2, 1, 0.0, 1);
        let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(RandomPolicy::new(1))];
        let _ = run_rotating(&w, &schedule, &mut policies, 10, 1);
    }
}

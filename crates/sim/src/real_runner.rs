//! Real-dataset simulation (Figure 10 and Table 7).
//!
//! The real experiment differs from the synthetic one in three ways:
//! the same user returns every round with the **same** fixed feature
//! block ("to test how quickly each algorithm can learn users' favored
//! events, we display the same set of feature vectors in each round");
//! feedback is the user's deterministic ground-truth label; and the
//! regret reference is the analytic "Full Knowledge" bound rather than a
//! simulated OPT.

use fasea_bandit::{Policy, SelectionView};
use fasea_core::{Environment, RegretAccounting, UserArrival};
use fasea_datagen::RealDataset;
use fasea_stats::CoinStream;

/// The two user-capacity regimes of the real experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CuMode {
    /// Every round arranges up to 5 events (`c_u = 5`).
    Five,
    /// `c_u` equals the user's number of "Yes" labels (`c_u = full`).
    Full,
}

impl CuMode {
    /// Resolves the capacity for a given user.
    pub fn capacity(self, dataset: &RealDataset, user: usize) -> u32 {
        match self {
            CuMode::Five => 5,
            CuMode::Full => dataset.yes_count(user) as u32,
        }
    }

    /// Display label ("5" / "full").
    pub fn label(self) -> &'static str {
        match self {
            CuMode::Five => "5",
            CuMode::Full => "full",
        }
    }
}

/// Configuration of one real-data run.
#[derive(Debug, Clone)]
pub struct RealRunConfig {
    /// Which user is simulated (0-based; the paper's u₁ is user 0).
    pub user: usize,
    /// Capacity regime.
    pub cu_mode: CuMode,
    /// Rounds to play (1000 for Table 7 accept ratios, 10 000 for
    /// Figure 10's regret panel).
    pub rounds: u64,
    /// Checkpoint grid.
    pub checkpoints: Vec<u64>,
}

/// Result of one policy on one real-data run.
#[derive(Debug, Clone)]
pub struct RealRunResult {
    /// Policy display name.
    pub name: String,
    /// Snapshots: `(t, accept_ratio, total_regret)`.
    pub checkpoints: Vec<(u64, f64, i64)>,
    /// Final accounting.
    pub accounting: RegretAccounting,
    /// The "Full Knowledge" per-round reward this run was measured
    /// against.
    pub full_knowledge_per_round: u32,
}

/// The analytic Full-Knowledge accept ratio for a `(user, mode)` cell:
/// `min(MIS, c_u) / c_u`, where MIS is the user's largest
/// non-conflicting accepted set. This matches the paper's convention of
/// "still arranging `c_u` events even if fewer can all be accepted".
pub fn full_knowledge_ratio(dataset: &RealDataset, user: usize, mode: CuMode) -> f64 {
    let cu = mode.capacity(dataset, user);
    if cu == 0 {
        return 0.0;
    }
    let mis = dataset.full_knowledge(user) as u32;
    mis.min(cu) as f64 / cu as f64
}

/// Runs `policies` for one `(user, mode)` cell. All policies share the
/// feedback determinism trivially (labels are deterministic), so no
/// common-random-number machinery is needed beyond a fixed coin seed.
pub fn run_real(
    dataset: &RealDataset,
    config: &RealRunConfig,
    policies: &mut [Box<dyn Policy>],
) -> Vec<RealRunResult> {
    let instance = dataset.instance();
    let model = dataset.reward_model(config.user);
    let contexts = dataset.contexts_for(config.user);
    let cu = config.cu_mode.capacity(dataset, config.user);
    let fk_per_round = (dataset.full_knowledge(config.user) as u32).min(cu);

    policies
        .iter_mut()
        .map(|policy| {
            let mut env = Environment::new(
                instance.clone(),
                model.clone(),
                CoinStream::new(0x9EA1_DA7A),
            );
            let mut accounting = RegretAccounting::new();
            let mut checkpoints = Vec::new();
            let mut next_cp = 0usize;
            let mut arrangement = fasea_core::Arrangement::empty();
            for t in 0..config.rounds {
                let arrival = UserArrival::new(cu, contexts.clone());
                let view = SelectionView {
                    t,
                    user_capacity: cu,
                    contexts: &arrival.contexts,
                    conflicts: env.instance().conflicts(),
                    remaining: env.remaining(),
                };
                policy.select_into(&view, &mut arrangement);
                let outcome = env
                    .step(t, &arrival, &arrangement)
                    .unwrap_or_else(|e| panic!("{}: infeasible arrangement: {e}", policy.name()));
                policy.observe(t, &arrival.contexts, &arrangement, &outcome.feedback);
                accounting.record_round(arrangement.len(), outcome.reward);
                if next_cp < config.checkpoints.len() && t + 1 == config.checkpoints[next_cp] {
                    let fk_total = (fk_per_round as u64 * (t + 1)) as i64;
                    let regret = fk_total - accounting.total_rewards() as i64;
                    checkpoints.push((t + 1, accounting.accept_ratio(), regret));
                    next_cp += 1;
                }
            }
            RealRunResult {
                name: policy.name().to_string(),
                checkpoints,
                accounting,
                full_knowledge_per_round: fk_per_round,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_bandit::{
        EpsilonGreedy, Exploit, LinUcb, RandomPolicy, StaticScorePolicy, ThompsonSampling,
    };

    fn dataset() -> RealDataset {
        RealDataset::generate(2016)
    }

    fn policy_set(seed: u64) -> Vec<Box<dyn Policy>> {
        vec![
            Box::new(LinUcb::new(20, 1.0, 2.0)),
            Box::new(ThompsonSampling::new(20, 1.0, 0.1, seed)),
            Box::new(EpsilonGreedy::new(20, 1.0, 0.1, seed ^ 1)),
            Box::new(Exploit::new(20, 1.0)),
            Box::new(RandomPolicy::new(seed ^ 2)),
        ]
    }

    #[test]
    fn full_knowledge_ratio_is_one_for_cu5_when_mis_large() {
        let d = dataset();
        for u in 0..d.num_users() {
            let ratio5 = full_knowledge_ratio(&d, u, CuMode::Five);
            assert!(ratio5 <= 1.0);
            if d.full_knowledge(u) >= 5 {
                assert_eq!(ratio5, 1.0, "user {u}");
            }
            let ratio_full = full_knowledge_ratio(&d, u, CuMode::Full);
            let expect = d.full_knowledge(u) as f64 / d.yes_count(u) as f64;
            assert!((ratio_full - expect).abs() < 1e-12, "user {u}");
        }
    }

    #[test]
    fn ucb_learns_user_preferences_quickly() {
        let d = dataset();
        let cfg = RealRunConfig {
            user: 0,
            cu_mode: CuMode::Five,
            rounds: 1000,
            checkpoints: vec![1000],
        };
        let mut policies = policy_set(3);
        let results = run_real(&d, &cfg, &mut policies);
        let ucb = &results[0];
        let random = &results[4];
        assert!(
            ucb.accounting.accept_ratio() > 0.7,
            "UCB accept ratio too low: {}",
            ucb.accounting.accept_ratio()
        );
        assert!(
            ucb.accounting.accept_ratio() > random.accounting.accept_ratio() + 0.2,
            "UCB {} vs Random {}",
            ucb.accounting.accept_ratio(),
            random.accounting.accept_ratio()
        );
    }

    #[test]
    fn online_greedy_is_static_but_competitive() {
        let d = dataset();
        let scores = d.online_greedy_scores(3);
        let mut policies: Vec<Box<dyn Policy>> =
            vec![Box::new(StaticScorePolicy::new("Online", scores))];
        let cfg = RealRunConfig {
            user: 3,
            cu_mode: CuMode::Five,
            rounds: 50,
            checkpoints: vec![50],
        };
        let results = run_real(&d, &cfg, &mut policies);
        // Tag-overlap scores rank Yes events at 1.0, so accept ratio is
        // well above random guessing (the Yes prevalence is 10/50).
        assert!(
            results[0].accounting.accept_ratio() > 0.3,
            "{}",
            results[0].accounting.accept_ratio()
        );
    }

    #[test]
    fn checkpoints_and_regret_bookkeeping() {
        let d = dataset();
        let cfg = RealRunConfig {
            user: 1,
            cu_mode: CuMode::Full,
            rounds: 100,
            checkpoints: vec![50, 100],
        };
        let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(RandomPolicy::new(1))];
        let results = run_real(&d, &cfg, &mut policies);
        let r = &results[0];
        assert_eq!(r.checkpoints.len(), 2);
        let (t, ratio, regret) = r.checkpoints[1];
        assert_eq!(t, 100);
        assert!((0.0..=1.0).contains(&ratio));
        // Regret vs Full Knowledge is non-negative for Random (FK is an
        // upper bound per round).
        assert!(regret >= 0, "regret={regret}");
        assert_eq!(
            r.full_knowledge_per_round,
            d.full_knowledge(1).min(d.yes_count(1)) as u32
        );
    }

    #[test]
    fn exploit_can_deadlock_at_zero_on_some_user() {
        // The paper reports accept ratio 0 for Exploit on u₈/u₁₀/u₁₆
        // (0-based 7/9/15). With deterministic labels and fixed contexts
        // the dead-lock depends on the initial tie-break; verify the
        // mechanism: if the first arrangement has all-No labels, the
        // ratio stays 0 forever.
        let d = dataset();
        for user in 0..d.num_users() {
            let cfg = RealRunConfig {
                user,
                cu_mode: CuMode::Five,
                rounds: 200,
                checkpoints: vec![1, 200],
            };
            let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(Exploit::new(20, 1.0))];
            let results = run_real(&d, &cfg, &mut policies);
            let first_ratio = results[0].checkpoints[0].1;
            let final_ratio = results[0].checkpoints[1].1;
            if first_ratio == 0.0 {
                assert_eq!(
                    final_ratio, 0.0,
                    "user {user}: dead-lock should persist once entered"
                );
            }
        }
    }
}

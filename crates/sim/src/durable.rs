//! Crash-safe wrapper around [`ArrangementService`].
//!
//! A [`DurableArrangementService`] writes every protocol step to a
//! [`fasea_store`] write-ahead log and can be reopened after a crash
//! with *byte-identical* state — estimator matrices, policy RNG
//! position, remaining capacities, round counter and regret accounting
//! all match what an uninterrupted run would hold. The irrevocability
//! rule of the FASEA protocol (Definition 3) is what makes this
//! non-negotiable: a proposal a user may have seen cannot be retracted,
//! so it must never be lost, and a round must never be proposed twice.
//!
//! ## Logging discipline
//!
//! * **`propose` is compute-then-log.** The policy selects first, then
//!   the full round input (contexts, capacity) *and* the decision are
//!   appended as a `Propose` record. If the process dies before the
//!   record is durable, nothing was exposed that recovery must honour —
//!   and because the policy's RNG position is itself recovered from the
//!   log (via snapshot + replay), re-proposing after restart draws
//!   exactly the same arrangement.
//! * **`feedback` is validate-log-apply.** The answers are checked
//!   against the pending proposal, appended as a `Feedback` record, and
//!   only then applied to the learner and capacities. A crash between
//!   append and apply replays the record on reopen.
//!
//! ## Recovery
//!
//! [`DurableArrangementService::open`] loads the newest valid snapshot
//! (if any), restores the policy's state blob into the caller-supplied
//! policy, then replays the WAL suffix. Replay *re-executes* each
//! `Propose` through the real policy and compares the decision with the
//! logged one — divergence (a changed policy, seed, or numeric
//! environment) aborts recovery with
//! [`ServiceError::RecoveryDiverged`] instead of silently forking
//! history. A log that ends after a `Propose` but before its `Feedback`
//! surfaces as [`has_pending`](DurableArrangementService::has_pending):
//! the caller decides whether to re-deliver the proposal or record a
//! rejection; the service never silently re-proposes.
//!
//! Logs and snapshots are bound to a *service fingerprint* (instance
//! shape, capacities, conflicts, mode, policy name), so state from a
//! differently-configured service is rejected up front.

use crate::service::{ArrangementService, ServiceError};
use crate::snapshotter::{run_snapshot, Snapshotter};
use fasea_bandit::Policy;
use fasea_core::{
    Arrangement, ContextMatrix, EventId, ProblemInstance, ProblemMode, RegretAccounting,
    UserArrival,
};
use fasea_store::snapshot::{latest_snapshot, prune_snapshots};
use fasea_store::wal::Recovered;
pub use fasea_store::FsyncPolicy;
use fasea_store::{
    context_hash, CommitNotifier, CommitObserver, GroupCommitWal, PendingProposal, Record,
    ServiceSnapshot, StoreError, Wal, WalOptions,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Tuning for the durable service.
///
/// Marked `#[non_exhaustive]`: construct it with [`DurableOptions::new`]
/// (or `Default::default()`) and refine with the builder methods, so new
/// durability knobs can be added without breaking downstream crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct DurableOptions {
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// When appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// How many snapshots to keep on disk (older ones are pruned after
    /// each successful snapshot; at least 1).
    pub snapshots_kept: usize,
    /// Scoring threads for the wrapped policy: `0` or `1` keeps scoring
    /// serial, `N > 1` installs an `N`-wide [`fasea_bandit::ScorePool`]
    /// (installed before WAL replay, so recovery exercises the same
    /// path). Parallel scoring is bit-identical to serial, so this knob
    /// never changes decisions — only wall-clock.
    pub score_threads: usize,
    /// Route appends through the group-commit pipeline: a dedicated
    /// syncer thread batches writes + fsyncs (N records share one
    /// syscall pair) and snapshots run on a background thread. The
    /// durability *guarantee* is unchanged per fsync policy — the
    /// blocking [`DurableArrangementService::propose`] /
    /// [`DurableArrangementService::feedback`] wait for the watermark,
    /// and the `_deferred` variants hand the caller an LSN to gate its
    /// own acknowledgements on.
    pub group_commit: bool,
    /// Which arrangement [`fasea_bandit::Oracle`] the service runs.
    /// The default ([`fasea_bandit::OracleKind::Greedy`]) is
    /// bit-identical to the historical behaviour and keeps existing
    /// logs valid; a non-greedy oracle changes decisions, so its name
    /// is mixed into the service fingerprint and the oracle is
    /// installed *before* WAL replay (recovery re-executes proposals
    /// through it).
    pub oracle: fasea_bandit::OracleOptions,
    /// An extra salt mixed into the service fingerprint when non-zero.
    /// `0` (the default) contributes nothing, keeping existing logs
    /// valid. Callers whose policy construction takes knobs invisible
    /// to [`service_fingerprint`] — e.g. a personalized model store's
    /// cohort or sketched-state configuration, which change decisions
    /// without changing the policy name — must fold those knobs into
    /// this salt so stale logs are rejected instead of replaying
    /// divergently.
    pub fingerprint_salt: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            segment_bytes: 4 << 20,
            fsync: FsyncPolicy::EveryN(32),
            snapshots_kept: 2,
            score_threads: 0,
            group_commit: false,
            oracle: fasea_bandit::OracleOptions::new(),
            fingerprint_salt: 0,
        }
    }
}

impl DurableOptions {
    /// The default tuning (4 MiB segments, fsync every 32 appends, two
    /// snapshots kept).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the WAL segment rotation threshold in bytes.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Sets when appends reach stable storage.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Sets how many snapshots to keep on disk (clamped to at least 1
    /// by the pruning logic).
    pub fn with_snapshots_kept(mut self, kept: usize) -> Self {
        self.snapshots_kept = kept;
        self
    }

    /// Sets the scoring thread count (`0`/`1` = serial; `N > 1`
    /// installs a shared score pool — bit-identical results, faster
    /// rounds on multi-core hosts).
    pub fn with_score_threads(mut self, threads: usize) -> Self {
        self.score_threads = threads;
        self
    }

    /// Enables (or disables) the group-commit pipeline + background
    /// snapshotter. See [`DurableOptions::group_commit`].
    pub fn with_group_commit(mut self, enabled: bool) -> Self {
        self.group_commit = enabled;
        self
    }

    /// Selects the arrangement oracle. See [`DurableOptions::oracle`].
    pub fn with_oracle(mut self, oracle: fasea_bandit::OracleOptions) -> Self {
        self.oracle = oracle;
        self
    }

    /// Sets the extra fingerprint salt. See
    /// [`DurableOptions::fingerprint_salt`].
    pub fn with_fingerprint_salt(mut self, salt: u64) -> Self {
        self.fingerprint_salt = salt;
        self
    }
}

/// A point-in-time health summary of a [`DurableArrangementService`],
/// cheap to build and plain data — the serving layer exposes it over
/// the wire (`STATS`) and in periodic log lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceHealth {
    /// The wrapped policy's stable name.
    pub policy_name: String,
    /// The service fingerprint (instance shape + capacities + conflicts
    /// + mode + policy name).
    pub fingerprint: u64,
    /// Rounds completed (proposal + feedback pairs).
    pub rounds_completed: u64,
    /// `true` if a proposal awaits feedback.
    pub has_pending: bool,
    /// Events that still have remaining capacity.
    pub available_events: usize,
    /// Sum of remaining capacity over all events.
    pub remaining_total: u64,
    /// Total slots arranged over completed rounds.
    pub total_arranged: u64,
    /// Total slots accepted over completed rounds.
    pub total_rewards: u64,
    /// WAL sequence number the next append will receive.
    pub next_seq: u64,
    /// Durability watermark: records with LSN strictly below this have
    /// reached the level the fsync policy promises. Equal to `next_seq`
    /// without group commit (appends were synchronous); may trail it
    /// while a group-commit batch is in flight.
    pub durable_lsn: u64,
}

/// How appends reach the log: synchronously on the caller, or through
/// the group-commit queue.
enum WalBackend {
    /// PR 1 semantics: the caller's thread writes (and per policy
    /// fsyncs) inline; everything appended is immediately at its
    /// policy durability level.
    Direct(Wal),
    /// Appends enqueue; the syncer thread batches them. `Arc` because
    /// the background snapshotter holds a second handle for its ordered
    /// rotate/marker/compact tasks.
    Grouped(Arc<GroupCommitWal>),
}

impl WalBackend {
    /// Appends one record, returning its LSN. Under `Direct` the record
    /// is at its policy durability level on return; under `Grouped` it
    /// is durable only once the watermark passes the LSN.
    fn append(&mut self, record: Record) -> Result<u64, StoreError> {
        match self {
            WalBackend::Direct(w) => w.append(&record),
            WalBackend::Grouped(g) => g.append(record),
        }
    }

    /// The LSN the next append will receive.
    fn next_seq(&self) -> u64 {
        match self {
            WalBackend::Direct(w) => w.next_seq(),
            WalBackend::Grouped(g) => g.next_lsn(),
        }
    }

    /// The durability watermark (count semantics).
    fn durable_lsn(&self) -> u64 {
        match self {
            // Synchronous appends: everything written is already at its
            // policy durability level.
            WalBackend::Direct(w) => w.next_seq(),
            WalBackend::Grouped(g) => g.durable_lsn(),
        }
    }

    /// Blocks until `lsn` is covered by the watermark. No-op under
    /// `Direct`.
    fn wait_durable(&self, lsn: u64) -> Result<(), StoreError> {
        match self {
            WalBackend::Direct(_) => Ok(()),
            WalBackend::Grouped(g) => g.wait_durable(lsn).map(|_| ()),
        }
    }

    /// Forces everything appended so far to stable storage.
    fn sync(&mut self) -> Result<(), StoreError> {
        match self {
            WalBackend::Direct(w) => w.sync(),
            WalBackend::Grouped(g) => g.sync_barrier(),
        }
    }
}

/// Crash-safe arrangement service: [`ArrangementService`] + WAL +
/// snapshots.
pub struct DurableArrangementService {
    service: ArrangementService,
    wal: WalBackend,
    /// Background snapshot thread; `Some` iff group commit is on.
    snapshotter: Option<Snapshotter>,
    dir: PathBuf,
    fingerprint: u64,
    options: DurableOptions,
}

/// FNV-1a fingerprint of everything that must match between the
/// persisted state and the recovering service: instance shape,
/// capacities, conflicts, mode, and the policy's name.
pub fn service_fingerprint(instance: &ProblemInstance, policy_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(b"fasea-service-v1");
    eat(&(instance.num_events() as u64).to_le_bytes());
    eat(&(instance.dim() as u64).to_le_bytes());
    eat(&[match instance.mode() {
        ProblemMode::Fasea => 1u8,
        ProblemMode::BasicContextual => 2u8,
    }]);
    for &c in instance.capacities() {
        eat(&c.to_le_bytes());
    }
    let n = instance.num_events();
    for i in 0..n {
        for j in (i + 1)..n {
            if instance.conflicts().are_conflicting(EventId(i), EventId(j)) {
                eat(&(i as u32).to_le_bytes());
                eat(&(j as u32).to_le_bytes());
            }
        }
    }
    eat(policy_name.as_bytes());
    h
}

/// [`service_fingerprint`] with the configured oracle mixed in. The
/// default greedy oracle contributes nothing — logs written before
/// oracles were configurable stay valid — while any other oracle's
/// name perturbs the fingerprint, since its decisions (and therefore
/// the log contents) differ.
pub fn service_fingerprint_with_oracle(
    instance: &ProblemInstance,
    policy_name: &str,
    oracle: &fasea_bandit::OracleOptions,
) -> u64 {
    let mut h = service_fingerprint(instance, policy_name);
    if oracle.kind != fasea_bandit::OracleKind::Greedy {
        for &b in oracle.name().as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Folds an extra salt into a service fingerprint. Zero contributes
/// nothing (the identity), matching
/// [`DurableOptions::fingerprint_salt`]'s default; any non-zero salt
/// is FNV-folded byte-wise so distinct salts land on distinct
/// fingerprints.
pub fn fold_fingerprint_salt(mut h: u64, salt: u64) -> u64 {
    if salt != 0 {
        for &b in &salt.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

impl DurableArrangementService {
    /// Opens the durable service in `dir`, recovering persisted state
    /// if any exists; a fresh directory starts a fresh service. The
    /// supplied `policy` must be constructed with the same parameters
    /// (dimension, λ, α/ε/δ, seed) as the one that wrote the state —
    /// its learning state is overwritten from the snapshot, and replay
    /// verifies its decisions against the log.
    ///
    /// # Errors
    /// Store-level failures ([`ServiceError::Store`]), snapshot
    /// restoration failures ([`ServiceError::Snapshot`] /
    /// [`ServiceError::PolicyMismatch`]), and replay divergence
    /// ([`ServiceError::RecoveryDiverged`]).
    pub fn open(
        dir: &Path,
        instance: ProblemInstance,
        mut policy: Box<dyn Policy>,
        options: DurableOptions,
    ) -> Result<Self, ServiceError> {
        let fingerprint = fold_fingerprint_salt(
            service_fingerprint_with_oracle(&instance, policy.name(), &options.oracle),
            options.fingerprint_salt,
        );
        let snapshot = latest_snapshot(dir, fingerprint)?;
        let wal_options = WalOptions {
            segment_bytes: options.segment_bytes,
            fsync: options.fsync,
        };
        let (wal, recovered) = Wal::open(dir, fingerprint, wal_options)?;

        let (mut service, replay_from) = match snapshot {
            Some(snap) => {
                if snap.policy_name != policy.name() {
                    return Err(ServiceError::PolicyMismatch {
                        expected: snap.policy_name,
                        found: policy.name().to_string(),
                    });
                }
                policy.restore_state(&snap.policy_state)?;
                let pending = snap.pending.as_ref().map(pending_to_domain).transpose()?;
                let accounting =
                    RegretAccounting::from_parts(snap.rounds, snap.arranged, snap.rewards);
                let service = ArrangementService::from_parts(
                    instance,
                    policy,
                    snap.remaining.clone(),
                    snap.t,
                    pending,
                    accounting,
                )?;
                (service, snap.seq)
            }
            None => (ArrangementService::new(instance, policy), 0),
        };

        // Install the pool and the oracle before replay so recovery
        // runs through the same (bit-identical) decision path the
        // service will serve with.
        service.install_score_pool(fasea_bandit::ScorePool::shared(options.score_threads));
        service.install_oracle(Some(options.oracle.build()));

        replay(&mut service, &recovered, replay_from)?;

        let (wal, snapshotter) = if options.group_commit {
            let group = Arc::new(GroupCommitWal::spawn(wal));
            let snapshotter = Snapshotter::spawn(
                Arc::clone(&group),
                dir.to_path_buf(),
                options.snapshots_kept.max(1),
            );
            (WalBackend::Grouped(group), Some(snapshotter))
        } else {
            (WalBackend::Direct(wal), None)
        };

        Ok(DurableArrangementService {
            service,
            wal,
            snapshotter,
            dir: dir.to_path_buf(),
            fingerprint,
            options,
        })
    }

    /// Proposes an arrangement for the arriving user and logs the full
    /// round input plus the decision. See
    /// [`ArrangementService::propose`] for protocol errors.
    ///
    /// Blocks until the record reaches its policy durability level —
    /// with group commit, that means waiting for the watermark. Use
    /// [`propose_deferred`](DurableArrangementService::propose_deferred)
    /// to pipeline instead.
    ///
    /// # Errors
    /// Protocol violations, or [`ServiceError::Store`] if the append
    /// fails — after which the service must be dropped and reopened
    /// (in-memory state may be ahead of the log).
    pub fn propose(&mut self, user: &UserArrival) -> Result<Arrangement, ServiceError> {
        let (arrangement, lsn) = self.propose_deferred(user)?;
        self.wal.wait_durable(lsn)?;
        Ok(arrangement)
    }

    /// Like [`propose`](DurableArrangementService::propose) but does
    /// *not* wait for durability: returns the arrangement plus the
    /// `Propose` record's LSN. The proposal may be acted on in memory
    /// immediately (the next round can start), but it must not be
    /// acknowledged to the outside world until
    /// [`durable_lsn`](DurableArrangementService::durable_lsn) exceeds
    /// the returned LSN. Without group commit the record is already
    /// durable on return, so gating on the LSN is a no-op.
    ///
    /// Losing a not-yet-durable `Propose` to a crash is safe even if
    /// later rounds were arranged in memory: proposals are
    /// compute-then-log and the policy's RNG position is recovered from
    /// the log, so replay re-draws the identical proposal.
    ///
    /// # Errors
    /// As [`propose`](DurableArrangementService::propose).
    pub fn propose_deferred(
        &mut self,
        user: &UserArrival,
    ) -> Result<(Arrangement, u64), ServiceError> {
        let t = self.service.rounds_completed();
        let arrangement = self.service.propose(user)?;
        let contexts = user.contexts.as_slice().to_vec();
        let record = Record::Propose {
            t,
            user_capacity: user.capacity,
            num_events: user.contexts.num_events() as u32,
            dim: user.contexts.dim() as u32,
            context_hash: context_hash(&contexts),
            contexts,
            arrangement: arrangement.iter().map(|v| v.index() as u32).collect(),
        };
        let lsn = self.wal.append(record)?;
        Ok((arrangement, lsn))
    }

    /// Records the user's answers for the pending proposal: validated
    /// against the pending arrangement, logged, then applied. See
    /// [`ArrangementService::feedback`] for protocol errors.
    ///
    /// Blocks until the record reaches its policy durability level;
    /// [`feedback_deferred`](DurableArrangementService::feedback_deferred)
    /// pipelines instead.
    ///
    /// # Errors
    /// Protocol violations leave no trace in the log;
    /// [`ServiceError::Store`] poisons the service (drop and reopen).
    pub fn feedback(&mut self, accepted: &[bool]) -> Result<u32, ServiceError> {
        let (rewards, lsn) = self.feedback_deferred(accepted)?;
        self.wal.wait_durable(lsn)?;
        Ok(rewards)
    }

    /// Like [`feedback`](DurableArrangementService::feedback) but does
    /// *not* wait for durability: the feedback is applied to the
    /// learner immediately (the round completes in memory and the next
    /// proposal can be drawn), and the caller receives the `Feedback`
    /// record's LSN to gate its acknowledgement on. A crash before the
    /// record is durable recovers to the pre-feedback state — safe
    /// precisely because the answers were never acknowledged.
    ///
    /// # Errors
    /// As [`feedback`](DurableArrangementService::feedback).
    pub fn feedback_deferred(&mut self, accepted: &[bool]) -> Result<(u32, u64), ServiceError> {
        // Validate *before* logging so an invalid call cannot corrupt
        // the record stream.
        match self.service.pending() {
            None => return Err(ServiceError::NoPendingProposal),
            Some((a, _)) if a.len() != accepted.len() => {
                return Err(ServiceError::FeedbackLengthMismatch {
                    expected: a.len(),
                    got: accepted.len(),
                })
            }
            Some(_) => {}
        }
        let t = self.service.rounds_completed();
        let lsn = self.wal.append(Record::Feedback {
            t,
            accepts: accepted.to_vec(),
        })?;
        let rewards = self.service.feedback(accepted)?;
        Ok((rewards, lsn))
    }

    /// Applies one event-lifecycle action (validate-log-apply, like
    /// feedback): sets `event`'s remaining capacity to `capacity`
    /// (clamped to the instance's planned capacity), durably logging a
    /// `Lifecycle` record first so crash recovery replays the churn
    /// byte-identically. Blocks until the record reaches its policy
    /// durability level. Returns the capacity actually installed.
    ///
    /// Idempotent per round: set-capacity semantics mean a driver that
    /// re-issues the round's churn actions after recovery cannot
    /// corrupt state.
    ///
    /// # Errors
    /// [`ServiceError::FeedbackPending`] while a proposal is in flight,
    /// [`ServiceError::EventOutOfRange`], or [`ServiceError::Store`]
    /// if the append fails (drop and reopen).
    pub fn lifecycle(&mut self, event: u32, capacity: u32) -> Result<u32, ServiceError> {
        // Validate *before* logging so an invalid call cannot corrupt
        // the record stream.
        if self.service.has_pending() {
            return Err(ServiceError::FeedbackPending);
        }
        let num_events = self.service.instance().num_events();
        if event as usize >= num_events {
            return Err(ServiceError::EventOutOfRange { event, num_events });
        }
        let t = self.service.rounds_completed();
        let lsn = self.wal.append(Record::Lifecycle { t, event, capacity })?;
        let installed = self.service.apply_lifecycle(event, capacity)?;
        self.wal.wait_durable(lsn)?;
        Ok(installed)
    }

    /// Clones the full service state into a [`ServiceSnapshot`] image
    /// covering every record below `seq`. Cheap: `O(d²)` policy state
    /// plus the capacity vector.
    fn build_snapshot(&self, seq: u64) -> ServiceSnapshot {
        let accounting = self.service.accounting();
        ServiceSnapshot {
            fingerprint: self.fingerprint,
            seq,
            t: self.service.rounds_completed(),
            rounds: accounting.rounds(),
            arranged: accounting.total_arranged(),
            rewards: accounting.total_rewards(),
            remaining: self.service.remaining().to_vec(),
            pending: self.service.pending().map(|(a, ctx)| PendingProposal {
                arrangement: a.iter().map(|v| v.index() as u32).collect(),
                num_events: ctx.num_events() as u32,
                dim: ctx.dim() as u32,
                contexts: ctx.as_slice().to_vec(),
            }),
            policy_name: self.service.policy().name().to_string(),
            policy_state: self.service.policy().save_state(),
        }
    }

    /// Writes a full service snapshot atomically, then rotates the WAL,
    /// logs a `SnapshotMarker`, compacts fully-covered segments and
    /// prunes old snapshots. Returns the snapshot path. Synchronous on
    /// the calling thread regardless of backend; see
    /// [`snapshot_async`](DurableArrangementService::snapshot_async)
    /// for the non-blocking variant.
    ///
    /// # Errors
    /// [`ServiceError::Store`] on any I/O failure; an existing snapshot
    /// is never damaged (temp-file + rename).
    pub fn snapshot(&mut self) -> Result<PathBuf, ServiceError> {
        let seq = self.wal.next_seq();
        let snap = self.build_snapshot(seq);
        let keep = self.options.snapshots_kept.max(1);
        match &mut self.wal {
            WalBackend::Direct(wal) => {
                // Everything the snapshot covers must be durable first.
                wal.sync()?;
                let path = snap.write_atomic(&self.dir)?;
                wal.rotate()?;
                wal.append(&Record::SnapshotMarker { snapshot_seq: seq })?;
                wal.compact_below(seq)?;
                prune_snapshots(&self.dir, keep)?;
                Ok(path)
            }
            WalBackend::Grouped(group) => {
                // Same cycle the background snapshotter runs, inline.
                run_snapshot(group, &self.dir, keep, snap).map_err(ServiceError::from)
            }
        }
    }

    /// Hands a snapshot image to the background snapshotter and returns
    /// immediately; the write/rename/rotate/compact cycle runs off the
    /// round loop, and completion is visible via
    /// [`snapshot_published_seq`](DurableArrangementService::snapshot_published_seq).
    /// Without group commit there is no snapshotter thread, so this
    /// falls back to the synchronous
    /// [`snapshot`](DurableArrangementService::snapshot).
    ///
    /// # Errors
    /// [`ServiceError::Store`] — for the async path, only a *previous*
    /// background snapshot failure is reported here; the current
    /// request's failure surfaces on the next call or at close.
    pub fn snapshot_async(&mut self) -> Result<(), ServiceError> {
        match &self.snapshotter {
            Some(snapshotter) => {
                let seq = self.wal.next_seq();
                let image = self.build_snapshot(seq);
                snapshotter.request(image).map_err(ServiceError::from)
            }
            None => self.snapshot().map(|_| ()),
        }
    }

    /// Seq covered by the newest *completed* background snapshot (0
    /// before the first one; always 0 without group commit — the
    /// synchronous path returns its result directly).
    pub fn snapshot_published_seq(&self) -> u64 {
        self.snapshotter.as_ref().map_or(0, |s| s.published_seq())
    }

    /// Forces all appended records to stable storage regardless of the
    /// fsync policy. With group commit this is a barrier through the
    /// commit queue: on return everything previously appended is
    /// fsynced.
    ///
    /// # Errors
    /// [`ServiceError::Store`] on I/O failure.
    pub fn sync(&mut self) -> Result<(), ServiceError> {
        self.wal.sync().map_err(ServiceError::from)
    }

    /// The durability watermark: records with LSN strictly below this
    /// have reached the level the fsync policy promises. Gate external
    /// acknowledgements of `_deferred` results on it. Lock-free.
    pub fn durable_lsn(&self) -> u64 {
        self.wal.durable_lsn()
    }

    /// Blocks until `lsn` is covered by the watermark. No-op without
    /// group commit.
    ///
    /// # Errors
    /// The pipeline's poisoning error — the record may or may not be on
    /// disk, so the caller must not acknowledge it.
    pub fn wait_durable(&self, lsn: u64) -> Result<(), ServiceError> {
        self.wal.wait_durable(lsn).map_err(ServiceError::from)
    }

    /// `true` if appends run through the group-commit pipeline.
    pub fn group_commit_enabled(&self) -> bool {
        matches!(self.wal, WalBackend::Grouped(_))
    }

    /// Installs (or clears) the group-commit batch observer, invoked by
    /// the syncer after each published batch with `(batch_size,
    /// commit_latency)`. No-op without group commit.
    pub fn set_commit_observer(&self, observer: Option<CommitObserver>) {
        if let WalBackend::Grouped(g) = &self.wal {
            g.set_commit_observer(observer);
        }
    }

    /// Installs (or clears) the watermark-advance notifier, invoked by
    /// the syncer with the new watermark after each published batch.
    /// No-op without group commit.
    pub fn set_commit_notifier(&self, notifier: Option<CommitNotifier>) {
        if let WalBackend::Grouped(g) = &self.wal {
            g.set_commit_notifier(notifier);
        }
    }

    /// The wrapped in-memory service (all read accessors).
    pub fn service(&self) -> &ArrangementService {
        &self.service
    }

    /// Installs (or removes) an external [`fasea_bandit::Arranger`] in
    /// the wrapped policy's workspace (see
    /// [`ArrangementService::install_arranger`]). The sharded
    /// coordinator installs its router here *after* `open` — recovery
    /// replay runs the local oracle, which produces identical
    /// arrangements by the arranger contract.
    pub fn install_arranger(
        &mut self,
        arranger: Option<std::sync::Arc<dyn fasea_bandit::Arranger>>,
    ) {
        self.service.install_arranger(arranger);
    }

    /// Speculatively computes round `t`'s scores and stashes them in
    /// the policy workspace, tagged with the current model epoch — see
    /// [`ArrangementService::prefetch_scores`]. Writes **nothing** to
    /// the WAL: the stash is pure scratch, and a crash between prefetch
    /// and propose recovers to exactly the unprefetched state.
    ///
    /// # Errors
    /// [`ServiceError::ContextShapeMismatch`] on malformed input.
    pub fn prefetch_scores(&mut self, t: u64, user: &UserArrival) -> Result<(), ServiceError> {
        self.service.prefetch_scores(t, user)
    }

    /// The policy workspace's model-version epoch (see
    /// [`ArrangementService::model_epoch`]).
    pub fn model_epoch(&self) -> u64 {
        self.service.model_epoch()
    }

    /// See [`ArrangementService::clear_prefetch`].
    pub fn clear_prefetch(&mut self) {
        self.service.clear_prefetch();
    }

    /// `true` if a proposal awaits feedback — including one recovered
    /// from a log that ended mid-round. The caller decides how to
    /// resolve it; the service never silently re-proposes.
    pub fn has_pending(&self) -> bool {
        self.service.has_pending()
    }

    /// The pending arrangement, if any (e.g. to re-deliver it to the
    /// user after a crash).
    pub fn pending_arrangement(&self) -> Option<&Arrangement> {
        self.service.pending().map(|(a, _)| a)
    }

    /// Rounds completed (proposal + feedback pairs).
    pub fn rounds_completed(&self) -> u64 {
        self.service.rounds_completed()
    }

    /// This service's instance fingerprint (diagnostics).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The WAL sequence number the next append will receive
    /// (diagnostics/tests).
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// A point-in-time health summary (round counter, pending state,
    /// capacity headroom, accounting totals). Plain data, safe to ship
    /// across threads or the wire.
    pub fn health(&self) -> ServiceHealth {
        let accounting = self.service.accounting();
        ServiceHealth {
            policy_name: self.service.policy_name().to_string(),
            fingerprint: self.fingerprint,
            rounds_completed: self.service.rounds_completed(),
            has_pending: self.service.has_pending(),
            available_events: self.service.available_events(),
            remaining_total: self.service.remaining().iter().map(|&c| c as u64).sum(),
            total_arranged: accounting.total_arranged(),
            total_rewards: accounting.total_rewards(),
            next_seq: self.wal.next_seq(),
            durable_lsn: self.wal.durable_lsn(),
        }
    }

    /// Graceful shutdown: joins the snapshotter and commit syncer (if
    /// group commit is on — every queued record is drained first),
    /// forces every appended record to stable storage, writes a final
    /// snapshot (so the next open skips replay), and consumes the
    /// service. Returns the snapshot path.
    ///
    /// A snapshot is only written once at least one record exists —
    /// closing a service that never completed a round leaves the
    /// directory untouched and returns `None`.
    ///
    /// # Errors
    /// [`ServiceError::Store`] on any I/O failure; the WAL is synced
    /// before snapshotting, so even a failed snapshot loses nothing.
    pub fn close(self) -> Result<Option<PathBuf>, ServiceError> {
        let DurableArrangementService {
            service,
            wal,
            snapshotter,
            dir,
            fingerprint,
            options,
        } = self;
        // Join the snapshotter first: it drops its `GroupCommitWal`
        // handle, making the syncer uniquely owned below.
        if let Some(s) = snapshotter {
            s.close()?;
        }
        let wal = match wal {
            WalBackend::Direct(w) => w,
            WalBackend::Grouped(g) => Arc::try_unwrap(g)
                .expect("group-commit handle uniquely owned after snapshotter join")
                .close()?,
        };
        // Collapse to the direct backend for the final synchronous
        // snapshot — the syncer is gone, so the Wal is single-threaded
        // again.
        let mut svc = DurableArrangementService {
            service,
            wal: WalBackend::Direct(wal),
            snapshotter: None,
            dir,
            fingerprint,
            options,
        };
        svc.wal.sync()?;
        if svc.wal.next_seq() == 0 {
            return Ok(None);
        }
        svc.snapshot().map(Some)
    }
}

fn pending_to_domain(p: &PendingProposal) -> Result<(Arrangement, ContextMatrix), ServiceError> {
    let n = p.num_events as usize;
    let d = p.dim as usize;
    if p.contexts.len() != n * d || p.arrangement.iter().any(|&v| v as usize >= n) {
        return Err(ServiceError::ContextShapeMismatch);
    }
    let ctx = ContextMatrix::from_rows(n, d, p.contexts.clone());
    let arrangement =
        Arrangement::new(p.arrangement.iter().map(|&v| EventId(v as usize)).collect());
    Ok((arrangement, ctx))
}

/// Replays the WAL suffix (`seq >= replay_from`) through the live
/// service, re-executing proposals and verifying them against the log.
fn replay(
    service: &mut ArrangementService,
    recovered: &Recovered,
    replay_from: u64,
) -> Result<(), ServiceError> {
    for (seq, record) in &recovered.records {
        if *seq < replay_from {
            continue;
        }
        let seq = *seq;
        match record {
            Record::SnapshotMarker { .. } => {}
            Record::Propose {
                t,
                user_capacity,
                num_events,
                dim,
                contexts,
                arrangement,
                context_hash: logged_hash,
            } => {
                if *t != service.rounds_completed() {
                    return Err(ServiceError::RecoveryDiverged {
                        seq,
                        detail: format!(
                            "Propose for round {t} but service is at round {}",
                            service.rounds_completed()
                        ),
                    });
                }
                if context_hash(contexts) != *logged_hash {
                    return Err(ServiceError::RecoveryDiverged {
                        seq,
                        detail: "context hash mismatch inside a CRC-valid record".to_string(),
                    });
                }
                let n = *num_events as usize;
                let d = *dim as usize;
                if contexts.len() != n * d {
                    return Err(ServiceError::RecoveryDiverged {
                        seq,
                        detail: "context block shape is inconsistent".to_string(),
                    });
                }
                let user = UserArrival::new(
                    *user_capacity,
                    ContextMatrix::from_rows(n, d, contexts.clone()),
                );
                let replayed = service.propose(&user)?;
                let logged: Vec<EventId> =
                    arrangement.iter().map(|&v| EventId(v as usize)).collect();
                if replayed.events() != logged.as_slice() {
                    return Err(ServiceError::RecoveryDiverged {
                        seq,
                        detail: format!(
                            "replayed arrangement {:?} != logged {:?}",
                            replayed.events(),
                            logged
                        ),
                    });
                }
            }
            Record::Feedback { t, accepts } => {
                if *t != service.rounds_completed() {
                    return Err(ServiceError::RecoveryDiverged {
                        seq,
                        detail: format!(
                            "Feedback for round {t} but service is at round {}",
                            service.rounds_completed()
                        ),
                    });
                }
                service.feedback(accepts).map_err(|e| match e {
                    // A protocol error during replay is log damage, not
                    // a caller mistake.
                    ServiceError::NoPendingProposal
                    | ServiceError::FeedbackLengthMismatch { .. } => {
                        ServiceError::RecoveryDiverged {
                            seq,
                            detail: format!("feedback replay rejected: {e}"),
                        }
                    }
                    other => other,
                })?;
            }
            Record::Lifecycle { t, event, capacity } => {
                if *t != service.rounds_completed() {
                    return Err(ServiceError::RecoveryDiverged {
                        seq,
                        detail: format!(
                            "Lifecycle for round {t} but service is at round {}",
                            service.rounds_completed()
                        ),
                    });
                }
                service.apply_lifecycle(*event, *capacity).map_err(|e| {
                    ServiceError::RecoveryDiverged {
                        seq,
                        detail: format!("lifecycle replay rejected: {e}"),
                    }
                })?;
            }
            // Transaction records belong to *shard* logs (fasea-shard);
            // one in a coordinator/single-service log is damage.
            Record::TxnPrepare { .. } | Record::TxnCommit { .. } | Record::TxnAbort { .. } => {
                return Err(ServiceError::RecoveryDiverged {
                    seq,
                    detail: format!("{} record in a service round log", record.kind()),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_bandit::{LinUcb, ThompsonSampling};
    use fasea_core::{ConflictGraph, ProblemMode};
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fasea-durable-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn instance() -> ProblemInstance {
        ProblemInstance::new(
            vec![30, 30, 30, 30],
            ConflictGraph::from_pairs(4, &[(0, 3)]),
            2,
            ProblemMode::Fasea,
        )
    }

    fn arrival(round: u64) -> UserArrival {
        let mut ctx = ContextMatrix::from_fn(4, 2, |v, j| {
            (((round as usize * 5 + v * 3 + j) % 7) as f64) / 7.0 - 0.2
        });
        ctx.normalize_rows();
        UserArrival::new(2, ctx)
    }

    fn accepts_for(round: u64, a: &Arrangement) -> Vec<bool> {
        a.iter()
            .map(|v| (round as usize + v.index()).is_multiple_of(3))
            .collect()
    }

    fn ts_policy() -> Box<dyn Policy> {
        Box::new(ThompsonSampling::new(2, 1.0, 0.1, 17))
    }

    #[test]
    fn fresh_open_then_reopen_resumes_identically() {
        let dir = tmp("resume");
        let opts = DurableOptions {
            fsync: FsyncPolicy::Never,
            ..Default::default()
        };
        let reference_state;
        {
            let mut svc =
                DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
            for round in 0..25 {
                let a = svc.propose(&arrival(round)).unwrap();
                svc.feedback(&accepts_for(round, &a)).unwrap();
            }
            reference_state = svc.service().policy().save_state();
        }
        // Reopen (clean shutdown) and verify everything matches.
        let svc = DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
        assert_eq!(svc.rounds_completed(), 25);
        assert_eq!(svc.service().policy().save_state(), reference_state);
        assert!(!svc.has_pending());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_recovery_matches_serial_state() {
        // A log written serially must replay to the identical policy
        // state through a 4-thread score pool (and keep serving the
        // same decisions afterwards).
        let dir = tmp("parallel-recover");
        let serial_opts = DurableOptions {
            fsync: FsyncPolicy::Never,
            ..Default::default()
        };
        let reference_state;
        {
            let mut svc =
                DurableArrangementService::open(&dir, instance(), ts_policy(), serial_opts)
                    .unwrap();
            for round in 0..20 {
                let a = svc.propose(&arrival(round)).unwrap();
                svc.feedback(&accepts_for(round, &a)).unwrap();
            }
            reference_state = svc.service().policy().save_state();
        }
        let parallel_opts = serial_opts.with_score_threads(4);
        let mut svc =
            DurableArrangementService::open(&dir, instance(), ts_policy(), parallel_opts).unwrap();
        assert_eq!(svc.rounds_completed(), 20);
        assert_eq!(svc.service().policy().save_state(), reference_state);
        // The pooled service keeps serving (bit-identical scoring).
        let a = svc.propose(&arrival(20)).unwrap();
        svc.feedback(&accepts_for(20, &a)).unwrap();
        assert_eq!(svc.rounds_completed(), 21);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_mid_round_surfaces_pending_proposal() {
        let dir = tmp("pending");
        let opts = DurableOptions {
            fsync: FsyncPolicy::Always,
            ..Default::default()
        };
        let proposed;
        {
            let mut svc =
                DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
            for round in 0..5 {
                let a = svc.propose(&arrival(round)).unwrap();
                svc.feedback(&accepts_for(round, &a)).unwrap();
            }
            proposed = svc.propose(&arrival(5)).unwrap();
            // Drop without feedback: crash mid-round.
        }
        let mut svc = DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
        assert!(
            svc.has_pending(),
            "recovered service must surface the pending round"
        );
        assert_eq!(
            svc.pending_arrangement().unwrap().events(),
            proposed.events()
        );
        assert_eq!(svc.rounds_completed(), 5);
        // Double-propose is still rejected; feedback completes it.
        assert!(matches!(
            svc.propose(&arrival(6)),
            Err(ServiceError::FeedbackPending)
        ));
        svc.feedback(&accepts_for(5, &proposed)).unwrap();
        assert_eq!(svc.rounds_completed(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_and_recovery_uses_it() {
        let dir = tmp("snapshot");
        let opts = DurableOptions::new()
            .with_segment_bytes(512)
            .with_fsync(FsyncPolicy::Never)
            .with_snapshots_kept(1);
        let reference_state;
        {
            let mut svc =
                DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
            for round in 0..30 {
                let a = svc.propose(&arrival(round)).unwrap();
                svc.feedback(&accepts_for(round, &a)).unwrap();
                if round % 10 == 9 {
                    svc.snapshot().unwrap();
                }
            }
            reference_state = svc.service().policy().save_state();
        }
        // Compaction actually removed early segments.
        let segments: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
            .collect();
        assert!(
            segments.len() < 4,
            "expected compaction to leave few segments, found {}",
            segments.len()
        );
        let svc = DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
        assert_eq!(svc.rounds_completed(), 30);
        assert_eq!(svc.service().policy().save_state(), reference_state);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_instance_rejected() {
        let dir = tmp("foreign");
        let opts = DurableOptions {
            fsync: FsyncPolicy::Never,
            ..Default::default()
        };
        {
            let mut svc =
                DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
            let a = svc.propose(&arrival(0)).unwrap();
            svc.feedback(&accepts_for(0, &a)).unwrap();
            svc.sync().unwrap();
        }
        // Different capacities => different fingerprint => rejected.
        let other = ProblemInstance::new(
            vec![5, 5, 5, 5],
            ConflictGraph::from_pairs(4, &[(0, 3)]),
            2,
            ProblemMode::Fasea,
        );
        assert!(matches!(
            DurableArrangementService::open(&dir, other, ts_policy(), opts),
            Err(ServiceError::Store(
                fasea_store::StoreError::ForeignInstance { .. }
            ))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn divergent_policy_seed_detected_on_replay() {
        let dir = tmp("diverge");
        let opts = DurableOptions {
            fsync: FsyncPolicy::Never,
            ..Default::default()
        };
        {
            let mut svc =
                DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
            for round in 0..10 {
                let a = svc.propose(&arrival(round)).unwrap();
                svc.feedback(&accepts_for(round, &a)).unwrap();
            }
            svc.sync().unwrap();
        }
        // Same policy name (same fingerprint) but different seed: the
        // replayed decisions will not match the logged ones.
        let wrong_seed: Box<dyn Policy> = Box::new(ThompsonSampling::new(2, 1.0, 0.1, 9999));
        match DurableArrangementService::open(&dir, instance(), wrong_seed, opts) {
            Err(ServiceError::RecoveryDiverged { .. }) => {}
            other => panic!("expected RecoveryDiverged, got {:?}", other.map(|_| ())),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn health_reflects_state_and_close_snapshots() {
        let dir = tmp("health");
        let opts = DurableOptions {
            fsync: FsyncPolicy::Never,
            ..Default::default()
        };
        let mut svc = DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
        let fresh = svc.health();
        assert_eq!(fresh.rounds_completed, 0);
        assert!(!fresh.has_pending);
        assert_eq!(fresh.policy_name, "TS");
        assert_eq!(fresh.remaining_total, 120);
        for round in 0..8 {
            let a = svc.propose(&arrival(round)).unwrap();
            svc.feedback(&accepts_for(round, &a)).unwrap();
        }
        let a = svc.propose(&arrival(8)).unwrap();
        let h = svc.health();
        assert_eq!(h.rounds_completed, 8);
        assert!(h.has_pending);
        assert_eq!(h.fingerprint, svc.fingerprint());
        assert!(h.total_arranged >= h.total_rewards);
        svc.feedback(&accepts_for(8, &a)).unwrap();
        let reference_state = svc.service().policy().save_state();
        // Graceful close writes a snapshot; reopen resumes from it.
        let snap = svc.close().unwrap();
        assert!(snap.is_some(), "close after rounds must snapshot");
        let svc = DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
        assert_eq!(svc.rounds_completed(), 9);
        assert_eq!(svc.service().policy().save_state(), reference_state);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn close_on_untouched_service_writes_nothing() {
        let dir = tmp("close-empty");
        let opts = DurableOptions {
            fsync: FsyncPolicy::Never,
            ..Default::default()
        };
        let svc = DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
        assert_eq!(svc.close().unwrap(), None);
        let snapshots: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("snap"))
            .collect();
        assert!(snapshots.is_empty(), "no snapshot for an untouched service");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_run_recovers_identically_to_direct_run() {
        // The same workload through the group-commit pipeline must
        // leave a log that recovers to byte-identical policy state —
        // and the blocking API must keep acked-implies-durable (the
        // watermark covers every completed call).
        let direct_dir = tmp("gc-direct");
        let grouped_dir = tmp("gc-grouped");
        let direct_opts = DurableOptions {
            fsync: FsyncPolicy::Always,
            ..Default::default()
        };
        let grouped_opts = direct_opts.with_group_commit(true);

        let reference_state;
        {
            let mut svc =
                DurableArrangementService::open(&direct_dir, instance(), ts_policy(), direct_opts)
                    .unwrap();
            for round in 0..20 {
                let a = svc.propose(&arrival(round)).unwrap();
                svc.feedback(&accepts_for(round, &a)).unwrap();
            }
            reference_state = svc.service().policy().save_state();
        }
        {
            let mut svc = DurableArrangementService::open(
                &grouped_dir,
                instance(),
                ts_policy(),
                grouped_opts,
            )
            .unwrap();
            assert!(svc.group_commit_enabled());
            for round in 0..20 {
                let a = svc.propose(&arrival(round)).unwrap();
                svc.feedback(&accepts_for(round, &a)).unwrap();
                // Blocking API: the watermark covers everything acked.
                assert_eq!(svc.durable_lsn(), svc.next_seq());
            }
            assert_eq!(svc.service().policy().save_state(), reference_state);
            // Simulated crash: drop without close; the syncer drains.
        }
        let svc =
            DurableArrangementService::open(&grouped_dir, instance(), ts_policy(), grouped_opts)
                .unwrap();
        assert_eq!(svc.rounds_completed(), 20);
        assert_eq!(svc.service().policy().save_state(), reference_state);
        fs::remove_dir_all(&direct_dir).unwrap();
        fs::remove_dir_all(&grouped_dir).unwrap();
    }

    #[test]
    fn deferred_rounds_pipeline_and_watermark_gates_acks() {
        let dir = tmp("gc-deferred");
        let opts = DurableOptions {
            fsync: FsyncPolicy::Always,
            ..Default::default()
        }
        .with_group_commit(true);
        let reference_state;
        {
            let mut svc =
                DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
            let mut last_lsn = 0;
            for round in 0..30 {
                // No waiting between rounds: the round loop runs ahead
                // of the disk, replies would be gated on the LSNs.
                let (a, propose_lsn) = svc.propose_deferred(&arrival(round)).unwrap();
                let (_, feedback_lsn) = svc.feedback_deferred(&accepts_for(round, &a)).unwrap();
                assert_eq!(feedback_lsn, propose_lsn + 1);
                last_lsn = feedback_lsn;
            }
            svc.wait_durable(last_lsn).unwrap();
            assert!(svc.durable_lsn() > last_lsn);
            reference_state = svc.service().policy().save_state();
            let snap = svc.close().unwrap();
            assert!(snap.is_some());
        }
        let svc = DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
        assert_eq!(svc.rounds_completed(), 30);
        assert_eq!(svc.service().policy().save_state(), reference_state);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn async_snapshot_compacts_in_background_and_recovers() {
        let dir = tmp("gc-async-snap");
        let opts = DurableOptions::new()
            .with_segment_bytes(512)
            .with_fsync(FsyncPolicy::Never)
            .with_snapshots_kept(1)
            .with_group_commit(true);
        let reference_state;
        {
            let mut svc =
                DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
            for round in 0..30 {
                let a = svc.propose(&arrival(round)).unwrap();
                svc.feedback(&accepts_for(round, &a)).unwrap();
                if round % 10 == 9 {
                    svc.snapshot_async().unwrap();
                }
            }
            // Wait for the last background snapshot to publish, then
            // verify it actually compacted.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while svc.snapshot_published_seq() < 40 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "background snapshot never published (at {})",
                    svc.snapshot_published_seq()
                );
                std::thread::yield_now();
            }
            reference_state = svc.service().policy().save_state();
            svc.close().unwrap();
        }
        let segments: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
            .collect();
        assert!(
            segments.len() < 4,
            "expected background compaction to leave few segments, found {}",
            segments.len()
        );
        let svc = DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
        assert_eq!(svc.rounds_completed(), 30);
        assert_eq!(svc.service().policy().save_state(), reference_state);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn close_joins_syncer_and_snapshotter() {
        let dir = tmp("gc-join");
        let opts = DurableOptions::new()
            .with_fsync(FsyncPolicy::EveryN(8))
            .with_group_commit(true);
        let mut svc = DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
        assert!(fasea_store::live_commit_syncers() >= 1);
        assert!(crate::live_snapshotters() >= 1);
        for round in 0..10 {
            let (a, _) = svc.propose_deferred(&arrival(round)).unwrap();
            svc.feedback_deferred(&accepts_for(round, &a)).unwrap();
        }
        svc.snapshot_async().unwrap();
        // Close must drain the queue, finish the snapshot, and join
        // both threads — nothing may be lost.
        svc.close().unwrap();
        let svc = DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
        assert_eq!(svc.rounds_completed(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lifecycle_records_replay_byte_identically() {
        // Interleave churn with rounds, crash (drop without close),
        // reopen: the recovered state must equal the uninterrupted run.
        let dir = tmp("lifecycle");
        let opts = DurableOptions {
            fsync: FsyncPolicy::Never,
            ..Default::default()
        };
        let churn = [(3u64, 2u32, 0u32), (3, 0, 1), (7, 2, 30), (11, 1, 0)];
        let run = |dir: &Path, rounds: std::ops::Range<u64>| {
            let mut svc =
                DurableArrangementService::open(dir, instance(), ts_policy(), opts).unwrap();
            for round in rounds {
                for &(at, event, cap) in &churn {
                    if at == round {
                        svc.lifecycle(event, cap).unwrap();
                    }
                }
                let a = svc.propose(&arrival(round)).unwrap();
                svc.feedback(&accepts_for(round, &a)).unwrap();
            }
            svc
        };
        let reference_dir = tmp("lifecycle-ref");
        let reference = run(&reference_dir, 0..20);
        let ref_state = reference.service().policy().save_state();
        let ref_remaining = reference.service().remaining().to_vec();
        drop(reference);

        {
            let svc = run(&dir, 0..13);
            drop(svc); // crash: no close, no snapshot
        }
        let mut svc = DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
        assert_eq!(svc.rounds_completed(), 13);
        for round in 13..20 {
            let a = svc.propose(&arrival(round)).unwrap();
            svc.feedback(&accepts_for(round, &a)).unwrap();
        }
        assert_eq!(svc.service().remaining(), &ref_remaining[..]);
        assert_eq!(svc.service().policy().save_state(), ref_state);
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&reference_dir).unwrap();
    }

    #[test]
    fn lifecycle_validates_before_logging() {
        let dir = tmp("lifecycle-validate");
        let opts = DurableOptions {
            fsync: FsyncPolicy::Never,
            ..Default::default()
        };
        let mut svc = DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
        assert!(matches!(
            svc.lifecycle(99, 1),
            Err(ServiceError::EventOutOfRange { .. })
        ));
        let a = svc.propose(&arrival(0)).unwrap();
        assert!(matches!(
            svc.lifecycle(0, 1),
            Err(ServiceError::FeedbackPending)
        ));
        svc.feedback(&accepts_for(0, &a)).unwrap();
        // Re-open clamps to planned capacity (30 in `instance()`).
        assert_eq!(svc.lifecycle(0, 99).unwrap(), 30);
        // Neither rejected call left a record behind: reopen replays
        // cleanly.
        drop(svc);
        let svc = DurableArrangementService::open(&dir, instance(), ts_policy(), opts).unwrap();
        assert_eq!(svc.rounds_completed(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_greedy_oracle_changes_fingerprint_and_recovers() {
        let dir = tmp("oracle-tabu");
        let greedy_opts = DurableOptions {
            fsync: FsyncPolicy::Never,
            ..Default::default()
        };
        let tabu_opts = greedy_opts.with_oracle(fasea_bandit::OracleOptions::tabu());
        {
            let mut svc =
                DurableArrangementService::open(&dir, instance(), ts_policy(), tabu_opts).unwrap();
            for round in 0..15 {
                let a = svc.propose(&arrival(round)).unwrap();
                svc.feedback(&accepts_for(round, &a)).unwrap();
            }
            svc.sync().unwrap();
        }
        // A greedy-configured open must refuse the tabu log (different
        // fingerprint), not silently diverge.
        assert!(matches!(
            DurableArrangementService::open(&dir, instance(), ts_policy(), greedy_opts),
            Err(ServiceError::Store(
                fasea_store::StoreError::ForeignInstance { .. }
            ))
        ));
        // The matching oracle replays the log through TabuOracle.
        let svc =
            DurableArrangementService::open(&dir, instance(), ts_policy(), tabu_opts).unwrap();
        assert_eq!(svc.rounds_completed(), 15);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deterministic_policy_recovers_without_snapshot_support_too() {
        // LinUcb is RNG-free: pure replay (no snapshot taken) must
        // land in the same state as the uninterrupted run.
        let dir = tmp("ucb");
        let opts = DurableOptions {
            fsync: FsyncPolicy::EveryN(3),
            ..Default::default()
        };
        let ucb = || -> Box<dyn Policy> { Box::new(LinUcb::new(2, 1.0, 2.0)) };
        let reference_state;
        {
            let mut svc = DurableArrangementService::open(&dir, instance(), ucb(), opts).unwrap();
            for round in 0..20 {
                let a = svc.propose(&arrival(round)).unwrap();
                svc.feedback(&accepts_for(round, &a)).unwrap();
            }
            reference_state = svc.service().policy().save_state();
        }
        let svc = DurableArrangementService::open(&dir, instance(), ucb(), opts).unwrap();
        assert_eq!(svc.service().policy().save_state(), reference_state);
        fs::remove_dir_all(&dir).unwrap();
    }
}

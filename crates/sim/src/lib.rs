//! # fasea-sim
//!
//! Simulation engine, metrics and reporting for the FASEA experiments.
//!
//! The engine drives the Definition 3 loop for a *set* of policies
//! simultaneously over one shared arrival stream:
//!
//! * one round's contexts are generated once and shown to every policy
//!   (the paper compares five algorithms plus OPT on the same inputs);
//! * each policy owns a private clone of the [`fasea_core::Environment`],
//!   so capacity depletion is per-strategy but the acceptance coins are
//!   **common random numbers** — if two policies arrange the same event
//!   at the same time step they see the same accept/reject;
//! * [`fasea_bandit::Opt`] runs alongside as the regret reference
//!   (synthetic data), or the analytic "Full Knowledge" bound supplies
//!   the reference reward (real data);
//! * metrics are snapshotted at the paper's checkpoint grid
//!   ([`paper_checkpoints`]): cumulative accept ratio, total rewards,
//!   total regret, regret ratio, and optionally the Kendall-τ rank
//!   correlation between the policy's last selection scores and the
//!   ground-truth expected rewards (Figure 2);
//! * per-round wall time and a structural memory estimate reproduce the
//!   efficiency columns of Tables 5 and 6.
//!
//! [`sweep::run_parallel`] fans independent experiment cells out over
//! crossbeam scoped threads.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod durable;
pub mod memory;
pub mod multi_user;
pub mod pipeline;
pub mod plot;
pub mod real_runner;
pub mod report;
pub mod rotating;
pub mod runner;
pub mod service;
pub mod snapshotter;
pub mod sweep;

pub use durable::{
    fold_fingerprint_salt, service_fingerprint, service_fingerprint_with_oracle,
    DurableArrangementService, DurableOptions, ServiceHealth,
};
pub use memory::MemoryModel;
pub use multi_user::{
    run_multi_user, run_multi_user_stored, LearnerArchitecture, MultiUserRunResult,
};
pub use pipeline::{PipelineStats, PipelinedBackend, RoundPipeline};
pub use real_runner::{run_real, CuMode, RealRunConfig, RealRunResult};
pub use report::{ascii_chart, write_csv, AsciiTable, CsvTable, CsvWriter};
pub use rotating::{run_rotating, RotatingRunResult};
pub use runner::{
    paper_checkpoints, run_simulation, Checkpoint, PolicyRunResult, RunConfig, SimulationResult,
};
pub use service::{ArrangementService, ServiceError};
pub use snapshotter::{live_snapshotters, Snapshotter};

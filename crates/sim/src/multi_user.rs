//! Remark 1 runner: recurring users with individual hidden models.
//!
//! Compares two learner architectures over the same multi-user arrival
//! stream and shared event capacities:
//!
//! * **shared** — one policy instance serves everyone (the base FASEA
//!   assumption: "a set of users with similar interests");
//! * **per-user** — one policy instance per user id, all drawing on the
//!   same capacity pool (Remark 1's "an individual θ is learned for
//!   each user but the information of events … is shared");
//! * **stored** ([`run_multi_user_stored`]) — one store-backed policy
//!   (`fasea-models`: `PersonalizedUcb` / `PersonalizedTs`) that shards
//!   per-user state internally behind a memory budget.
//!
//! The interesting trade-off this exposes: per-user learners see `U×`
//! fewer observations each, so at low heterogeneity the shared learner
//! wins on sample efficiency, while at high heterogeneity the shared
//! learner converges to a useless average-θ and per-user wins.
//!
//! The workload types themselves ([`MultiUserConfig`],
//! [`MultiUserWorkload`]) live in `fasea-datagen` and are re-exported
//! here — this module adds only the runner.

use fasea_bandit::{GreedyOracle, Oracle, OracleWorkspace, Policy, ScoreWorkspace, SelectionView};
use fasea_core::{
    validate_arrangement, Arrangement, ContextMatrix, Feedback, RegretAccounting, UserArrival,
};
pub use fasea_datagen::{MultiUserConfig, MultiUserWorkload};
use fasea_stats::{Bernoulli, CoinStream};

/// How the learner is organised across users. The lifetime allows a
/// *borrowed* shared policy ([`run_multi_user_stored`]); owned
/// policies use `LearnerArchitecture<'static>` as before.
pub enum LearnerArchitecture<'a> {
    /// One policy serves every user.
    Shared(Box<dyn Policy + 'a>),
    /// One policy per user id, built on demand by the factory.
    PerUser(Box<dyn FnMut(usize) -> Box<dyn Policy> + 'a>),
}

impl LearnerArchitecture<'_> {
    fn display_name(&self) -> &'static str {
        match self {
            LearnerArchitecture::Shared(_) => "shared",
            LearnerArchitecture::PerUser(_) => "per-user",
        }
    }
}

/// Result of one architecture run.
#[derive(Debug, Clone)]
pub struct MultiUserRunResult {
    /// "shared", "per-user" or "stored".
    pub architecture: &'static str,
    /// Cumulative accounting over all rounds.
    pub accounting: RegretAccounting,
    /// The clairvoyant reference (per-round oracle using each user's
    /// true θ, with its own shared capacity pool).
    pub opt_rewards: u64,
    /// FNV-1a digest over every round's `(t, arranged event ids)` —
    /// two runs arranged identically iff their digests match, which is
    /// how the spill-determinism golden test compares a budgeted run
    /// against an unbounded one without retaining every arrangement.
    pub arrangement_digest: u64,
}

/// Incremental FNV-1a over round arrangements.
#[derive(Debug, Clone, Copy)]
struct ArrangementDigest(u64);

impl ArrangementDigest {
    fn new() -> Self {
        ArrangementDigest(0xcbf2_9ce4_8422_2325)
    }

    fn absorb_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn absorb_round(&mut self, t: u64, arrangement: &Arrangement) {
        self.absorb_u64(t);
        self.absorb_u64(arrangement.len() as u64);
        for &v in arrangement.events() {
            self.absorb_u64(v.index() as u64);
        }
    }
}

/// Runs one learner architecture over the multi-user workload.
///
/// Feedback uses common random numbers, and OPT (which knows every
/// user's θ) is co-simulated with its own capacity pool — so results
/// across architectures are directly comparable.
pub fn run_multi_user(
    workload: &MultiUserWorkload,
    mut architecture: LearnerArchitecture<'_>,
    horizon: u64,
    feedback_seed: u64,
) -> MultiUserRunResult {
    let instance = &workload.inner.instance;
    let conflicts = instance.conflicts();
    let coins = CoinStream::new(feedback_seed);
    let arch_name = architecture.display_name();

    let mut per_user_policies: Vec<Option<Box<dyn Policy>>> = match &architecture {
        LearnerArchitecture::Shared(_) => Vec::new(),
        LearnerArchitecture::PerUser(_) => (0..workload.population()).map(|_| None).collect(),
    };

    let mut remaining: Vec<u32> = instance.capacities().to_vec();
    let mut opt_remaining: Vec<u32> = instance.capacities().to_vec();
    let mut opt_ws = OracleWorkspace::new();
    let mut opt_arrangement = Arrangement::empty();
    let mut accounting = RegretAccounting::new();
    let mut opt_rewards = 0u64;
    let mut arrangement = fasea_core::Arrangement::empty();
    let mut digest = ArrangementDigest::new();

    for t in 0..horizon {
        let user = workload.user_at(t);
        let model = workload.model_of(user);
        let arrival: UserArrival = workload.inner.arrivals.arrival(t);

        // The learner's move.
        {
            let policy: &mut dyn Policy = match &mut architecture {
                LearnerArchitecture::Shared(p) => p.as_mut(),
                LearnerArchitecture::PerUser(factory) => per_user_policies[user]
                    .get_or_insert_with(|| factory(user))
                    .as_mut(),
            };
            let view = SelectionView {
                t,
                user_capacity: arrival.capacity,
                contexts: &arrival.contexts,
                conflicts,
                remaining: &remaining,
            };
            policy.select_into(&view, &mut arrangement);
            validate_arrangement(&arrangement, conflicts, &remaining, arrival.capacity)
                .unwrap_or_else(|e| panic!("{arch_name} learner infeasible: {e}"));
            digest.absorb_round(t, &arrangement);
            let mut accepted = Vec::with_capacity(arrangement.len());
            for &v in arrangement.events() {
                let p = model.accept_probability(&arrival.contexts, v);
                let ok = Bernoulli::new(p).trial_with(coins.uniform(t, v.index() as u64));
                if ok {
                    remaining[v.index()] -= 1;
                }
                accepted.push(ok);
            }
            let feedback = fasea_core::Feedback::new(accepted);
            let reward = feedback.reward();
            policy.observe(t, &arrival.contexts, &arrangement, &feedback);
            accounting.record_round(arrangement.len(), reward);
        }

        // OPT's move (true per-user θ, its own capacity pool, same coins).
        {
            let scores: Vec<f64> = (0..instance.num_events())
                .map(|v| model.expected_reward(&arrival.contexts, fasea_core::EventId(v)))
                .collect();
            GreedyOracle.arrange_into(
                &scores,
                conflicts,
                &opt_remaining,
                arrival.capacity,
                &mut opt_ws,
                &mut opt_arrangement,
            );
            let arrangement = &opt_arrangement;
            for &v in arrangement.events() {
                let p = model.accept_probability(&arrival.contexts, v);
                if Bernoulli::new(p).trial_with(coins.uniform(t, v.index() as u64)) {
                    opt_remaining[v.index()] -= 1;
                    opt_rewards += 1;
                }
            }
        }
    }

    MultiUserRunResult {
        architecture: arch_name,
        accounting,
        opt_rewards,
        arrangement_digest: digest.0,
    }
}

/// A borrowed view of a policy, so a caller can run the multi-user
/// loop without giving up ownership (and afterwards read store stats,
/// digests, …) — the plumbing behind [`run_multi_user_stored`].
struct BorrowedPolicy<'a>(&'a mut dyn Policy);

impl Policy for BorrowedPolicy<'_> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn score_into(&mut self, view: &SelectionView<'_>, ws: &mut ScoreWorkspace) {
        self.0.score_into(view, ws)
    }
    fn workspace(&self) -> &ScoreWorkspace {
        self.0.workspace()
    }
    fn workspace_mut(&mut self) -> &mut ScoreWorkspace {
        self.0.workspace_mut()
    }
    fn select_into(&mut self, view: &SelectionView<'_>, out: &mut Arrangement) {
        self.0.select_into(view, out)
    }
    fn observe(
        &mut self,
        t: u64,
        contexts: &ContextMatrix,
        arrangement: &Arrangement,
        feedback: &Feedback,
    ) {
        self.0.observe(t, contexts, arrangement, feedback)
    }
    fn state_bytes(&self) -> usize {
        self.0.state_bytes()
    }
    fn save_state(&self) -> Vec<u8> {
        self.0.save_state()
    }
    fn restore_state(&mut self, blob: &[u8]) -> Result<(), fasea_bandit::SnapshotError> {
        self.0.restore_state(blob)
    }
}

/// Runs a *store-backed* policy (one policy instance sharding per-user
/// state internally, e.g. `fasea-models`' `PersonalizedUcb`) over the
/// multi-user workload. The policy is borrowed, not consumed, so the
/// caller keeps access to its store for stats and digests after the
/// run. Feedback coins, OPT co-simulation and accounting are identical
/// to [`run_multi_user`]; the result is labelled `"stored"`.
///
/// The policy must derive each round's user from `view.t` with the
/// same schedule as the workload
/// (`MultiUserWorkload::schedule_seed` / `population`).
pub fn run_multi_user_stored(
    workload: &MultiUserWorkload,
    policy: &mut dyn Policy,
    horizon: u64,
    feedback_seed: u64,
) -> MultiUserRunResult {
    let mut result = run_multi_user(
        workload,
        LearnerArchitecture::Shared(Box::new(BorrowedPolicy(policy))),
        horizon,
        feedback_seed,
    );
    result.architecture = "stored";
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_bandit::LinUcb;
    use fasea_datagen::{MultiUserConfig, SyntheticConfig};

    fn workload(h: f64, seed: u64) -> MultiUserWorkload {
        MultiUserWorkload::generate(MultiUserConfig {
            base: SyntheticConfig {
                num_events: 30,
                dim: 6,
                seed,
                ..Default::default()
            },
            population: 5,
            heterogeneity: h,
        })
    }

    fn shared(d: usize) -> LearnerArchitecture<'static> {
        LearnerArchitecture::Shared(Box::new(LinUcb::new(d, 1.0, 2.0)))
    }

    fn per_user(d: usize) -> LearnerArchitecture<'static> {
        LearnerArchitecture::PerUser(Box::new(move |_u| {
            Box::new(LinUcb::new(d, 1.0, 2.0)) as Box<dyn Policy>
        }))
    }

    #[test]
    fn both_architectures_run_and_account() {
        let w = workload(0.5, 10);
        for arch in [shared(6), per_user(6)] {
            let r = run_multi_user(&w, arch, 400, 3);
            assert_eq!(r.accounting.rounds(), 400);
            assert!(r.opt_rewards > 0);
            assert!(r.accounting.total_rewards() <= r.accounting.total_arranged());
        }
    }

    #[test]
    fn homogeneous_population_favours_shared_learner() {
        // h = 0: every user has the same θ. The shared learner gets 5x
        // the data per model and must do at least as well (small slack
        // for coin noise).
        let w = workload(0.0, 21);
        let shared_r = run_multi_user(&w, shared(6), 1500, 7);
        let per_user_r = run_multi_user(&w, per_user(6), 1500, 7);
        assert!(
            shared_r.accounting.total_rewards() as f64
                >= per_user_r.accounting.total_rewards() as f64 * 0.97,
            "shared {} vs per-user {}",
            shared_r.accounting.total_rewards(),
            per_user_r.accounting.total_rewards()
        );
    }

    #[test]
    fn heterogeneous_population_favours_per_user_learner() {
        let w = workload(1.0, 33);
        let shared_r = run_multi_user(&w, shared(6), 3000, 9);
        let per_user_r = run_multi_user(&w, per_user(6), 3000, 9);
        assert!(
            per_user_r.accounting.total_rewards() > shared_r.accounting.total_rewards(),
            "per-user {} <= shared {}",
            per_user_r.accounting.total_rewards(),
            shared_r.accounting.total_rewards()
        );
    }

    #[test]
    fn arrangement_digest_is_reproducible_and_discriminating() {
        let w = workload(0.5, 44);
        let a = run_multi_user(&w, shared(6), 300, 3);
        let b = run_multi_user(&w, shared(6), 300, 3);
        assert_eq!(a.arrangement_digest, b.arrangement_digest);
        // A different feedback seed changes what gets arranged.
        let c = run_multi_user(&w, shared(6), 300, 4);
        assert_ne!(a.arrangement_digest, c.arrangement_digest);
    }

    #[test]
    fn stored_runner_borrows_the_policy_and_matches_itself() {
        use fasea_models::{EstimatorStore, PersonalizedUcb, StoreConfig, UserSchedule};
        let w = workload(0.8, 55);
        let schedule = UserSchedule::new(w.schedule_seed(), w.population());
        let make = || {
            PersonalizedUcb::new(
                EstimatorStore::new(StoreConfig::unbounded(6, 1.0)).unwrap(),
                schedule,
                2.0,
            )
        };
        let mut p1 = make();
        let mut p2 = make();
        let r1 = run_multi_user_stored(&w, &mut p1, 400, 9);
        let r2 = run_multi_user_stored(&w, &mut p2, 400, 9);
        assert_eq!(r1.architecture, "stored");
        assert_eq!(r1.arrangement_digest, r2.arrangement_digest);
        assert_eq!(r1.accounting.total_rewards(), r2.accounting.total_rewards());
        // The caller keeps the policy: store stats are readable.
        let stats = p1.store().stats();
        assert!(stats.cow_materializations > 0);
        assert_eq!(stats.users, p1.store().num_users());
        assert_eq!(p1.save_state(), p2.save_state());
    }

    #[test]
    fn capacities_are_shared_across_users() {
        // Small caps: total rewards across the whole run can never
        // exceed total capacity even though 5 different users consume.
        let w = MultiUserWorkload::generate(MultiUserConfig {
            base: SyntheticConfig {
                num_events: 8,
                dim: 3,
                capacity: fasea_datagen::CapacityModel {
                    mean: 5.0,
                    std: 0.0,
                },
                seed: 2,
                ..Default::default()
            },
            population: 5,
            heterogeneity: 0.3,
        });
        let total_capacity = w.inner.instance.total_capacity();
        let r = run_multi_user(&w, shared(3), 2000, 1);
        assert!(r.accounting.total_rewards() <= total_capacity);
        assert!(r.opt_rewards <= total_capacity);
    }
}

//! Parallel execution of independent experiment cells.
//!
//! A paper figure is typically a sweep — the same simulation repeated
//! over a parameter grid (|V|, d, cr, λ, α, …). Cells are independent,
//! so they fan out over crossbeam scoped threads, bounded by the
//! available parallelism.

/// Runs `jobs` (one closure per experiment cell) with at most
/// `max_threads` running concurrently, returning results in input order.
///
/// `max_threads = 0` means "use available parallelism".
///
/// Claiming is lock-free: workers race a single atomic work index over
/// a pre-split cell array — each `fetch_add` hands out one cell exactly
/// once, so no queue mutex serialises claim traffic and no per-slot
/// mutex guards the result writes (the unique claim already makes them
/// exclusive; the scope join publishes them before reading).
pub fn run_parallel<T, F>(jobs: Vec<F>, max_threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = if max_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        max_threads
    };
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }

    /// One work cell: the job going in, its result coming out.
    struct Cell<F, T>(std::cell::UnsafeCell<(Option<F>, Option<T>)>);
    // SAFETY: every cell is touched by exactly one worker (the atomic
    // claim below is unique per index), and results are only read after
    // the scope joins all workers.
    unsafe impl<F: Send, T: Send> Sync for Cell<F, T> {}

    let cells: Vec<Cell<F, T>> = jobs
        .into_iter()
        .map(|f| Cell(std::cell::UnsafeCell::new((Some(f), None))))
        .collect();
    let next = AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|_| loop {
                // Relaxed suffices: claim uniqueness comes from the RMW
                // itself, and result visibility from the scope join.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: index `i` was claimed by this worker alone.
                let cell = unsafe { &mut *cells[i].0.get() };
                let f = cell.0.take().expect("sweep job claimed twice");
                cell.1 = Some(f());
            });
        }
    })
    .expect("sweep worker panicked");

    cells
        .into_iter()
        .map(|c| {
            c.0.into_inner()
                .1
                .expect("sweep job did not produce a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let jobs: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        let out = run_parallel(jobs, 4);
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn runs_with_single_thread() {
        let jobs: Vec<_> = (0..5).map(|i| move || i + 1).collect();
        assert_eq!(run_parallel(jobs, 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_means_available_parallelism() {
        let jobs: Vec<_> = (0..3).map(|i| move || i).collect();
        assert_eq!(run_parallel(jobs, 0), vec![0, 1, 2]);
    }

    #[test]
    fn empty_job_list() {
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![];
        let out: Vec<i32> = run_parallel(jobs, 2);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_actually_run_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::Duration;
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..8)
            .map(|_| {
                let live = &live;
                let peak = &peak;
                move || {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(30));
                    live.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        run_parallel(jobs, 4);
        assert!(peak.load(Ordering::SeqCst) >= 2, "no observed concurrency");
    }
}

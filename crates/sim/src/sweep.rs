//! Parallel execution of independent experiment cells.
//!
//! A paper figure is typically a sweep — the same simulation repeated
//! over a parameter grid (|V|, d, cr, λ, α, …). Cells are independent,
//! so they fan out over crossbeam scoped threads, bounded by the
//! available parallelism.

/// Runs `jobs` (one closure per experiment cell) with at most
/// `max_threads` running concurrently, returning results in input order.
///
/// `max_threads = 0` means "use available parallelism".
pub fn run_parallel<T, F>(jobs: Vec<F>, max_threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let threads = if max_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        max_threads
    };
    let n = jobs.len();
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if n == 0 {
        return Vec::new();
    }

    // Work queue of (index, job); worker threads pop until empty.
    let queue: std::sync::Mutex<Vec<(usize, F)>> =
        std::sync::Mutex::new(jobs.into_iter().enumerate().rev().collect());
    let slots: Vec<std::sync::Mutex<&mut Option<T>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|_| loop {
                let job = queue.lock().expect("sweep queue poisoned").pop();
                match job {
                    Some((i, f)) => {
                        let out = f();
                        **slots[i].lock().expect("sweep slot poisoned") = Some(out);
                    }
                    None => break,
                }
            });
        }
    })
    .expect("sweep worker panicked");

    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("sweep job did not produce a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let jobs: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        let out = run_parallel(jobs, 4);
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn runs_with_single_thread() {
        let jobs: Vec<_> = (0..5).map(|i| move || i + 1).collect();
        assert_eq!(run_parallel(jobs, 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_means_available_parallelism() {
        let jobs: Vec<_> = (0..3).map(|i| move || i).collect();
        assert_eq!(run_parallel(jobs, 0), vec![0, 1, 2]);
    }

    #[test]
    fn empty_job_list() {
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![];
        let out: Vec<i32> = run_parallel(jobs, 2);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_actually_run_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::Duration;
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..8)
            .map(|_| {
                let live = &live;
                let peak = &peak;
                move || {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(30));
                    live.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        run_parallel(jobs, 4);
        assert!(peak.load(Ordering::SeqCst) >= 2, "no observed concurrency");
    }
}

//! The main synthetic-data simulation loop.

use fasea_bandit::{Opt, Policy, SelectionView};
use fasea_core::{Environment, RegretAccounting, RewardModel, UserArrival};
use fasea_datagen::SyntheticWorkload;
use fasea_stats::{kendall_tau, CoinStream, P2Quantile, RunningStats};
use std::time::Instant;

/// The paper's checkpoint grid: `100, 200, …, 1000, 2000, …` up to the
/// horizon (the Figure 2 sampling schedule, reused for every time-series
/// plot). Always includes the final round.
pub fn paper_checkpoints(horizon: u64) -> Vec<u64> {
    let mut cps = Vec::new();
    let mut t = 100;
    while t < 1000.min(horizon) {
        cps.push(t);
        t += 100;
    }
    let mut t = 1000;
    while t < horizon {
        cps.push(t);
        t += 1000;
    }
    cps.push(horizon);
    cps.dedup();
    cps
}

/// Simulation configuration.
///
/// Marked `#[non_exhaustive]`: construct it with [`RunConfig::new`] or
/// [`RunConfig::paper`] and refine with the builder methods — new knobs
/// can then land without breaking downstream crates.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunConfig {
    /// Number of rounds to play.
    pub horizon: u64,
    /// Sorted checkpoint times (1-based round counts) at which metric
    /// snapshots are taken. Defaults to [`paper_checkpoints`].
    pub checkpoints: Vec<u64>,
    /// Track Kendall τ of policy scores vs ground truth at checkpoints.
    pub track_kendall: bool,
    /// Measure per-round wall time per policy.
    pub measure_time: bool,
    /// Seed of the common-random-number feedback stream.
    pub feedback_seed: u64,
    /// Intra-round parallel scoring threads. `0` or `1` = serial (the
    /// default); `N > 1` installs one shared
    /// [`fasea_bandit::ScorePool`] into every policy for the run —
    /// results are bit-identical to serial for every policy, only
    /// wall-clock changes.
    pub score_threads: usize,
    /// Which arrangement [`fasea_bandit::Oracle`] every policy (and the
    /// OPT reference) runs its selections through. The default greedy
    /// oracle is bit-identical to the historical behaviour.
    pub oracle: fasea_bandit::OracleOptions,
    /// Event lifecycle schedule: capacity re-plans applied to every
    /// environment — including OPT's — at round boundaries, so regret
    /// is measured against a *moving* optimum. Default: no churn.
    pub churn: fasea_core::ChurnSchedule,
}

impl RunConfig {
    /// Minimal config: one checkpoint at the horizon, no Kendall
    /// tracking, no timing, default feedback seed. Refine with the
    /// builder methods.
    pub fn new(horizon: u64) -> Self {
        RunConfig {
            horizon,
            checkpoints: vec![horizon],
            track_kendall: false,
            measure_time: false,
            feedback_seed: 0xFEEDBAC4,
            score_threads: 0,
            oracle: fasea_bandit::OracleOptions::new(),
            churn: fasea_core::ChurnSchedule::none(),
        }
    }

    /// Paper-style config for a given horizon.
    pub fn paper(horizon: u64) -> Self {
        RunConfig {
            horizon,
            checkpoints: paper_checkpoints(horizon),
            track_kendall: false,
            measure_time: true,
            feedback_seed: 0xFEEDBAC4,
            score_threads: 0,
            oracle: fasea_bandit::OracleOptions::new(),
            churn: fasea_core::ChurnSchedule::none(),
        }
    }

    /// Replaces the checkpoint grid (must be sorted, 1-based).
    pub fn with_checkpoints(mut self, checkpoints: Vec<u64>) -> Self {
        self.checkpoints = checkpoints;
        self
    }

    /// Enables Kendall tracking (Figure 2).
    pub fn with_kendall(mut self) -> Self {
        self.track_kendall = true;
        self
    }

    /// Sets whether per-round wall time is measured.
    pub fn with_timing(mut self, measure: bool) -> Self {
        self.measure_time = measure;
        self
    }

    /// Sets the seed of the common-random-number feedback stream.
    pub fn with_feedback_seed(mut self, seed: u64) -> Self {
        self.feedback_seed = seed;
        self
    }

    /// Sets the intra-round parallel scoring thread count (`0`/`1` =
    /// serial).
    pub fn with_score_threads(mut self, threads: usize) -> Self {
        self.score_threads = threads;
        self
    }

    /// Selects the arrangement oracle. See [`RunConfig::oracle`].
    pub fn with_oracle(mut self, oracle: fasea_bandit::OracleOptions) -> Self {
        self.oracle = oracle;
        self
    }

    /// Installs an event lifecycle schedule. See [`RunConfig::churn`].
    pub fn with_churn(mut self, churn: fasea_core::ChurnSchedule) -> Self {
        self.churn = churn;
        self
    }
}

/// One metric snapshot (one x-axis point of the paper's figures).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Round count at the snapshot (1-based: after `t` rounds).
    pub t: u64,
    /// Cumulative accept ratio.
    pub accept_ratio: f64,
    /// Cumulative total rewards.
    pub total_rewards: u64,
    /// Cumulative total regret vs the reference strategy.
    pub total_regret: i64,
    /// Regret ratio (regret / rewards).
    pub regret_ratio: f64,
    /// Kendall τ vs ground truth at this round, if tracked.
    pub kendall_tau: Option<f64>,
}

/// Results for one policy over the full run.
#[derive(Debug, Clone)]
pub struct PolicyRunResult {
    /// Policy display name.
    pub name: String,
    /// Snapshots at the configured checkpoints.
    pub checkpoints: Vec<Checkpoint>,
    /// Final cumulative accounting.
    pub accounting: RegretAccounting,
    /// Mean per-round wall time in seconds (select + observe), if
    /// measured.
    pub avg_round_secs: f64,
    /// 95th-percentile per-round wall time in seconds (P² estimate) —
    /// the latency tail an online platform actually answers users with.
    pub p95_round_secs: f64,
    /// Structural memory estimate in MB (policy state + shared input).
    pub memory_mb: f64,
}

/// Results of one simulation: every learning policy plus the reference.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Per-policy results, in input order.
    pub policies: Vec<PolicyRunResult>,
    /// The reference (OPT) strategy's own result (regret vs itself = 0).
    pub reference: PolicyRunResult,
    /// Round at which the reference exhausted all event capacity, if it
    /// did (the paper's sudden-regret-drop time, e.g. t = 65 664).
    pub reference_exhausted_at: Option<u64>,
}

struct PolicyState<'a, M: RewardModel + Clone> {
    policy: &'a mut dyn Policy,
    env: Environment<M>,
    accounting: RegretAccounting,
    time: RunningStats,
    time_p95: P2Quantile,
    checkpoints: Vec<Checkpoint>,
    // Reused across rounds so the select path stays allocation-free.
    arrangement: fasea_core::Arrangement,
}

/// Runs `policies` plus an OPT reference over the workload's arrival
/// stream. Policies are driven in lockstep so they share each round's
/// contexts and acceptance coins.
pub fn run_simulation(
    workload: &SyntheticWorkload,
    policies: &mut [Box<dyn Policy>],
    config: &RunConfig,
) -> SimulationResult {
    let model = workload.model.clone();
    let mut opt_policy = Opt::new(model.clone());
    let memory = crate::MemoryModel::for_instance(&workload.instance);

    // One shared scoring pool for the whole run (None when serial).
    // Installed into every policy's workspace before the loop and
    // removed afterwards so caller-owned policies don't keep worker
    // threads alive past the simulation.
    let score_pool = fasea_bandit::ScorePool::shared(config.score_threads);
    opt_policy
        .workspace_mut()
        .set_score_pool(score_pool.clone());
    for p in policies.iter_mut() {
        p.workspace_mut().set_score_pool(score_pool.clone());
    }

    // The configured arrangement oracle runs every policy's selections
    // — and OPT's, so the regret baseline uses the same combinatorial
    // subroutine. Like the pool it is removed again after the run.
    let oracle = config.oracle.build();
    opt_policy.workspace_mut().set_oracle(Some(oracle.clone()));
    for p in policies.iter_mut() {
        p.workspace_mut().set_oracle(Some(oracle.clone()));
    }

    let coins = CoinStream::new(config.feedback_seed);
    let mut opt_state = PolicyState {
        policy: &mut opt_policy,
        env: Environment::new(workload.instance.clone(), model.clone(), coins),
        accounting: RegretAccounting::new(),
        time: RunningStats::new(),
        time_p95: P2Quantile::new(0.95),
        checkpoints: Vec::new(),
        arrangement: fasea_core::Arrangement::empty(),
    };
    let mut states: Vec<PolicyState<'_, _>> = policies
        .iter_mut()
        .map(|p| PolicyState {
            policy: p.as_mut(),
            env: Environment::new(workload.instance.clone(), model.clone(), coins),
            accounting: RegretAccounting::new(),
            time: RunningStats::new(),
            time_p95: P2Quantile::new(0.95),
            checkpoints: Vec::new(),
            arrangement: fasea_core::Arrangement::empty(),
        })
        .collect();

    let mut reference_exhausted_at = None;
    let mut next_cp = 0usize;
    let mut truth_buf: Vec<f64> = Vec::new();

    for t in 0..config.horizon {
        // Lifecycle churn lands before the round's arrival is served.
        // Every environment — OPT's included — re-plans identically, so
        // regret is measured against the *moving* optimum.
        for action in config.churn.actions_at(t) {
            opt_state.env.apply_lifecycle(action.event, action.capacity);
            for st in states.iter_mut() {
                st.env.apply_lifecycle(action.event, action.capacity);
            }
        }

        let arrival = workload.arrivals.arrival(t);
        let at_checkpoint =
            next_cp < config.checkpoints.len() && t + 1 == config.checkpoints[next_cp];

        // Ground-truth expected rewards this round (for Kendall).
        if config.track_kendall && at_checkpoint {
            truth_buf.clear();
            truth_buf.extend(
                (0..workload.instance.num_events())
                    .map(|v| model.expected_reward(&arrival.contexts, fasea_core::EventId(v))),
            );
        }

        // Reference strategy first (it defines the regret baseline).
        step_policy(&mut opt_state, t, &arrival, config.measure_time);
        if reference_exhausted_at.is_none() && opt_state.env.is_exhausted() {
            reference_exhausted_at = Some(t + 1);
        }

        for st in states.iter_mut() {
            step_policy(st, t, &arrival, config.measure_time);
        }

        if at_checkpoint {
            let opt_acc = opt_state.accounting;
            push_checkpoint(
                &mut opt_state,
                t + 1,
                &opt_acc,
                config.track_kendall.then_some(truth_buf.as_slice()),
            );
            for st in states.iter_mut() {
                push_checkpoint(
                    st,
                    t + 1,
                    &opt_acc,
                    config.track_kendall.then_some(truth_buf.as_slice()),
                );
            }
            next_cp += 1;
        }
    }

    let finish = |st: PolicyState<'_, _>| -> PolicyRunResult {
        PolicyRunResult {
            name: st.policy.name().to_string(),
            memory_mb: memory.total_mb(st.policy.state_bytes()),
            checkpoints: st.checkpoints,
            accounting: st.accounting,
            avg_round_secs: st.time.mean(),
            p95_round_secs: st.time_p95.value().unwrap_or(0.0),
        }
    };

    let result = SimulationResult {
        reference: finish(opt_state),
        policies: states.into_iter().map(finish).collect(),
        reference_exhausted_at,
    };

    // Caller-owned policies must not keep pool workers alive after the
    // run; dropping the last Arc joins them. The oracle is uninstalled
    // for the same reason: it belongs to this run's config.
    for p in policies.iter_mut() {
        if score_pool.is_some() {
            p.workspace_mut().set_score_pool(None);
        }
        p.workspace_mut().set_oracle(None);
    }
    result
}

fn step_policy<M: RewardModel + Clone>(
    st: &mut PolicyState<'_, M>,
    t: u64,
    arrival: &UserArrival,
    measure_time: bool,
) {
    let view = SelectionView {
        t,
        user_capacity: arrival.capacity,
        contexts: &arrival.contexts,
        conflicts: st.env.instance().conflicts(),
        remaining: st.env.remaining(),
    };
    let start = measure_time.then(Instant::now);
    // Batched path into the per-policy arrangement buffer: with a warm
    // workspace, steady-state rounds of the learning policies allocate
    // nothing.
    st.policy.select_into(&view, &mut st.arrangement);
    let outcome = st
        .env
        .step(t, arrival, &st.arrangement)
        .unwrap_or_else(|e| {
            panic!(
                "policy {} proposed an infeasible arrangement: {e}",
                st.policy.name()
            )
        });
    st.policy
        .observe(t, &arrival.contexts, &st.arrangement, &outcome.feedback);
    // Keep the workspace's model epoch in step with learner updates so
    // prefetched score sets (the pipelined engine) can never be reused
    // across a model change.
    if !st.arrangement.is_empty() {
        st.policy.workspace_mut().bump_model_epoch();
    }
    if let Some(s) = start {
        let secs = s.elapsed().as_secs_f64();
        st.time.push(secs);
        st.time_p95.push(secs);
    }
    st.accounting
        .record_round(st.arrangement.len(), outcome.reward);
}

fn push_checkpoint<M: RewardModel + Clone>(
    st: &mut PolicyState<'_, M>,
    t: u64,
    reference: &RegretAccounting,
    truth: Option<&[f64]>,
) {
    let tau = truth.and_then(|truth| {
        st.policy
            .last_scores()
            .and_then(|scores| kendall_tau(scores, truth))
    });
    st.checkpoints.push(Checkpoint {
        t,
        accept_ratio: st.accounting.accept_ratio(),
        total_rewards: st.accounting.total_rewards(),
        total_regret: st.accounting.regret_vs(reference),
        regret_ratio: st.accounting.regret_ratio_vs(reference),
        kendall_tau: tau,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_bandit::{EpsilonGreedy, Exploit, LinUcb, RandomPolicy, ThompsonSampling};
    use fasea_datagen::SyntheticConfig;

    fn small_workload(seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::generate(SyntheticConfig {
            num_events: 30,
            horizon: 2000,
            dim: 5,
            conflict_ratio: 0.2,
            seed,
            ..Default::default()
        })
    }

    fn full_policy_set(d: usize, seed: u64) -> Vec<Box<dyn Policy>> {
        vec![
            Box::new(LinUcb::new(d, 1.0, 2.0)),
            Box::new(ThompsonSampling::new(d, 1.0, 0.1, seed)),
            Box::new(EpsilonGreedy::new(d, 1.0, 0.1, seed ^ 1)),
            Box::new(Exploit::new(d, 1.0)),
            Box::new(RandomPolicy::new(seed ^ 2)),
        ]
    }

    #[test]
    fn paper_checkpoints_grid() {
        let cps = paper_checkpoints(100_000);
        assert_eq!(cps[0], 100);
        assert_eq!(cps[8], 900);
        assert_eq!(cps[9], 1000);
        assert_eq!(cps[10], 2000);
        assert_eq!(*cps.last().unwrap(), 100_000);
        assert_eq!(cps.len(), 9 + 100);
        // Short horizons truncate cleanly.
        assert_eq!(paper_checkpoints(500), vec![100, 200, 300, 400, 500]);
        assert_eq!(
            paper_checkpoints(1000),
            vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
        );
    }

    #[test]
    fn simulation_runs_and_reports_all_policies() {
        let w = small_workload(11);
        let mut policies = full_policy_set(5, 7);
        let cfg = RunConfig {
            horizon: 500,
            checkpoints: vec![100, 250, 500],
            track_kendall: true,
            measure_time: true,
            feedback_seed: 42,
            score_threads: 0,
            ..RunConfig::new(1)
        };
        let res = run_simulation(&w, &mut policies, &cfg);
        assert_eq!(res.policies.len(), 5);
        assert_eq!(res.reference.name, "OPT");
        for p in &res.policies {
            assert_eq!(p.checkpoints.len(), 3);
            assert!(p.accounting.rounds() == 500);
            assert!(p.avg_round_secs >= 0.0);
            assert!(p.memory_mb > 0.0);
            // Kendall was tracked for every checkpoint.
            assert!(p.checkpoints.iter().all(|c| c.kendall_tau.is_some()));
        }
        // OPT's regret vs itself is identically zero.
        assert!(res
            .reference
            .checkpoints
            .iter()
            .all(|c| c.total_regret == 0));
    }

    #[test]
    fn opt_beats_random_by_a_margin() {
        let w = small_workload(5);
        let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(RandomPolicy::new(3))];
        let cfg = RunConfig {
            horizon: 2000,
            checkpoints: vec![2000],
            track_kendall: false,
            measure_time: false,
            feedback_seed: 9,
            score_threads: 0,
            ..RunConfig::new(1)
        };
        let res = run_simulation(&w, &mut policies, &cfg);
        let random_rewards = res.policies[0].accounting.total_rewards();
        let opt_rewards = res.reference.accounting.total_rewards();
        assert!(
            opt_rewards as f64 > random_rewards as f64 * 1.15,
            "OPT {opt_rewards} vs Random {random_rewards}"
        );
    }

    #[test]
    fn ucb_outperforms_random_on_long_runs() {
        let w = small_workload(8);
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(LinUcb::new(5, 1.0, 2.0)),
            Box::new(RandomPolicy::new(4)),
        ];
        let cfg = RunConfig {
            horizon: 2000,
            checkpoints: vec![2000],
            track_kendall: false,
            measure_time: false,
            feedback_seed: 10,
            score_threads: 0,
            ..RunConfig::new(1)
        };
        let res = run_simulation(&w, &mut policies, &cfg);
        let ucb = res.policies[0].accounting.total_rewards();
        let random = res.policies[1].accounting.total_rewards();
        assert!(ucb > random, "UCB {ucb} <= Random {random}");
    }

    #[test]
    fn regret_is_cumulative_and_consistent() {
        let w = small_workload(13);
        let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(Exploit::new(5, 1.0))];
        let cfg = RunConfig {
            horizon: 300,
            checkpoints: vec![100, 200, 300],
            track_kendall: false,
            measure_time: false,
            feedback_seed: 17,
            score_threads: 0,
            ..RunConfig::new(1)
        };
        let res = run_simulation(&w, &mut policies, &cfg);
        let p = &res.policies[0];
        for c in &p.checkpoints {
            // regret == opt_rewards_at_t - policy_rewards_at_t; both are
            // non-decreasing, and the relation regret_ratio = regret /
            // rewards must hold exactly.
            if c.total_rewards > 0 {
                let expect = c.total_regret as f64 / c.total_rewards as f64;
                assert!((c.regret_ratio - expect).abs() < 1e-12);
            }
            assert!((0.0..=1.0).contains(&c.accept_ratio));
        }
    }

    #[test]
    fn identical_seeds_reproduce_exactly() {
        let w = small_workload(21);
        let cfg = RunConfig {
            horizon: 200,
            checkpoints: vec![200],
            track_kendall: false,
            measure_time: false,
            feedback_seed: 5,
            score_threads: 0,
            ..RunConfig::new(1)
        };
        let mut p1: Vec<Box<dyn Policy>> = vec![Box::new(ThompsonSampling::new(5, 1.0, 0.1, 2))];
        let mut p2: Vec<Box<dyn Policy>> = vec![Box::new(ThompsonSampling::new(5, 1.0, 0.1, 2))];
        let r1 = run_simulation(&w, &mut p1, &cfg);
        let r2 = run_simulation(&w, &mut p2, &cfg);
        assert_eq!(
            r1.policies[0].accounting.total_rewards(),
            r2.policies[0].accounting.total_rewards()
        );
        assert_eq!(
            r1.reference.accounting.total_rewards(),
            r2.reference.accounting.total_rewards()
        );
    }

    #[test]
    fn parallel_scoring_reproduces_serial_results_exactly() {
        let w = small_workload(19);
        let cfg_serial = RunConfig {
            horizon: 250,
            checkpoints: vec![125, 250],
            track_kendall: true,
            measure_time: false,
            feedback_seed: 77,
            score_threads: 0,
            ..RunConfig::new(1)
        };
        let cfg_parallel = RunConfig {
            score_threads: 4,
            ..cfg_serial.clone()
        };
        let mut p1 = full_policy_set(5, 3);
        let mut p2 = full_policy_set(5, 3);
        let r1 = run_simulation(&w, &mut p1, &cfg_serial);
        let r2 = run_simulation(&w, &mut p2, &cfg_parallel);
        // Checkpoint derives PartialEq over exact counts and exact
        // floats (accept/regret ratios, Kendall τ): the parallel run
        // must be indistinguishable from serial.
        assert_eq!(r1.reference.checkpoints, r2.reference.checkpoints);
        for (a, b) in r1.policies.iter().zip(&r2.policies) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.checkpoints, b.checkpoints, "{} diverged", a.name);
            assert_eq!(a.accounting.total_rewards(), b.accounting.total_rewards());
        }
        // The run uninstalled the pool from the caller's policies: no
        // worker threads outlive run_simulation.
        for p in &mut p2 {
            assert!(p.workspace_mut().score_pool().is_none());
        }
    }

    #[test]
    fn capacity_exhaustion_is_detected() {
        // Tiny capacities: OPT must exhaust all events well before the
        // horizon, flattening its reward curve.
        let w = SyntheticWorkload::generate(SyntheticConfig {
            num_events: 5,
            dim: 3,
            capacity: fasea_datagen::CapacityModel {
                mean: 3.0,
                std: 0.0,
            },
            conflict_ratio: 0.0,
            horizon: 5000,
            seed: 33,
            ..Default::default()
        });
        let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(RandomPolicy::new(1))];
        let cfg = RunConfig {
            horizon: 5000,
            checkpoints: vec![5000],
            track_kendall: false,
            measure_time: false,
            feedback_seed: 2,
            score_threads: 0,
            ..RunConfig::new(1)
        };
        let res = run_simulation(&w, &mut policies, &cfg);
        let exhausted = res.reference_exhausted_at.expect("OPT never exhausted");
        assert!(exhausted < 5000);
        // Total OPT rewards equal the total capacity (15).
        assert_eq!(res.reference.accounting.total_rewards(), 15);
    }

    #[test]
    fn churn_applies_to_every_policy_and_stays_deterministic() {
        let w = small_workload(29);
        let churn = fasea_core::ChurnSchedule::generate(w.instance.capacities(), 400, 25, 0xC0FFEE);
        assert!(!churn.is_empty());
        let cfg = RunConfig::new(400)
            .with_checkpoints(vec![200, 400])
            .with_feedback_seed(6)
            .with_churn(churn);
        let mut p1: Vec<Box<dyn Policy>> = vec![Box::new(LinUcb::new(5, 1.0, 2.0))];
        let mut p2: Vec<Box<dyn Policy>> = vec![Box::new(LinUcb::new(5, 1.0, 2.0))];
        let r1 = run_simulation(&w, &mut p1, &cfg.clone());
        let r2 = run_simulation(&w, &mut p2, &cfg);
        assert_eq!(r1.policies[0].checkpoints, r2.policies[0].checkpoints);
        // OPT's environment churns too, so regret against the moving
        // optimum is still identically zero for OPT itself.
        assert!(r1.reference.checkpoints.iter().all(|c| c.total_regret == 0));
    }

    #[test]
    fn tabu_oracle_drives_a_full_run() {
        let w = small_workload(31);
        let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(Exploit::new(5, 1.0))];
        let cfg = RunConfig::new(200)
            .with_checkpoints(vec![200])
            .with_oracle(fasea_bandit::OracleOptions::tabu());
        let res = run_simulation(&w, &mut policies, &cfg);
        assert_eq!(res.policies[0].accounting.rounds(), 200);
        assert!(res.policies[0].accounting.total_rewards() > 0);
    }
}

//! Structural memory accounting (the memory columns of Tables 5 and 6).
//!
//! The paper measured process RSS on Windows; we instead report a
//! transparent structural estimate — bytes actually held by the input
//! data (per-round context block, conflict bitsets, capacity array) plus
//! the policy's own state, plus a fixed process-baseline constant so the
//! magnitudes are comparable to the paper's 4–10 MB range. Both trends
//! the paper reports (growth in |V| and in d) come from the input term.

use fasea_core::ProblemInstance;

/// Bytes assumed for the process baseline (allocator, binary, stack) —
/// a constant chosen to land in the paper's magnitude range; it carries
/// no information and is documented in `EXPERIMENTS.md`.
pub const PROCESS_BASELINE_BYTES: usize = 4 * 1024 * 1024;

/// Structural memory model for one problem instance.
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    input_bytes: usize,
}

impl MemoryModel {
    /// Builds the model for an instance: one round's context block
    /// (`|V|·d` f64s), the conflict bitsets (`|V|·⌈|V|/64⌉` words) and
    /// the two capacity arrays.
    pub fn for_instance(instance: &ProblemInstance) -> Self {
        let n = instance.num_events();
        let d = instance.dim();
        let contexts = n * d * std::mem::size_of::<f64>();
        let conflicts = n * n.div_ceil(64) * std::mem::size_of::<u64>();
        let capacities = 2 * n * std::mem::size_of::<u32>();
        MemoryModel {
            input_bytes: contexts + conflicts + capacities,
        }
    }

    /// Input-side bytes (shared across policies).
    pub fn input_bytes(&self) -> usize {
        self.input_bytes
    }

    /// Total estimate in MB for a policy with `state_bytes` of learner
    /// state.
    pub fn total_mb(&self, state_bytes: usize) -> f64 {
        (PROCESS_BASELINE_BYTES + self.input_bytes + state_bytes) as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_core::{ConflictGraph, ProblemMode};

    fn instance(n: usize, d: usize) -> ProblemInstance {
        ProblemInstance::new(vec![1; n], ConflictGraph::new(n), d, ProblemMode::Fasea)
    }

    #[test]
    fn grows_with_num_events() {
        let m100 = MemoryModel::for_instance(&instance(100, 20));
        let m1000 = MemoryModel::for_instance(&instance(1000, 20));
        assert!(m1000.input_bytes() > m100.input_bytes());
        assert!(m1000.total_mb(0) > m100.total_mb(0));
    }

    #[test]
    fn grows_with_dimension() {
        let d1 = MemoryModel::for_instance(&instance(500, 1));
        let d20 = MemoryModel::for_instance(&instance(500, 20));
        assert!(d20.input_bytes() > d1.input_bytes());
    }

    #[test]
    fn magnitude_in_paper_range() {
        // Default setting |V|=500, d=20 should land in single-digit MB.
        let m = MemoryModel::for_instance(&instance(500, 20));
        let mb = m.total_mb(2 * 20 * 20 * 8);
        assert!(mb > 4.0 && mb < 10.0, "mb={mb}");
    }

    #[test]
    fn state_bytes_add_on_top() {
        let m = MemoryModel::for_instance(&instance(10, 2));
        assert!(m.total_mb(1024 * 1024) > m.total_mb(0));
    }
}

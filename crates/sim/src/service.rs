//! A production-style arrangement service.
//!
//! [`crate::runner`] drives policies against a *simulated* platform.
//! This module is the inverse packaging: an [`ArrangementService`] wraps
//! one policy and the live platform state (remaining capacities,
//! conflicts) behind the two calls a real EBSN backend would make —
//! `propose` when a user logs in, `feedback` when their
//! accept/reject decisions come back — enforcing the FASEA protocol
//! (Definition 3) at the API boundary:
//!
//! * arrangements are validated against capacities and conflicts before
//!   leaving the service;
//! * a proposal is **irrevocable**: the next proposal can only be made
//!   after feedback for the previous one has been recorded;
//! * feedback must match the pending arrangement slot-for-slot;
//! * accepted events decrement shared remaining capacity.
//!
//! The `arrangement_service` example wraps this in a line-oriented
//! stdin/stdout protocol.

use fasea_bandit::{Policy, SelectionView, SnapshotError};
use fasea_core::{
    validate_arrangement, Arrangement, ContextMatrix, EventId, Feedback, ProblemInstance,
    RegretAccounting, UserArrival,
};
use fasea_store::StoreError;
use std::fmt;
use std::sync::Arc;

/// Protocol violations and invariant breaches surfaced by the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// `propose` was called while an earlier proposal still awaits
    /// feedback (arrangements are irrevocable and strictly sequential).
    FeedbackPending,
    /// `feedback` was called with no outstanding proposal.
    NoPendingProposal,
    /// Feedback length does not match the pending arrangement.
    FeedbackLengthMismatch {
        /// Slots in the pending arrangement.
        expected: usize,
        /// Slots supplied.
        got: usize,
    },
    /// The context block does not match the instance (|V| or d).
    ContextShapeMismatch,
    /// The wrapped policy produced an infeasible arrangement — a policy
    /// bug that the service refuses to expose to users.
    PolicyProducedInfeasible(String),
    /// The durable store failed (I/O, corruption, foreign log, …).
    Store(StoreError),
    /// A state snapshot could not be decoded or restored.
    Snapshot(SnapshotError),
    /// Deterministic WAL replay produced a different decision than the
    /// logged one — the policy, RNG stream, or numeric environment
    /// changed since the log was written, and recovery refuses to
    /// fabricate history.
    RecoveryDiverged {
        /// WAL sequence number of the diverging record.
        seq: u64,
        /// What differed.
        detail: String,
    },
    /// The persisted state belongs to a different policy than the one
    /// supplied for recovery.
    PolicyMismatch {
        /// Policy name in the persisted state.
        expected: String,
        /// Name of the policy supplied.
        found: String,
    },
    /// A lifecycle action named an event outside the instance.
    EventOutOfRange {
        /// The offending event id.
        event: u32,
        /// Number of events in the instance.
        num_events: usize,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::FeedbackPending => {
                write!(f, "previous arrangement still awaits feedback")
            }
            ServiceError::NoPendingProposal => write!(f, "no arrangement awaiting feedback"),
            ServiceError::FeedbackLengthMismatch { expected, got } => {
                write!(f, "feedback for {got} events but {expected} were arranged")
            }
            ServiceError::ContextShapeMismatch => {
                write!(f, "context block does not match the instance shape")
            }
            ServiceError::PolicyProducedInfeasible(why) => {
                write!(f, "policy produced an infeasible arrangement: {why}")
            }
            ServiceError::Store(e) => write!(f, "durable store failure: {e}"),
            ServiceError::Snapshot(e) => write!(f, "snapshot failure: {e}"),
            ServiceError::RecoveryDiverged { seq, detail } => {
                write!(f, "replay diverged from the log at seq {seq}: {detail}")
            }
            ServiceError::PolicyMismatch { expected, found } => {
                write!(
                    f,
                    "persisted state is for policy {expected:?}, not {found:?}"
                )
            }
            ServiceError::EventOutOfRange { event, num_events } => {
                write!(
                    f,
                    "lifecycle action names event {event} but the instance has {num_events} events"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

impl From<SnapshotError> for ServiceError {
    fn from(e: SnapshotError) -> Self {
        ServiceError::Snapshot(e)
    }
}

/// The live arrangement service.
pub struct ArrangementService {
    policy: Box<dyn Policy>,
    instance: ProblemInstance,
    remaining: Vec<u32>,
    t: u64,
    pending: Option<(Arrangement, ContextMatrix)>,
    accounting: RegretAccounting,
    // Selection buffer reused across proposals; the policy's own
    // workspace holds the scoring scratch, so a proposal's hot path
    // allocates only the pending/returned copies.
    scratch: Arrangement,
}

impl ArrangementService {
    /// Creates the service with full capacities.
    pub fn new(instance: ProblemInstance, policy: Box<dyn Policy>) -> Self {
        let remaining = instance.capacities().to_vec();
        ArrangementService {
            policy,
            instance,
            remaining,
            t: 0,
            pending: None,
            accounting: RegretAccounting::new(),
            scratch: Arrangement::empty(),
        }
    }

    /// The wrapped policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Rounds completed (proposal + feedback pairs).
    pub fn rounds_completed(&self) -> u64 {
        self.t
    }

    /// Remaining capacity per event.
    pub fn remaining(&self) -> &[u32] {
        &self.remaining
    }

    /// Cumulative accounting over completed rounds.
    pub fn accounting(&self) -> &RegretAccounting {
        &self.accounting
    }

    /// `true` if a proposal awaits feedback.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// The pending proposal and the context block it was computed from,
    /// if a proposal awaits feedback.
    pub fn pending(&self) -> Option<(&Arrangement, &ContextMatrix)> {
        self.pending.as_ref().map(|(a, c)| (a, c))
    }

    /// Read access to the wrapped policy (state snapshots).
    pub fn policy(&self) -> &dyn Policy {
        self.policy.as_ref()
    }

    /// Installs (or removes, with `None`) a shared [`ScorePool`] in the
    /// wrapped policy's workspace. Parallel scoring is bit-identical to
    /// serial, so this can be flipped at any round boundary — including
    /// before WAL replay — without perturbing decisions.
    pub fn install_score_pool(&mut self, pool: Option<Arc<fasea_bandit::ScorePool>>) {
        self.policy.workspace_mut().set_score_pool(pool);
    }

    /// Installs (or removes, with `None`) an external
    /// [`fasea_bandit::Arranger`] in the wrapped policy's workspace —
    /// the seam the sharded coordinator uses to fan the Oracle-Greedy
    /// top-k ranking out over shard actors. The arranger contract
    /// (arrangements equal to the serial oracle) means this too can be
    /// flipped at any round boundary without perturbing decisions.
    pub fn install_arranger(&mut self, arranger: Option<Arc<dyn fasea_bandit::Arranger>>) {
        self.policy.workspace_mut().set_arranger(arranger);
    }

    /// Installs (or removes, with `None`) an [`fasea_bandit::Oracle`]
    /// in the wrapped policy's workspace — the arrangement step every
    /// selection runs through. `None` (and an explicit
    /// [`fasea_bandit::GreedyOracle`]) keep the paper's Oracle-Greedy
    /// behaviour bit-for-bit; a different oracle changes decisions and
    /// therefore belongs in the durable fingerprint (see
    /// [`crate::durable::DurableOptions::with_oracle`]).
    pub fn install_oracle(&mut self, oracle: Option<Arc<dyn fasea_bandit::Oracle>>) {
        self.policy.workspace_mut().set_oracle(oracle);
    }

    /// Applies one event-lifecycle action at a round boundary: sets
    /// `event`'s remaining capacity to `capacity`, clamped to the
    /// instance's planned capacity (a re-plan can shrink, close, or
    /// restore an event, never grow it beyond the fingerprinted
    /// instance). Set-capacity semantics make re-application
    /// idempotent. Returns the capacity actually installed.
    ///
    /// # Errors
    /// [`ServiceError::FeedbackPending`] if a proposal is in flight
    /// (capacities under a pending arrangement are frozen — mutating
    /// them could invalidate an irrevocable proposal), or
    /// [`ServiceError::EventOutOfRange`].
    pub fn apply_lifecycle(&mut self, event: u32, capacity: u32) -> Result<u32, ServiceError> {
        if self.pending.is_some() {
            return Err(ServiceError::FeedbackPending);
        }
        let e = event as usize;
        if e >= self.remaining.len() {
            return Err(ServiceError::EventOutOfRange {
                event,
                num_events: self.remaining.len(),
            });
        }
        let clamped = capacity.min(self.instance.capacities()[e]);
        self.remaining[e] = clamped;
        Ok(clamped)
    }

    /// The immutable problem description this service runs on.
    pub fn instance(&self) -> &ProblemInstance {
        &self.instance
    }

    /// Reassembles a service from recovered state: a policy whose
    /// learning state was already restored, the remaining capacities,
    /// the round counter, the pending proposal (if the service went
    /// down mid-round), and the accounting totals. Used by
    /// [`crate::durable::DurableArrangementService`] after loading a
    /// snapshot; prefer [`ArrangementService::new`] everywhere else.
    ///
    /// # Errors
    /// [`ServiceError::ContextShapeMismatch`] if `remaining` or the
    /// pending context block do not match the instance shape, or if any
    /// recovered remaining capacity exceeds the instance capacity.
    pub fn from_parts(
        instance: ProblemInstance,
        policy: Box<dyn Policy>,
        remaining: Vec<u32>,
        t: u64,
        pending: Option<(Arrangement, ContextMatrix)>,
        accounting: RegretAccounting,
    ) -> Result<Self, ServiceError> {
        if remaining.len() != instance.num_events()
            || remaining
                .iter()
                .zip(instance.capacities())
                .any(|(&r, &c)| r > c)
        {
            return Err(ServiceError::ContextShapeMismatch);
        }
        if let Some((a, ctx)) = &pending {
            if ctx.num_events() != instance.num_events()
                || ctx.dim() != instance.dim()
                || a.iter().any(|v| v.index() >= instance.num_events())
            {
                return Err(ServiceError::ContextShapeMismatch);
            }
        }
        Ok(ArrangementService {
            policy,
            instance,
            remaining,
            t,
            pending,
            accounting,
            scratch: Arrangement::empty(),
        })
    }

    /// Proposes an arrangement for the arriving user. The proposal is
    /// pending until [`ArrangementService::feedback`] is called.
    ///
    /// # Errors
    /// [`ServiceError::FeedbackPending`] if called out of order,
    /// [`ServiceError::ContextShapeMismatch`] on malformed input, or
    /// [`ServiceError::PolicyProducedInfeasible`] if the wrapped policy
    /// misbehaves (the service re-validates every proposal).
    pub fn propose(&mut self, user: &UserArrival) -> Result<Arrangement, ServiceError> {
        if self.pending.is_some() {
            return Err(ServiceError::FeedbackPending);
        }
        if user.contexts.num_events() != self.instance.num_events()
            || user.contexts.dim() != self.instance.dim()
        {
            return Err(ServiceError::ContextShapeMismatch);
        }
        let view = SelectionView {
            t: self.t,
            user_capacity: user.capacity,
            contexts: &user.contexts,
            conflicts: self.instance.conflicts(),
            remaining: &self.remaining,
        };
        self.policy.select_into(&view, &mut self.scratch);
        validate_arrangement(
            &self.scratch,
            self.instance.conflicts(),
            &self.remaining,
            user.capacity,
        )
        .map_err(|e| ServiceError::PolicyProducedInfeasible(e.to_string()))?;
        let arrangement = self.scratch.clone();
        self.pending = Some((arrangement.clone(), user.contexts.clone()));
        Ok(arrangement)
    }

    /// Records the user's accept/reject answers for the pending
    /// proposal, updates the learner, and decrements capacities of
    /// accepted events. Returns the round reward.
    ///
    /// # Errors
    /// [`ServiceError::NoPendingProposal`] or
    /// [`ServiceError::FeedbackLengthMismatch`].
    pub fn feedback(&mut self, accepted: &[bool]) -> Result<u32, ServiceError> {
        let (arrangement, contexts) = self.pending.take().ok_or(ServiceError::NoPendingProposal)?;
        if accepted.len() != arrangement.len() {
            // Restore the pending state: the caller may retry correctly.
            let expected = arrangement.len();
            self.pending = Some((arrangement, contexts));
            return Err(ServiceError::FeedbackLengthMismatch {
                expected,
                got: accepted.len(),
            });
        }
        let fb = Feedback::new(accepted.to_vec());
        for (v, ok) in fb.zip(&arrangement) {
            if ok {
                // Validation at propose time guarantees remaining > 0.
                self.remaining[v.index()] -= 1;
            }
        }
        self.policy.observe(self.t, &contexts, &arrangement, &fb);
        // An observe over a non-empty arrangement updates learner state,
        // so any prefetched score set stashed before this point is now
        // stale. Empty arrangements are no-ops for every policy
        // (estimators fold in one rank-1 update per *arranged* event),
        // so the epoch — and with it any stash — survives them.
        if !arrangement.is_empty() {
            self.policy.workspace_mut().bump_model_epoch();
        }
        let reward = fb.reward();
        self.accounting.record_round(arrangement.len(), reward);
        self.t += 1;
        Ok(reward)
    }

    /// Speculatively computes round `t`'s scores for `user` and stashes
    /// them in the policy workspace, tagged with the current model
    /// epoch ([`fasea_bandit::ScoreWorkspace::stash_prefetch`]). A
    /// subsequent [`ArrangementService::propose`] for the same round
    /// reuses the stash if no intervening feedback touched the model,
    /// and recomputes deterministically otherwise — proposals are
    /// bit-identical either way, prefetching only moves the kernel work
    /// earlier in time.
    ///
    /// Unlike `propose`, this is legal while a proposal is pending: the
    /// stash is computed against the current model and invalidated by
    /// the pending round's feedback exactly when that feedback is
    /// non-empty.
    ///
    /// Callers that cannot guarantee the stash will be consumed before
    /// any other selection must first check
    /// `service.policy().scoring_is_deterministic()` — prefetching a
    /// sampling policy speculatively would consume its RNG twice on a
    /// discarded stash (see [`fasea_bandit::Policy::prefetch_scores`]).
    ///
    /// # Errors
    /// [`ServiceError::ContextShapeMismatch`] on malformed input.
    pub fn prefetch_scores(&mut self, t: u64, user: &UserArrival) -> Result<(), ServiceError> {
        if user.contexts.num_events() != self.instance.num_events()
            || user.contexts.dim() != self.instance.dim()
        {
            return Err(ServiceError::ContextShapeMismatch);
        }
        let view = SelectionView {
            t,
            user_capacity: user.capacity,
            contexts: &user.contexts,
            conflicts: self.instance.conflicts(),
            // Scores never read `remaining` (only the arrangement step
            // does, and that always runs fresh at propose time), so the
            // current snapshot is fine even for a future round.
            remaining: &self.remaining,
        };
        self.policy.prefetch_scores(&view);
        Ok(())
    }

    /// Drops any stashed prefetch without scoring it. Required when the
    /// proposal a stash was computed for is withdrawn (e.g. its serve
    /// connection died) — the round may be re-proposed with different
    /// contexts, which the (round, epoch) tag cannot detect.
    pub fn clear_prefetch(&mut self) {
        self.policy.workspace_mut().clear_prefetch();
    }

    /// The model-version epoch of the wrapped policy's workspace:
    /// incremented on every feedback that updated learner state. The
    /// pipelined engines use (round, epoch) equality to decide whether
    /// a prefetched score set is still valid.
    pub fn model_epoch(&self) -> u64 {
        self.policy.workspace().model_epoch()
    }

    /// Number of events that still have capacity.
    pub fn available_events(&self) -> usize {
        self.remaining.iter().filter(|&&c| c > 0).count()
    }

    /// Remaining capacity of one event.
    pub fn remaining_capacity(&self, v: EventId) -> u32 {
        self.remaining[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_bandit::LinUcb;
    use fasea_core::{ConflictGraph, ProblemMode};

    fn service(caps: Vec<u32>) -> ArrangementService {
        let n = caps.len();
        let instance = ProblemInstance::new(caps, ConflictGraph::new(n), 2, ProblemMode::Fasea);
        ArrangementService::new(instance, Box::new(LinUcb::new(2, 1.0, 2.0)))
    }

    fn arrival(n: usize, cu: u32) -> UserArrival {
        let mut ctx = ContextMatrix::from_fn(n, 2, |v, j| ((v + j + 1) % 3) as f64 * 0.3);
        ctx.normalize_rows();
        UserArrival::new(cu, ctx)
    }

    #[test]
    fn propose_feedback_cycle() {
        let mut svc = service(vec![2, 2, 2]);
        let user = arrival(3, 2);
        let a = svc.propose(&user).unwrap();
        assert!(!a.is_empty());
        assert!(svc.has_pending());
        let reward = svc.feedback(&vec![true; a.len()]).unwrap();
        assert_eq!(reward as usize, a.len());
        assert_eq!(svc.rounds_completed(), 1);
        assert!(!svc.has_pending());
        // Accepted events lost capacity.
        let consumed: u32 = a.iter().map(|v| 2 - svc.remaining_capacity(v)).sum();
        assert_eq!(consumed as usize, a.len());
    }

    #[test]
    fn double_propose_rejected() {
        let mut svc = service(vec![1, 1]);
        let user = arrival(2, 1);
        let _ = svc.propose(&user).unwrap();
        assert_eq!(svc.propose(&user), Err(ServiceError::FeedbackPending));
    }

    #[test]
    fn feedback_without_proposal_rejected() {
        let mut svc = service(vec![1]);
        assert_eq!(svc.feedback(&[true]), Err(ServiceError::NoPendingProposal));
    }

    #[test]
    fn mismatched_feedback_keeps_pending_state() {
        let mut svc = service(vec![1, 1, 1]);
        let user = arrival(3, 2);
        let a = svc.propose(&user).unwrap();
        let err = svc.feedback(&vec![true; a.len() + 1]).unwrap_err();
        assert!(matches!(err, ServiceError::FeedbackLengthMismatch { .. }));
        // Still pending; correct feedback now succeeds.
        assert!(svc.has_pending());
        assert!(svc.feedback(&vec![false; a.len()]).is_ok());
    }

    #[test]
    fn context_shape_checked() {
        let mut svc = service(vec![1, 1]);
        let bad = UserArrival::new(1, ContextMatrix::zeros(3, 2));
        assert_eq!(svc.propose(&bad), Err(ServiceError::ContextShapeMismatch));
        let bad_dim = UserArrival::new(1, ContextMatrix::zeros(2, 5));
        assert_eq!(
            svc.propose(&bad_dim),
            Err(ServiceError::ContextShapeMismatch)
        );
    }

    #[test]
    fn prefetched_propose_matches_fresh_and_feedback_invalidates() {
        let mut plain = service(vec![2, 2, 2]);
        let mut pipelined = service(vec![2, 2, 2]);
        let user0 = arrival(3, 2);
        let user1 = arrival(3, 1);

        // Round 0: prefetch right before propose — guaranteed hit.
        pipelined.prefetch_scores(0, &user0).unwrap();
        let a = pipelined.propose(&user0).unwrap();
        assert_eq!(a, plain.propose(&user0).unwrap());
        assert_eq!(pipelined.policy().workspace().prefetch_stats().hits, 1);

        // Prefetch round 1 while round 0's feedback is outstanding,
        // then deliver accepting feedback: the model update bumps the
        // epoch and the stash must be discarded, not reused.
        let epoch = pipelined.model_epoch();
        pipelined.prefetch_scores(1, &user1).unwrap();
        let accepts = vec![true; a.len()];
        assert_eq!(
            pipelined.feedback(&accepts).unwrap(),
            plain.feedback(&accepts).unwrap()
        );
        assert_eq!(pipelined.model_epoch(), epoch + 1);
        let b = pipelined.propose(&user1).unwrap();
        assert_eq!(b, plain.propose(&user1).unwrap());
        assert_eq!(
            pipelined.policy().workspace().prefetch_stats().recomputes,
            1
        );

        // All-reject feedback leaves the estimator untouched only per
        // event actually arranged — rejects still update the model, so
        // the epoch advances whenever the arrangement was non-empty.
        let rejects = vec![false; b.len()];
        let before = pipelined.model_epoch();
        pipelined.feedback(&rejects).unwrap();
        plain.feedback(&rejects).unwrap();
        assert_eq!(pipelined.model_epoch(), before + 1);
        assert_eq!(pipelined.remaining(), plain.remaining());
    }

    #[test]
    fn capacities_deplete_until_no_events_available() {
        let mut svc = service(vec![1, 1]);
        for _ in 0..2 {
            let user = arrival(2, 2);
            let a = svc.propose(&user).unwrap();
            svc.feedback(&vec![true; a.len()]).unwrap();
        }
        assert_eq!(svc.available_events(), 0);
        // Further proposals return empty arrangements, legally.
        let user = arrival(2, 2);
        let a = svc.propose(&user).unwrap();
        assert!(a.is_empty());
        svc.feedback(&[]).unwrap();
    }

    #[test]
    fn lifecycle_sets_clamps_and_respects_pending() {
        let mut svc = service(vec![3, 5]);
        assert_eq!(svc.apply_lifecycle(0, 0).unwrap(), 0);
        assert_eq!(svc.remaining(), &[0, 5]);
        // Re-open clamps to the planned capacity.
        assert_eq!(svc.apply_lifecycle(0, 99).unwrap(), 3);
        assert_eq!(svc.remaining(), &[3, 5]);
        assert_eq!(
            svc.apply_lifecycle(7, 1),
            Err(ServiceError::EventOutOfRange {
                event: 7,
                num_events: 2
            })
        );
        // Frozen while a proposal is pending.
        let user = arrival(2, 1);
        let a = svc.propose(&user).unwrap();
        assert_eq!(
            svc.apply_lifecycle(1, 1),
            Err(ServiceError::FeedbackPending)
        );
        svc.feedback(&vec![false; a.len()]).unwrap();
        assert_eq!(svc.apply_lifecycle(1, 1).unwrap(), 1);
    }

    #[test]
    fn installed_oracle_changes_the_arrangement_step() {
        // A closed event (capacity 0) must never be proposed no matter
        // which oracle is installed.
        let mut svc = service(vec![2, 2, 2]);
        svc.install_oracle(Some(fasea_bandit::OracleOptions::tabu().build()));
        svc.apply_lifecycle(1, 0).unwrap();
        let user = arrival(3, 3);
        let a = svc.propose(&user).unwrap();
        assert!(a.iter().all(|v| v != EventId(1)));
        svc.feedback(&vec![true; a.len()]).unwrap();
        svc.install_oracle(None);
        let a = svc.propose(&arrival(3, 2)).unwrap();
        svc.feedback(&vec![false; a.len()]).unwrap();
    }

    #[test]
    fn learner_adapts_across_rounds() {
        // Feed 30 rounds where only event 0 is ever accepted; the
        // learner should then rank event 0 first.
        let mut svc = service(vec![100, 100]);
        for _ in 0..30 {
            let user = arrival(2, 2);
            let a = svc.propose(&user).unwrap();
            let fb: Vec<bool> = a.iter().map(|v| v == EventId(0)).collect();
            svc.feedback(&fb).unwrap();
        }
        let user = arrival(2, 1);
        let a = svc.propose(&user).unwrap();
        svc.feedback(&vec![true; a.len()]).unwrap();
        assert_eq!(a.events(), &[EventId(0)]);
        assert!(svc.accounting().total_rewards() > 0);
        assert_eq!(svc.policy_name(), "UCB");
    }
}

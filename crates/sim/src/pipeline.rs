//! Cross-user pipelined round engine.
//!
//! FASEA's online protocol (Definition 3) is strictly sequential — one
//! user per round, feedback before the next proposal — and every
//! engine so far executed it that way end to end: context generation,
//! scoring, arrangement, and the WAL commit of round `t` all finished
//! before round `t+1` started. But the *compute* of round `t+1` does
//! not depend on round `t`'s durability, only on its in-memory model
//! update. [`RoundPipeline`] exploits that: as soon as round `t`'s
//! feedback has been applied in memory (its log record may still be
//! riding the group-commit queue), the pipeline
//!
//! 1. pre-generates the context blocks of the next `depth - 1`
//!    arrivals, and
//! 2. runs round `t+1`'s `score_into` kernel early, stashing the score
//!    vector in the policy workspace tagged with the current
//!    **model-version epoch**
//!    ([`fasea_bandit::ScoreWorkspace::stash_prefetch`]),
//!
//! then blocks on round `t`'s durability watermark. When round `t+1`
//! is proposed, [`fasea_bandit::Policy::select_into`] consumes the
//! stash iff the round index and epoch still match, and recomputes
//! deterministically otherwise.
//!
//! ## Why the result is bit-identical to the sequential loop
//!
//! The prefetch runs *after* the previous feedback's `observe` and
//! *before* anything else touches the policy, so the policy sees the
//! exact call sequence of the sequential loop — merely earlier in wall
//! time. RNG-consuming policies (TS, eGreedy, Random) therefore draw
//! the same stream; with the in-order guarantee the stash always hits,
//! so no draw ever happens twice. Scores never read `remaining` in any
//! shipped policy, so churn applied between prefetch and propose does
//! not invalidate the stash; the *arrangement* step, which does read
//! `remaining`, always runs fresh at propose time. A crash between
//! prefetch and propose recovers to exactly the unprefetched state
//! because the stash writes nothing to the WAL.
//!
//! Speculation *deeper* than one round — scoring ahead of an
//! unresolved round whose feedback may still touch the model — is the
//! serve actor's territory (`fasea-serve`), gated on
//! [`fasea_bandit::Policy::scoring_is_deterministic`]; this in-process
//! engine never needs it.

use crate::durable::DurableArrangementService;
use crate::service::{ArrangementService, ServiceError};
use fasea_bandit::PrefetchStats;
use fasea_core::{Arrangement, ChurnSchedule, UserArrival};
use std::collections::VecDeque;

/// The single-user round surface [`RoundPipeline`] drives. Implemented
/// by the in-memory [`ArrangementService`], the durable
/// [`DurableArrangementService`], and (in `fasea-shard`) the sharded
/// coordinator — so one pipeline implementation serves every backend
/// and the parity gates can compare them pairwise.
pub trait PipelinedBackend {
    /// Rounds completed (proposal + feedback pairs).
    fn rounds_completed(&self) -> u64;

    /// The pending arrangement recovered or left mid-round, if any.
    fn pending_arrangement(&self) -> Option<Arrangement>;

    /// Proposes round `rounds_completed()`'s arrangement.
    ///
    /// # Errors
    /// The backend's protocol/store errors, unchanged.
    fn propose(&mut self, user: &UserArrival) -> Result<Arrangement, ServiceError>;

    /// Applies feedback in memory and *begins* making it durable,
    /// returning `(reward, token)` where `token` is later passed to
    /// [`PipelinedBackend::wait_durable`]. Backends without a commit
    /// queue complete durability inline and return a no-op token.
    ///
    /// # Errors
    /// The backend's protocol/store errors, unchanged.
    fn feedback_begin(&mut self, accepts: &[bool]) -> Result<(u32, u64), ServiceError>;

    /// Blocks until the record identified by `token` is durable.
    ///
    /// # Errors
    /// The store's poisoning error — the record may or may not be on
    /// disk, so the caller must not acknowledge the round.
    fn wait_durable(&self, token: u64) -> Result<(), ServiceError>;

    /// Applies one lifecycle action at a round boundary.
    ///
    /// # Errors
    /// The backend's protocol/store errors, unchanged.
    fn lifecycle(&mut self, event: u32, capacity: u32) -> Result<u32, ServiceError>;

    /// Stashes round `t`'s scores early, tagged with the model epoch
    /// (see [`ArrangementService::prefetch_scores`]).
    ///
    /// # Errors
    /// Shape mismatches, as for `propose`.
    fn prefetch_scores(&mut self, t: u64, user: &UserArrival) -> Result<(), ServiceError>;

    /// Cumulative workspace prefetch counters (hits/recomputes).
    fn prefetch_stats(&self) -> PrefetchStats;
}

impl PipelinedBackend for ArrangementService {
    fn rounds_completed(&self) -> u64 {
        ArrangementService::rounds_completed(self)
    }
    fn pending_arrangement(&self) -> Option<Arrangement> {
        self.pending().map(|(a, _)| a.clone())
    }
    fn propose(&mut self, user: &UserArrival) -> Result<Arrangement, ServiceError> {
        ArrangementService::propose(self, user)
    }
    fn feedback_begin(&mut self, accepts: &[bool]) -> Result<(u32, u64), ServiceError> {
        ArrangementService::feedback(self, accepts).map(|r| (r, 0))
    }
    fn wait_durable(&self, _token: u64) -> Result<(), ServiceError> {
        Ok(())
    }
    fn lifecycle(&mut self, event: u32, capacity: u32) -> Result<u32, ServiceError> {
        self.apply_lifecycle(event, capacity)
    }
    fn prefetch_scores(&mut self, t: u64, user: &UserArrival) -> Result<(), ServiceError> {
        ArrangementService::prefetch_scores(self, t, user)
    }
    fn prefetch_stats(&self) -> PrefetchStats {
        self.policy().workspace().prefetch_stats()
    }
}

impl PipelinedBackend for DurableArrangementService {
    fn rounds_completed(&self) -> u64 {
        DurableArrangementService::rounds_completed(self)
    }
    fn pending_arrangement(&self) -> Option<Arrangement> {
        DurableArrangementService::pending_arrangement(self).cloned()
    }
    fn propose(&mut self, user: &UserArrival) -> Result<Arrangement, ServiceError> {
        DurableArrangementService::propose(self, user)
    }
    fn feedback_begin(&mut self, accepts: &[bool]) -> Result<(u32, u64), ServiceError> {
        self.feedback_deferred(accepts)
    }
    fn wait_durable(&self, token: u64) -> Result<(), ServiceError> {
        DurableArrangementService::wait_durable(self, token)
    }
    fn lifecycle(&mut self, event: u32, capacity: u32) -> Result<u32, ServiceError> {
        DurableArrangementService::lifecycle(self, event, capacity)
    }
    fn prefetch_scores(&mut self, t: u64, user: &UserArrival) -> Result<(), ServiceError> {
        DurableArrangementService::prefetch_scores(self, t, user)
    }
    fn prefetch_stats(&self) -> PrefetchStats {
        self.service().policy().workspace().prefetch_stats()
    }
}

/// Work-overlap counters of one [`RoundPipeline`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Rounds driven to completion.
    pub rounds: u64,
    /// Rounds whose scores came from a prefetched stash.
    pub prefetch_hits: u64,
    /// Rounds whose stash was stale and recomputed (in-order pipelining
    /// should keep this at 0 — nothing intervenes between stash and
    /// use).
    pub prefetch_recomputes: u64,
    /// Context blocks generated ahead of their round.
    pub contexts_pregenerated: u64,
}

/// Drives the one-user-per-round loop with up to `depth` rounds of
/// work overlap — see the module docs for the mechanism and the
/// determinism argument. `depth = 1` is exactly the sequential loop;
/// any depth produces bit-identical backend state.
#[derive(Debug)]
pub struct RoundPipeline {
    depth: usize,
    // Pre-generated arrivals for future rounds, ordered by round.
    ring: VecDeque<(u64, UserArrival)>,
    stats: PipelineStats,
}

impl RoundPipeline {
    /// A pipeline overlapping up to `depth` rounds (`depth` is clamped
    /// to at least 1; 1 means fully sequential).
    pub fn new(depth: usize) -> Self {
        RoundPipeline {
            depth: depth.max(1),
            ring: VecDeque::new(),
            stats: PipelineStats::default(),
        }
    }

    /// The configured overlap depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Cumulative counters across every [`RoundPipeline::run`] call.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Drives `svc` until `upto` rounds have completed. `arrival_at`
    /// generates the context block of a round (it may be called ahead
    /// of the current round, and at most once per round); `accepts_for`
    /// produces the user's accept/reject answers for a proposed
    /// arrangement; `churn` optionally injects lifecycle actions at
    /// round boundaries, exactly as the sequential loop does.
    ///
    /// Restart-safe: if `svc` recovered mid-round with a pending
    /// arrangement, the pending round is completed first, like the
    /// sequential loop.
    ///
    /// # Errors
    /// The first backend error, unchanged; the pipeline adds no failure
    /// modes of its own.
    pub fn run<B: PipelinedBackend>(
        &mut self,
        svc: &mut B,
        upto: u64,
        mut arrival_at: impl FnMut(u64) -> UserArrival,
        mut accepts_for: impl FnMut(u64, &Arrangement) -> Vec<bool>,
        churn: Option<&ChurnSchedule>,
    ) -> Result<(), ServiceError> {
        let before = svc.prefetch_stats();
        while svc.rounds_completed() < upto {
            let t = svc.rounds_completed();
            // Stale entries can exist after a crash-recovery restart.
            self.ring.retain(|(rt, _)| *rt >= t);
            let arrangement = if let Some(p) = svc.pending_arrangement() {
                p
            } else {
                if let Some(churn) = churn {
                    for action in churn.actions_at(t) {
                        svc.lifecycle(action.event, action.capacity)?;
                    }
                }
                let user = self.take_arrival(t, &mut arrival_at);
                svc.propose(&user)?
            };
            let accepts = accepts_for(t, &arrangement);
            let (_reward, token) = svc.feedback_begin(&accepts)?;
            self.stats.rounds += 1;
            // Round t's model update is applied; its log record may
            // still be in the commit queue. Overlap round t+1's work
            // with that wait, then block on durability before the next
            // round is acknowledged.
            if self.depth >= 2 && t + 1 < upto {
                let horizon = (t + self.depth as u64).min(upto);
                for ft in (t + 1)..horizon {
                    if !self.ring.iter().any(|(rt, _)| *rt == ft) {
                        self.ring.push_back((ft, arrival_at(ft)));
                        self.stats.contexts_pregenerated += 1;
                    }
                }
                if let Some((_, user)) = self.ring.iter().find(|(rt, _)| *rt == t + 1) {
                    svc.prefetch_scores(t + 1, user)?;
                }
            }
            svc.wait_durable(token)?;
        }
        let after = svc.prefetch_stats();
        self.stats.prefetch_hits += after.hits - before.hits;
        self.stats.prefetch_recomputes += after.recomputes - before.recomputes;
        Ok(())
    }

    fn take_arrival(
        &mut self,
        t: u64,
        arrival_at: &mut impl FnMut(u64) -> UserArrival,
    ) -> UserArrival {
        if let Some(pos) = self.ring.iter().position(|(rt, _)| *rt == t) {
            self.ring.remove(pos).map(|(_, u)| u).unwrap()
        } else {
            arrival_at(t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_bandit::{LinUcb, ThompsonSampling};
    use fasea_core::{ConflictGraph, ContextMatrix, ProblemInstance, ProblemMode};

    fn instance(n: usize) -> ProblemInstance {
        ProblemInstance::new(vec![3; n], ConflictGraph::new(n), 2, ProblemMode::Fasea)
    }

    fn arrival(n: usize, t: u64) -> UserArrival {
        let mut ctx =
            ContextMatrix::from_fn(n, 2, |v, j| (((v + j) as u64 + t) % 5) as f64 * 0.2 + 0.1);
        ctx.normalize_rows();
        UserArrival::new(2, ctx)
    }

    fn accepts(t: u64, a: &Arrangement) -> Vec<bool> {
        (0..a.len())
            .map(|i| !(t as usize + i).is_multiple_of(3))
            .collect()
    }

    fn digest(svc: &ArrangementService) -> (Vec<u32>, u64, Vec<u8>) {
        (
            svc.remaining().to_vec(),
            svc.rounds_completed(),
            svc.policy().save_state(),
        )
    }

    #[test]
    fn depth_one_equals_sequential_and_never_prefetches() {
        let n = 8;
        let mut svc = ArrangementService::new(instance(n), Box::new(LinUcb::new(2, 1.0, 2.0)));
        let mut pipe = RoundPipeline::new(1);
        pipe.run(&mut svc, 20, |t| arrival(n, t), accepts, None)
            .unwrap();
        assert_eq!(pipe.stats().rounds, 20);
        assert_eq!(pipe.stats().prefetch_hits, 0);
        assert_eq!(pipe.stats().contexts_pregenerated, 0);

        let mut seq = ArrangementService::new(instance(n), Box::new(LinUcb::new(2, 1.0, 2.0)));
        for t in 0..20 {
            let a = seq.propose(&arrival(n, t)).unwrap();
            seq.feedback(&accepts(t, &a)).unwrap();
        }
        assert_eq!(digest(&svc), digest(&seq));
    }

    #[test]
    fn deep_pipeline_is_bit_equal_and_all_hits_even_with_rng() {
        // TS consumes RNG in score_into: the in-order prefetch must
        // reproduce the sequential draw stream exactly (every stash
        // hits, no draw happens twice).
        let n = 8;
        let mk = || -> Box<dyn fasea_bandit::Policy> {
            Box::new(ThompsonSampling::new(2, 1.0, 0.1, 0xA11CE))
        };
        let mut seq = ArrangementService::new(instance(n), mk());
        for t in 0..30 {
            let a = seq.propose(&arrival(n, t)).unwrap();
            seq.feedback(&accepts(t, &a)).unwrap();
        }
        for depth in [2usize, 4, 8] {
            let mut svc = ArrangementService::new(instance(n), mk());
            let mut pipe = RoundPipeline::new(depth);
            pipe.run(&mut svc, 30, |t| arrival(n, t), accepts, None)
                .unwrap();
            assert_eq!(digest(&svc), digest(&seq), "depth {depth}");
            // Every round after the first prefetches, and nothing
            // intervenes, so every stash hits.
            assert_eq!(pipe.stats().prefetch_hits, 29, "depth {depth}");
            assert_eq!(pipe.stats().prefetch_recomputes, 0, "depth {depth}");
            assert!(pipe.stats().contexts_pregenerated >= 29, "depth {depth}");
        }
    }

    #[test]
    fn churn_between_prefetch_and_propose_keeps_parity() {
        let n = 6;
        let churn = ChurnSchedule::generate(&[3; 6], 40, 4, 0x77);
        assert!(!churn.actions().is_empty());
        let mut seq = ArrangementService::new(instance(n), Box::new(LinUcb::new(2, 1.0, 2.0)));
        for t in 0..40 {
            for action in churn.actions_at(t) {
                seq.apply_lifecycle(action.event, action.capacity).unwrap();
            }
            let a = seq.propose(&arrival(n, t)).unwrap();
            seq.feedback(&accepts(t, &a)).unwrap();
        }
        let mut svc = ArrangementService::new(instance(n), Box::new(LinUcb::new(2, 1.0, 2.0)));
        let mut pipe = RoundPipeline::new(4);
        pipe.run(&mut svc, 40, |t| arrival(n, t), accepts, Some(&churn))
            .unwrap();
        assert_eq!(digest(&svc), digest(&seq));
        // Churn never touches the model, so the stashes still all hit.
        assert_eq!(pipe.stats().prefetch_recomputes, 0);
    }
}

//! Background snapshotter for the group-commit durable service.
//!
//! The synchronous snapshot path stops the round loop for the whole
//! write–rename–compact cycle. With group commit enabled, the service
//! instead *clones* its (small: `O(d²)` policy state plus capacities)
//! image under single-writer ownership and hands it to a [`Snapshotter`]
//! thread, which performs the slow parts off the critical path:
//!
//! 1. a [`sync_barrier`](fasea_store::GroupCommitWal::sync_barrier), so
//!    every record the snapshot covers is fsynced before the snapshot
//!    can make it compactable;
//! 2. the atomic temp-file + rename snapshot write;
//! 3. WAL rotation, the `SnapshotMarker` append and
//!    `compact_below(seq)` — all enqueued through the commit queue, so
//!    they are totally ordered with the actor's concurrent appends;
//! 4. pruning of old snapshots.
//!
//! A crash at any point is safe: before the rename the old snapshot is
//! intact and the WAL suffix replays; after the rename the new snapshot
//! is complete and compaction is merely repeated work. The snapshotter
//! publishes the seq of the newest completed snapshot
//! ([`Snapshotter::published_seq`]); its first storage error poisons it
//! (later requests are dropped) and is surfaced at
//! [`Snapshotter::close`].

use fasea_store::snapshot::prune_snapshots;
use fasea_store::{GroupCommitWal, Record, ServiceSnapshot, StoreError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Live snapshotter threads across the whole process — the serving
/// layer's drain test asserts this returns to zero after a graceful
/// shutdown, i.e. that closing the service joined its snapshotter.
static LIVE_SNAPSHOTTERS: AtomicUsize = AtomicUsize::new(0);

/// Number of [`Snapshotter`] threads currently alive in this process.
pub fn live_snapshotters() -> usize {
    LIVE_SNAPSHOTTERS.load(Ordering::SeqCst)
}

struct SnapShared {
    /// Seq of the newest snapshot fully written, rotated and compacted.
    published_seq: AtomicU64,
    /// First storage error; poisons the snapshotter.
    error: Mutex<Option<StoreError>>,
}

/// Handle to the background snapshot thread. Dropping it (or calling
/// [`close`](Snapshotter::close)) finishes queued snapshots and joins
/// the thread.
pub struct Snapshotter {
    tx: Option<Sender<ServiceSnapshot>>,
    worker: Option<JoinHandle<()>>,
    shared: Arc<SnapShared>,
}

impl std::fmt::Debug for Snapshotter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshotter")
            .field("published_seq", &self.published_seq())
            .finish()
    }
}

impl Snapshotter {
    /// Spawns the snapshot thread for the given group-commit log and
    /// snapshot directory, keeping `keep` snapshots after each prune.
    pub fn spawn(wal: Arc<GroupCommitWal>, dir: PathBuf, keep: usize) -> Self {
        let shared = Arc::new(SnapShared {
            published_seq: AtomicU64::new(0),
            error: Mutex::new(None),
        });
        let for_thread = Arc::clone(&shared);
        // Counted on the spawning side so the liveness counter is
        // already accurate when `spawn` returns.
        LIVE_SNAPSHOTTERS.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = mpsc::channel::<ServiceSnapshot>();
        let worker = std::thread::Builder::new()
            .name("fasea-snapshotter".into())
            .spawn(move || {
                struct LiveGuard;
                impl Drop for LiveGuard {
                    fn drop(&mut self) {
                        LIVE_SNAPSHOTTERS.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                let _live = LiveGuard;
                while let Ok(snap) = rx.recv() {
                    if for_thread
                        .error
                        .lock()
                        .expect("snapshotter poisoned")
                        .is_some()
                    {
                        // Poisoned: drop further requests; the WAL still
                        // holds everything, so nothing is lost.
                        continue;
                    }
                    let seq = snap.seq;
                    match run_snapshot(&wal, &dir, keep, snap) {
                        Ok(_) => {
                            for_thread.published_seq.store(seq, Ordering::Release);
                        }
                        Err(e) => {
                            *for_thread.error.lock().expect("snapshotter poisoned") = Some(e);
                        }
                    }
                }
            })
            .inspect_err(|_| {
                LIVE_SNAPSHOTTERS.fetch_sub(1, Ordering::SeqCst);
            })
            .expect("spawn snapshotter");
        Snapshotter {
            tx: Some(tx),
            worker: Some(worker),
            shared,
        }
    }

    /// Queues a snapshot image for background processing. Returns
    /// immediately; completion is visible via
    /// [`published_seq`](Snapshotter::published_seq).
    ///
    /// # Errors
    /// The snapshotter's poisoning error, if a previous snapshot failed.
    pub fn request(&self, snap: ServiceSnapshot) -> Result<(), StoreError> {
        if let Some(e) = self.error() {
            return Err(e);
        }
        self.tx
            .as_ref()
            .expect("snapshotter already closed")
            .send(snap)
            .expect("snapshotter thread gone");
        Ok(())
    }

    /// Seq of the newest fully completed snapshot (0 if none yet).
    pub fn published_seq(&self) -> u64 {
        self.shared.published_seq.load(Ordering::Acquire)
    }

    /// The snapshotter's poisoning error, if any snapshot failed.
    pub fn error(&self) -> Option<StoreError> {
        self.shared
            .error
            .lock()
            .expect("snapshotter poisoned")
            .clone()
    }

    /// Finishes queued snapshots, joins the thread, and reports the
    /// first error (if any). Called by the durable service's close.
    ///
    /// # Errors
    /// The snapshotter's poisoning error — queued-but-failed snapshots
    /// lose nothing (the WAL still covers them), but the caller should
    /// know compaction stalled.
    pub fn close(mut self) -> Result<(), StoreError> {
        self.join();
        match self.error() {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn join(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.worker.take() {
            h.join().expect("snapshotter panicked");
        }
    }
}

impl Drop for Snapshotter {
    fn drop(&mut self) {
        self.join();
    }
}

/// The full snapshot cycle, shared by the background thread and the
/// synchronous fallback: barrier-sync, write + rename, rotate, marker,
/// compact, prune.
pub(crate) fn run_snapshot(
    wal: &GroupCommitWal,
    dir: &Path,
    keep: usize,
    snap: ServiceSnapshot,
) -> Result<PathBuf, StoreError> {
    // Everything the snapshot covers must be durable before the
    // snapshot may exist (it makes those records compactable).
    wal.sync_barrier()?;
    let seq = snap.seq;
    let path = snap.write_atomic(dir)?;
    // Ordered through the commit queue — concurrent appends from the
    // round loop interleave safely before/after these.
    wal.rotate()?;
    wal.append(Record::SnapshotMarker { snapshot_seq: seq })?;
    wal.compact_below(seq)?;
    prune_snapshots(dir, keep.max(1))?;
    Ok(path)
}

//! Report output: CSV files and fixed-width ASCII tables.
//!
//! Output is deliberately hand-rolled (no serde): the experiment harness
//! only needs numeric series keyed by simple headers, and a transparent
//! writer keeps the workspace inside the sanctioned dependency set.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;

/// Incremental CSV writer.
#[derive(Debug)]
pub struct CsvWriter {
    out: BufWriter<File>,
    columns: usize,
}

impl CsvWriter {
    /// Creates the file (truncating) and writes the header row.
    ///
    /// # Errors
    /// Propagates I/O errors. Panics if `header` is empty.
    pub fn create(path: &Path, header: &[&str]) -> std::io::Result<Self> {
        assert!(!header.is_empty(), "CsvWriter: header must be non-empty");
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = BufWriter::new(File::create(path)?);
        writeln!(out, "{}", header.join(","))?;
        Ok(CsvWriter {
            out,
            columns: header.len(),
        })
    }

    /// Writes one row of raw (pre-formatted) fields.
    ///
    /// # Errors
    /// Propagates I/O errors. Panics on column-count mismatch or fields
    /// containing commas/newlines (numeric reports never need quoting).
    pub fn row(&mut self, fields: &[String]) -> std::io::Result<()> {
        assert_eq!(
            fields.len(),
            self.columns,
            "CsvWriter: column count mismatch"
        );
        assert!(
            fields.iter().all(|f| !f.contains(',') && !f.contains('\n')),
            "CsvWriter: fields must not need quoting"
        );
        writeln!(self.out, "{}", fields.join(","))
    }

    /// Flushes buffered rows to disk.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Convenience: writes a complete numeric table in one call. Each row is
/// formatted with 6 significant digits.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<f64>]) -> std::io::Result<()> {
    let mut w = CsvWriter::create(path, header)?;
    for row in rows {
        let fields: Vec<String> = row.iter().map(|x| format_number(*x)).collect();
        w.row(&fields)?;
    }
    w.finish()
}

/// Formats a number compactly: integers without decimals, otherwise six
/// significant digits.
pub fn format_number(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.6}")
    }
}

/// Fixed-width ASCII table builder for terminal reports (the printed
/// analogues of the paper's tables).
#[derive(Debug, Clone)]
pub struct AsciiTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// Starts a table with the given header.
    pub fn new(header: &[&str]) -> Self {
        AsciiTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, fields: Vec<String>) -> &mut Self {
        assert_eq!(
            fields.len(),
            self.header.len(),
            "AsciiTable: column mismatch"
        );
        self.rows.push(fields);
        self
    }

    /// Renders the table with column alignment and a separator rule.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, f) in row.iter().enumerate() {
                widths[i] = widths[i].max(f.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, fields: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", fields[i], width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// A parsed numeric CSV: header names plus row-major numeric data.
/// The counterpart of [`write_csv`], used by the result-verification
/// tooling to re-read experiment output.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvTable {
    /// Column names from the header row.
    pub header: Vec<String>,
    /// Numeric rows; non-numeric fields parse as NaN.
    pub rows: Vec<Vec<f64>>,
}

impl CsvTable {
    /// Reads and parses a CSV written by [`write_csv`] / [`CsvWriter`].
    ///
    /// # Errors
    /// I/O errors, an empty file, or rows with a different field count
    /// than the header.
    pub fn read(path: &Path) -> std::io::Result<CsvTable> {
        let content = std::fs::read_to_string(path)?;
        let mut lines = content.lines();
        let header: Vec<String> = lines
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty CSV"))?
            .split(',')
            .map(|s| s.to_string())
            .collect();
        let mut rows = Vec::new();
        for (i, line) in lines.enumerate() {
            let fields: Vec<f64> = line
                .split(',')
                .map(|f| f.trim().parse::<f64>().unwrap_or(f64::NAN))
                .collect();
            if fields.len() != header.len() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "row {} has {} fields, header has {}",
                        i + 2,
                        fields.len(),
                        header.len()
                    ),
                ));
            }
            rows.push(fields);
        }
        Ok(CsvTable { header, rows })
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.header.iter().position(|h| h == name)
    }

    /// Extracts a named column as a vector.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let i = self.column_index(name)?;
        Some(self.rows.iter().map(|r| r[i]).collect())
    }

    /// Last value of a named column.
    pub fn last(&self, name: &str) -> Option<f64> {
        let i = self.column_index(name)?;
        self.rows.last().map(|r| r[i])
    }

    /// Maximum value of a named column (ignoring NaN).
    pub fn max(&self, name: &str) -> Option<f64> {
        let col = self.column(name)?;
        col.iter()
            .copied()
            .filter(|x| !x.is_nan())
            .fold(None, |acc: Option<f64>, x| {
                Some(acc.map_or(x, |a| a.max(x)))
            })
    }
}

/// Renders one or more named series as a compact ASCII line chart —
/// enough to eyeball the *shape* of a paper figure (crossovers, sudden
/// drops) straight from the experiment log.
///
/// All series share the x grid implicitly (their indices) and the y
/// axis is min–max scaled over all series. Each series paints with its
/// own glyph; later series overpaint earlier ones on collisions.
pub fn ascii_chart(series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 3, "ascii_chart: too small");
    let finite: Vec<f64> = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .filter(|y| y.is_finite())
        .collect();
    if finite.is_empty() {
        return String::from("(no data)\n");
    }
    let y_min = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let y_max = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (y_max - y_min).max(f64::MIN_POSITIVE);
    const GLYPHS: [char; 8] = ['*', '+', 'x', 'o', '#', '@', '%', '&'];

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        if s.is_empty() {
            continue;
        }
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Indexing by computed (row, col) is the natural raster write;
        // an iterator form would obscure it.
        #[allow(clippy::needless_range_loop)]
        for col in 0..width {
            // Nearest sample for this column.
            let idx = if s.len() == 1 {
                0
            } else {
                (col * (s.len() - 1) + (width - 1) / 2) / (width - 1)
            };
            let y = s[idx.min(s.len() - 1)];
            if !y.is_finite() {
                continue;
            }
            let frac = (y - y_min) / span;
            let row = height - 1 - ((frac * (height - 1) as f64).round() as usize).min(height - 1);
            grid[row][col] = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{y_max:>12.4} ┐");
    for row in &grid {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{:>12} │{}", "", line);
    }
    let _ = writeln!(out, "{y_min:>12.4} ┘");
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", GLYPHS[i % GLYPHS.len()], name))
        .collect();
    let _ = writeln!(out, "{:>14}{}", "", legend.join("   "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("fasea_sim_test_csv");
        let path = dir.join("out.csv");
        write_csv(
            &path,
            &["t", "value"],
            &[vec![100.0, 0.5], vec![200.0, 0.75]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "t,value\n100,0.500000\n200,0.750000\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_writer_incremental() {
        let dir = std::env::temp_dir().join("fasea_sim_test_csv2");
        let path = dir.join("inc.csv");
        let mut w = CsvWriter::create(&path, &["a", "b"]).unwrap();
        w.row(&["x".into(), "1".into()]).unwrap();
        w.finish().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\nx,1\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn csv_checks_columns() {
        let dir = std::env::temp_dir().join("fasea_sim_test_csv3");
        let mut w = CsvWriter::create(&dir.join("x.csv"), &["a", "b"]).unwrap();
        let _ = w.row(&["only one".into()]);
    }

    #[test]
    fn format_number_styles() {
        assert_eq!(format_number(100.0), "100");
        assert_eq!(format_number(0.5), "0.500000");
        assert_eq!(format_number(-3.0), "-3");
    }

    #[test]
    fn csv_table_round_trip() {
        let dir = std::env::temp_dir().join("fasea_sim_test_csv_read");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["t", "UCB", "TS"],
            &[vec![100.0, 0.5, 0.2], vec![200.0, 0.7, 0.25]],
        )
        .unwrap();
        let table = CsvTable::read(&path).unwrap();
        assert_eq!(table.header, vec!["t", "UCB", "TS"]);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.column("UCB").unwrap(), vec![0.5, 0.7]);
        assert_eq!(table.last("TS"), Some(0.25));
        assert_eq!(table.max("t"), Some(200.0));
        assert!(table.column("missing").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_table_rejects_ragged_rows() {
        let dir = std::env::temp_dir().join("fasea_sim_test_csv_ragged");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "a,b\n1,2\n3\n").unwrap();
        assert!(CsvTable::read(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ascii_chart_renders_shapes() {
        let rising: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let falling: Vec<f64> = (0..50).map(|i| 49.0 - i as f64).collect();
        let s = ascii_chart(&[("up", &rising), ("down", &falling)], 40, 8);
        let lines: Vec<&str> = s.lines().collect();
        // Height rows + y_max + y_min + legend.
        assert_eq!(lines.len(), 8 + 3);
        assert!(lines[0].contains("49"));
        assert!(lines.last().unwrap().contains("* up"));
        assert!(lines.last().unwrap().contains("+ down"));
        // The rising series ends in the top row's right side, the
        // falling one starts there.
        assert!(lines[1].trim_end().ends_with('*'));
    }

    #[test]
    fn ascii_chart_flat_and_single_point() {
        let s = ascii_chart(&[("flat", &[5.0, 5.0, 5.0])], 12, 3);
        assert!(s.contains("5.0000"));
        let one = ascii_chart(&[("p", &[1.0])], 12, 3);
        assert!(one.contains("1.0000"));
        let empty = ascii_chart(&[("e", &[])], 12, 3);
        assert_eq!(empty, "(no data)\n");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn ascii_chart_rejects_tiny_canvas() {
        let _ = ascii_chart(&[("x", &[1.0])], 2, 1);
    }

    #[test]
    fn ascii_table_alignment() {
        let mut t = AsciiTable::new(&["Algorithm", "Time"]);
        t.row(vec!["UCB".into(), "0.0055".into()]);
        t.row(vec!["Random".into(), "8.4e-5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Algorithm"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned columns: all lines the same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }
}

//! Exhaustive small-model check of the [`ArrangementService`] protocol
//! state machine.
//!
//! The FASEA protocol (Definition 3) admits exactly one legal order:
//! propose, then feedback of matching length, strictly alternating.
//! This test enumerates *every* interleaving of
//! {propose, correct-length feedback, wrong-length feedback} up to a
//! fixed depth and checks each step against an independent mirror of
//! the protocol state: the exact `ServiceError` for illegal steps, and
//! that illegal steps leave `rounds_completed`, remaining capacities,
//! and the pending proposal untouched. A second section drives the
//! durable service through crash recovery with a proposal outstanding
//! and asserts the same discipline holds on the recovered pending
//! round.

use fasea_bandit::{LinUcb, Policy, RandomPolicy};
use fasea_core::{
    Arrangement, ConflictGraph, ContextMatrix, ProblemInstance, ProblemMode, UserArrival,
};
use fasea_sim::{ArrangementService, DurableArrangementService, DurableOptions, ServiceError};
use fasea_store::FsyncPolicy;

const NUM_EVENTS: usize = 4;
const DIM: usize = 2;
const DEPTH: usize = 6;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    /// A well-formed propose.
    Propose,
    /// Feedback whose length matches the pending arrangement (or 0 when
    /// nothing is pending — i.e. feedback-without-propose).
    FeedbackOk,
    /// Feedback whose length is pending-length + 1 (always wrong).
    FeedbackWrong,
}

const OPS: [Op; 3] = [Op::Propose, Op::FeedbackOk, Op::FeedbackWrong];

fn instance() -> ProblemInstance {
    ProblemInstance::new(
        vec![2; NUM_EVENTS],
        ConflictGraph::from_pairs(NUM_EVENTS, &[(0, 1)]),
        DIM,
        ProblemMode::Fasea,
    )
}

fn arrival(t: u64) -> UserArrival {
    let cells: Vec<f64> = (0..NUM_EVENTS * DIM)
        .map(|i| ((t as usize * NUM_EVENTS * DIM + i) % 7) as f64 / 7.0)
        .collect();
    UserArrival::new(2, ContextMatrix::from_rows(NUM_EVENTS, DIM, cells))
}

/// Independent mirror of the protocol state the service must maintain.
struct Mirror {
    rounds: u64,
    remaining: Vec<u32>,
    pending: Option<Arrangement>,
}

fn assert_feasible(arr: &Arrangement, remaining: &[u32], user_capacity: u32) {
    assert!(arr.len() <= user_capacity as usize, "over user capacity");
    let events = arr.events();
    for (i, &v) in events.iter().enumerate() {
        assert!(remaining[v.index()] > 0, "arranged a full event");
        assert!(
            !events[i + 1..].contains(&v),
            "duplicate event in arrangement"
        );
    }
    // The one conflict pair in the instance must never co-occur.
    let has = |idx: usize| events.iter().any(|v| v.index() == idx);
    assert!(!(has(0) && has(1)), "conflicting events arranged together");
}

/// Runs one op sequence against a fresh service, checking every step.
fn check_sequence(seq: &[Op], make_policy: &dyn Fn() -> Box<dyn Policy>) {
    let mut svc = ArrangementService::new(instance(), make_policy());
    let mut mirror = Mirror {
        rounds: 0,
        remaining: vec![2; NUM_EVENTS],
        pending: None,
    };
    for (step, &op) in seq.iter().enumerate() {
        let ctx = format!("seq {seq:?} step {step}");
        match op {
            Op::Propose => {
                let result = svc.propose(&arrival(mirror.rounds));
                match &mirror.pending {
                    Some(_) => assert!(
                        matches!(result, Err(ServiceError::FeedbackPending)),
                        "{ctx}: propose-on-pending must fail FeedbackPending, got {result:?}"
                    ),
                    None => {
                        let arr = result.unwrap_or_else(|e| panic!("{ctx}: legal propose: {e}"));
                        assert_feasible(&arr, &mirror.remaining, 2);
                        mirror.pending = Some(arr);
                    }
                }
            }
            Op::FeedbackOk => {
                let len = mirror.pending.as_ref().map_or(0, Arrangement::len);
                let accepts: Vec<bool> = (0..len).map(|i| i % 2 == 0).collect();
                let result = svc.feedback(&accepts);
                match mirror.pending.take() {
                    Some(arr) => {
                        let reward =
                            result.unwrap_or_else(|e| panic!("{ctx}: legal feedback: {e}"));
                        let want: u32 = accepts.iter().filter(|&&b| b).count() as u32;
                        assert_eq!(reward, want, "{ctx}: reward must count accepts");
                        for (i, &v) in arr.events().iter().enumerate() {
                            if accepts[i] {
                                mirror.remaining[v.index()] -= 1;
                            }
                        }
                        mirror.rounds += 1;
                    }
                    None => assert!(
                        matches!(result, Err(ServiceError::NoPendingProposal)),
                        "{ctx}: feedback-without-propose must fail NoPendingProposal, \
                         got {result:?}"
                    ),
                }
            }
            Op::FeedbackWrong => {
                let len = mirror.pending.as_ref().map_or(0, Arrangement::len);
                let accepts = vec![true; len + 1];
                let result = svc.feedback(&accepts);
                match &mirror.pending {
                    Some(_) => assert!(
                        matches!(
                            result,
                            Err(ServiceError::FeedbackLengthMismatch { expected, got })
                                if expected == len && got == len + 1
                        ),
                        "{ctx}: wrong-length feedback must report the exact lengths, \
                         got {result:?}"
                    ),
                    None => assert!(
                        matches!(result, Err(ServiceError::NoPendingProposal)),
                        "{ctx}: feedback-without-propose must fail NoPendingProposal, \
                         got {result:?}"
                    ),
                }
            }
        }
        // Whatever happened, the observable state must match the mirror.
        assert_eq!(svc.rounds_completed(), mirror.rounds, "{ctx}: rounds");
        assert_eq!(svc.remaining(), &mirror.remaining[..], "{ctx}: capacities");
        assert_eq!(
            svc.has_pending(),
            mirror.pending.is_some(),
            "{ctx}: pending flag"
        );
        if let (Some((pending, _)), Some(want)) = (svc.pending(), mirror.pending.as_ref()) {
            assert_eq!(pending, want, "{ctx}: pending arrangement identity");
        }
    }
}

#[test]
fn every_interleaving_up_to_depth() {
    type PolicyFactory = Box<dyn Fn() -> Box<dyn Policy>>;
    let policies: [(&str, PolicyFactory); 2] = [
        ("ucb", Box::new(|| Box::new(LinUcb::new(DIM, 1.0, 2.0)))),
        ("random", Box::new(|| Box::new(RandomPolicy::new(11)))),
    ];
    for (_, make_policy) in &policies {
        let mut seq = vec![Op::Propose; DEPTH];
        let total = OPS.len().pow(DEPTH as u32);
        for code in 0..total {
            let mut c = code;
            for slot in seq.iter_mut() {
                *slot = OPS[c % OPS.len()];
                c /= OPS.len();
            }
            check_sequence(&seq, make_policy.as_ref());
        }
    }
}

/// Crash with a proposal outstanding, recover, and check that the
/// recovered pending round enforces the same protocol discipline.
#[test]
fn feedback_discipline_after_recovery_pending() {
    let dir =
        std::env::temp_dir().join(format!("fasea-protocol-invariants-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let options = DurableOptions::new().with_fsync(FsyncPolicy::Always);
    let make_policy = || -> Box<dyn Policy> { Box::new(LinUcb::new(DIM, 1.0, 2.0)) };

    let arr_len = {
        let mut svc =
            DurableArrangementService::open(&dir, instance(), make_policy(), options).unwrap();
        // One full round, then a proposal left hanging ("crash": drop
        // without close; the WAL already holds both records).
        let first = svc.propose(&arrival(0)).unwrap();
        svc.feedback(&vec![true; first.len()]).unwrap();
        svc.propose(&arrival(1)).unwrap().len()
    };

    let mut svc =
        DurableArrangementService::open(&dir, instance(), make_policy(), options).unwrap();
    assert_eq!(svc.rounds_completed(), 1, "completed round must survive");
    assert!(svc.has_pending(), "outstanding proposal must be recovered");
    assert_eq!(svc.pending_arrangement().unwrap().len(), arr_len);

    // Propose on the recovered pending round: refused, state unchanged.
    let result = svc.propose(&arrival(1));
    assert!(matches!(result, Err(ServiceError::FeedbackPending)));
    assert_eq!(svc.rounds_completed(), 1);
    assert!(svc.has_pending());

    // Wrong-length feedback: exact error, pending preserved.
    let result = svc.feedback(&vec![true; arr_len + 1]);
    assert!(matches!(
        result,
        Err(ServiceError::FeedbackLengthMismatch { expected, got })
            if expected == arr_len && got == arr_len + 1
    ));
    assert_eq!(svc.rounds_completed(), 1);
    assert!(svc.has_pending());

    // Correct feedback completes the recovered round.
    svc.feedback(&vec![true; arr_len]).unwrap();
    assert_eq!(svc.rounds_completed(), 2);
    assert!(!svc.has_pending());

    // And feedback-without-propose is refused again afterwards.
    assert!(matches!(
        svc.feedback(&[]),
        Err(ServiceError::NoPendingProposal)
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

//! The coordinator-side [`Arranger`]: fans Oracle-Greedy's top-k
//! ranking out over the shard actors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use fasea_bandit::{Arranger, Oracle, OracleWorkspace, SelectionView};
use fasea_core::Arrangement;

use crate::actor::{Reply, Request, ShardChannel};

/// Shard timing samples for the serve metrics layer: the most recent
/// route (candidate fan-out) and cross-shard commit durations, in
/// microseconds, `u64::MAX` meaning "no sample since last drain".
#[derive(Debug, Default)]
pub(crate) struct ShardTimings {
    route_us: AtomicU64,
    commit_us: AtomicU64,
}

const NO_SAMPLE: u64 = u64::MAX;

impl ShardTimings {
    pub(crate) fn new() -> Self {
        ShardTimings {
            route_us: AtomicU64::new(NO_SAMPLE),
            commit_us: AtomicU64::new(NO_SAMPLE),
        }
    }

    fn as_us(d: Duration) -> u64 {
        (d.as_micros() as u64).min(NO_SAMPLE - 1)
    }

    pub(crate) fn record_route(&self, d: Duration) {
        self.route_us.store(Self::as_us(d), Ordering::Relaxed);
    }

    pub(crate) fn record_commit(&self, d: Duration) {
        self.commit_us.store(Self::as_us(d), Ordering::Relaxed);
    }

    pub(crate) fn take_route_us(&self) -> Option<u64> {
        match self.route_us.swap(NO_SAMPLE, Ordering::Relaxed) {
            NO_SAMPLE => None,
            v => Some(v),
        }
    }

    pub(crate) fn take_commit_us(&self) -> Option<u64> {
        match self.commit_us.swap(NO_SAMPLE, Ordering::Relaxed) {
            NO_SAMPLE => None,
            v => Some(v),
        }
    }
}

/// Implements [`Arranger`] by staging the round's score vector where
/// the shard actors can read it, then running the configured
/// [`Oracle`]'s `arrange_gathered` with a gather callback that fans
/// `TopK{k}` out to every shard and concatenates the answers.
///
/// Installed in the coordinator policy's workspace, so the policy's
/// scoring pass and every RNG draw happen exactly once on the
/// coordinator thread — the shards only ever *rank* finished scores,
/// which is why the sharded run is byte-identical to the single-actor
/// run (see the merge-equals-serial argument on
/// [`fasea_bandit::GreedyOracle`]'s gathered path).
pub(crate) struct ShardRouter {
    channels: Arc<Vec<ShardChannel>>,
    staging: Arc<RwLock<Vec<f64>>>,
    timings: Arc<ShardTimings>,
    oracle: Arc<dyn Oracle>,
}

impl ShardRouter {
    pub(crate) fn new(
        channels: Arc<Vec<ShardChannel>>,
        staging: Arc<RwLock<Vec<f64>>>,
        timings: Arc<ShardTimings>,
        oracle: Arc<dyn Oracle>,
    ) -> Self {
        ShardRouter {
            channels,
            staging,
            timings,
            oracle,
        }
    }
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.channels.len())
            .finish()
    }
}

impl Arranger for ShardRouter {
    fn arrange(
        &self,
        scores: &[f64],
        view: &SelectionView<'_>,
        ws: &mut OracleWorkspace,
        out: &mut Arrangement,
    ) {
        let started = Instant::now();
        {
            let mut staged = self.staging.write().expect("score staging poisoned");
            staged.clear();
            staged.extend_from_slice(scores);
        }
        self.oracle.arrange_gathered(
            scores,
            view.conflicts,
            view.remaining,
            view.user_capacity,
            ws,
            out,
            &mut |k, order| {
                for ch in self.channels.iter() {
                    ch.send(Request::TopK { k });
                }
                for ch in self.channels.iter() {
                    ch.sample_depth();
                }
                for ch in self.channels.iter() {
                    match ch.recv() {
                        Reply::TopK(candidates) => order.extend_from_slice(&candidates),
                        other => panic!("shard answered TopK with {other:?}"),
                    }
                }
            },
        );
        self.timings.record_route(started.elapsed());
    }
}

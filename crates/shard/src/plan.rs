//! Deterministic component-preserving event partition.

use fasea_core::ConflictGraph;

/// The partition of the event universe into `num_shards` shards.
///
/// Built from nothing but the conflict graph and the shard count, so
/// every process that knows the instance derives the *same* plan — the
/// first leg of the sharded determinism argument (the second is the
/// fixed ascending-shard commit order in the coordinator).
///
/// Rules, in order:
///
/// 1. **Components stay intact.** A conflict-graph component is the
///    unit of capacity contention; keeping it on one shard means a
///    shard's top-k pass never needs another shard's adjacency rows.
/// 2. Components are taken in ascending order of their smallest event
///    id (the order [`ConflictGraph::components`] yields).
/// 3. Each component goes to the shard currently holding the fewest
///    events; ties break to the lowest shard index.
///
/// Shards may end up empty (more shards than components — e.g. a
/// complete conflict graph has one component); an empty shard simply
/// answers empty top-k queries and never joins a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shard_of: Vec<u32>,
    members: Vec<Vec<u32>>,
}

impl ShardPlan {
    /// Builds the plan for `conflicts` over `num_shards` shards.
    ///
    /// # Panics
    /// Panics if `num_shards == 0`.
    pub fn build(conflicts: &ConflictGraph, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "ShardPlan: at least one shard");
        let mut shard_of = vec![0u32; conflicts.num_events()];
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
        for comp in conflicts.components() {
            let lightest = (0..num_shards)
                .min_by_key(|&s| (members[s].len(), s))
                .expect("num_shards >= 1");
            for &v in &comp {
                shard_of[v] = lightest as u32;
                members[lightest].push(v as u32);
            }
        }
        // Components arrive ordered by smallest member, but a shard can
        // receive later components with smaller ids than nothing — keep
        // each member list sorted so binary search and ascending
        // write-set encoding hold by construction.
        for m in &mut members {
            m.sort_unstable();
        }
        ShardPlan { shard_of, members }
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.members.len()
    }

    /// Number of events across all shards.
    pub fn num_events(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard owning event `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn shard_of(&self, v: u32) -> usize {
        self.shard_of[v as usize] as usize
    }

    /// The event ids owned by shard `s`, ascending.
    pub fn members(&self, s: usize) -> &[u32] {
        &self.members[s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_partitions_and_keeps_components_intact() {
        // Components {0,3,65}, {10,11}, singletons elsewhere.
        let g = ConflictGraph::from_pairs(70, &[(0, 65), (65, 3), (10, 11)]);
        for shards in [1usize, 2, 3, 4, 7] {
            let plan = ShardPlan::build(&g, shards);
            assert_eq!(plan.num_shards(), shards);
            // Partition: every event on exactly one shard, members
            // agree with shard_of, lists ascending.
            let mut all = Vec::new();
            for s in 0..shards {
                for &v in plan.members(s) {
                    assert_eq!(plan.shard_of(v), s);
                    all.push(v);
                }
                assert!(plan.members(s).windows(2).all(|w| w[0] < w[1]));
            }
            all.sort_unstable();
            assert_eq!(all, (0..70u32).collect::<Vec<_>>());
            // Components intact.
            assert_eq!(plan.shard_of(0), plan.shard_of(3));
            assert_eq!(plan.shard_of(0), plan.shard_of(65));
            assert_eq!(plan.shard_of(10), plan.shard_of(11));
        }
    }

    #[test]
    fn plan_is_a_pure_function_of_graph_and_count() {
        let g = ConflictGraph::from_pairs(40, &[(1, 2), (5, 9), (30, 31)]);
        assert_eq!(ShardPlan::build(&g, 4), ShardPlan::build(&g, 4));
    }

    #[test]
    fn plan_balances_by_event_count() {
        // 64 singletons over 4 shards: a perfect 16/16/16/16 split.
        let g = ConflictGraph::new(64);
        let plan = ShardPlan::build(&g, 4);
        for s in 0..4 {
            assert_eq!(plan.members(s).len(), 16);
        }
    }

    #[test]
    fn complete_graph_leaves_extra_shards_empty() {
        let g = ConflictGraph::complete(6);
        let plan = ShardPlan::build(&g, 3);
        assert_eq!(plan.members(0).len(), 6);
        assert!(plan.members(1).is_empty());
        assert!(plan.members(2).is_empty());
    }
}

//! # fasea-shard
//!
//! Sharded event universe with deterministic cross-shard commit.
//!
//! Partitions the event set into N shards — keeping conflict-graph
//! components intact ([`ShardPlan`]) — and runs one single-writer
//! actor per shard, each owning the authoritative capacity counters of
//! its members plus its own [`fasea_store::GroupCommitWal`] transaction
//! log. A coordinator (the unchanged
//! [`fasea_sim::DurableArrangementService`]) keeps the policy, the
//! round WAL and the snapshots; two operations cross the boundary:
//!
//! * **Routing** — the configured [`fasea_bandit::Oracle`]'s candidate
//!   ranking fans out as per-shard `subset_top_k` queries and merges
//!   under the oracle's own comparator, which provably reproduces the
//!   serial candidate order (see
//!   [`fasea_bandit::Oracle::arrange_gathered`]).
//! * **Commit** — accepted events become per-shard write sets committed
//!   with a two-phase protocol: durable `TxnPrepare` on every involved
//!   shard *before* the coordinator's `Feedback` record (the commit
//!   decision), then a `TxnCommit` fan-out whose durability may lag
//!   because it is re-derivable. Recovery replays every shard log,
//!   resolves in-doubt prepares against the coordinator's round
//!   counter, and repairs counter drift against the capacity mirror.
//!
//! The headline property is **determinism**: an N-shard
//! [`ShardedArrangementService`] run is byte-identical — arrangements,
//! rewards, capacity counters, and the policy's RNG state — to the
//! single-actor [`fasea_sim::DurableArrangementService`] run, because
//! scoring and every RNG draw stay on the coordinator and the shards
//! only rank finished scores.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod actor;
mod plan;
mod router;
mod service;

pub use actor::shard_fingerprint;
pub use plan::ShardPlan;
pub use service::ShardedArrangementService;

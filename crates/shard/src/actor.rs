//! Shard-local state, the per-shard transaction log, and the shard
//! service actor.
//!
//! Each shard owns the capacity counters of its member events, a
//! [`GroupCommitWal`] (with its dedicated syncer thread) holding only
//! transaction records, and a long-lived actor thread that serves the
//! coordinator's requests: top-k candidate queries during `propose`,
//! and the prepare/commit/abort legs of the cross-shard capacity
//! transaction during `feedback`.
//!
//! ## Two-phase transaction state machine
//!
//! A shard's log is a sequence of [`Record::TxnPrepare`] /
//! [`Record::TxnCommit`] / [`Record::TxnAbort`] records; the shard's
//! in-memory state is exactly the fold of that sequence:
//!
//! * `Prepare{txn, decs}` — the write set is staged in the prepared
//!   map. The record is made **durable before acking** (the ack is what
//!   licenses the coordinator to commit), so a committed transaction's
//!   write set can never be lost: the commit record always sits after
//!   its durable prepare in the same log.
//! * `Commit{txn}` — the staged write set is applied to the capacity
//!   counters and unstaged; for normal (non-repair) ids the
//!   `committed_below` watermark advances, which is what makes
//!   re-delivered prepares/commits of already-committed rounds no-ops.
//! * `Abort{txn}` — the staged write set is dropped.
//!
//! A prepare with no later commit or abort is **in-doubt**; the
//! coordinator resolves it on recovery from its own round log
//! ([`ShardState::resolve_in_doubt`]) and then repairs any decrements a
//! torn shard log lost outright ([`ShardState::reconcile`]).
//!
//! Shard logs are never compacted in this version — they hold two tiny
//! records per involved round, and replay is a linear fold. (The
//! coordinator's round log keeps its usual snapshot + compaction
//! machinery.)

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use fasea_bandit::subset_top_k;
use fasea_store::{FsyncPolicy, GroupCommitWal, Record, StoreError, Wal, WalOptions};

/// High bit marking a *repair* transaction id. Repair transactions
/// (written by [`ShardState::reconcile`] to re-apply decrements a torn
/// shard log lost) must never collide with round ids, and must not
/// advance the `committed_below` idempotence watermark — a repair for
/// recovery at round `t` says nothing about round `t` having committed.
pub(crate) const REPAIR_BIT: u64 = 1 << 63;

/// A request from the coordinator to one shard actor.
#[derive(Debug)]
pub(crate) enum Request {
    /// Append the shard's top-`k` candidates (by the oracle's total
    /// order) for the staged score vector.
    TopK {
        /// Ranking prefix size.
        k: usize,
    },
    /// Phase 1: stage + durably log this write set.
    Prepare {
        /// Transaction id (round index, or repair id).
        txn: u64,
        /// `(event, decrement)` pairs, ascending by event.
        decs: Vec<(u32, u32)>,
    },
    /// Phase 2: apply the staged write set.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// Phase 2 alternative: drop the staged write set.
    Abort {
        /// Transaction id.
        txn: u64,
    },
    /// Event lifecycle re-plan: durably log and install a new remaining
    /// capacity for a member event (set-capacity semantics, already
    /// clamped by the coordinator).
    Lifecycle {
        /// Coordinator round counter when the re-plan was decided.
        t: u64,
        /// Member event id.
        event: u32,
        /// New remaining capacity.
        capacity: u32,
    },
    /// The shard's `(event, remaining)` pairs (diagnostics/tests).
    Remaining,
    /// Barrier: everything appended so far is durable on return.
    Sync,
    /// Close the shard log and exit the actor thread.
    Close,
}

/// A shard actor's answer.
#[derive(Debug)]
pub(crate) enum Reply {
    /// Top-k candidate ids, best-first.
    TopK(Vec<u32>),
    /// Outcome of a log-touching request.
    Done(Result<(), StoreError>),
    /// `(event, remaining)` pairs, ascending by event.
    Remaining(Vec<(u32, u32)>),
}

/// Mixes the coordinator's service fingerprint with the shard index so
/// a shard log can never be replayed into the wrong shard (or the
/// coordinator log into a shard). Same FNV-1a step as
/// `service_fingerprint`.
pub fn shard_fingerprint(service_fingerprint: u64, shard: usize) -> u64 {
    let mut h = service_fingerprint ^ 0x5A4D_u64;
    for b in (shard as u64).to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One shard's recovered, mutable state: member capacity counters, the
/// transaction log, and the two-phase bookkeeping. Lives on the
/// coordinator thread during open/resolve/reconcile, then moves into
/// the actor thread.
pub(crate) struct ShardState {
    /// Event ids this shard owns, ascending.
    members: Vec<u32>,
    /// Remaining capacity per member (parallel to `members`).
    remaining: Vec<u32>,
    wal: Option<GroupCommitWal>,
    /// Staged (prepared, undecided) write sets by transaction id.
    prepared: BTreeMap<u64, Vec<(u32, u32)>>,
    /// One past the highest *committed* normal transaction id: a
    /// prepare or commit for `txn < committed_below` is a re-delivered
    /// duplicate and acks as a no-op.
    committed_below: u64,
}

impl ShardState {
    /// Opens (or creates) the shard log at `dir` and folds it back into
    /// the shard state. `capacities` is the full instance capacity
    /// vector; only member entries are read.
    pub(crate) fn open(
        dir: &Path,
        fingerprint: u64,
        members: Vec<u32>,
        capacities: &[u32],
        segment_bytes: u64,
        fsync: FsyncPolicy,
    ) -> Result<ShardState, StoreError> {
        let (wal, recovered) = Wal::open(
            dir,
            fingerprint,
            WalOptions {
                segment_bytes,
                fsync,
            },
        )?;
        let remaining = members.iter().map(|&v| capacities[v as usize]).collect();
        let mut state = ShardState {
            members,
            remaining,
            wal: Some(GroupCommitWal::spawn(wal)),
            prepared: BTreeMap::new(),
            committed_below: 0,
        };
        for (seq, record) in &recovered.records {
            state.fold(*seq, record)?;
        }
        Ok(state)
    }

    /// Applies one logged record to the state (replay path). The live
    /// paths append first and then route through this same fold, so
    /// recovery is the identical state machine.
    fn fold(&mut self, seq: u64, record: &Record) -> Result<(), StoreError> {
        match record {
            Record::TxnPrepare { txn, decs } => {
                self.check_members(seq, decs)?;
                self.prepared.insert(*txn, decs.clone());
            }
            Record::TxnCommit { txn } => {
                if let Some(decs) = self.prepared.remove(txn) {
                    self.apply(&decs);
                }
                if txn & REPAIR_BIT == 0 {
                    self.committed_below = self.committed_below.max(txn + 1);
                }
            }
            Record::TxnAbort { txn } => {
                self.prepared.remove(txn);
            }
            Record::Lifecycle {
                event, capacity, ..
            } => {
                let i =
                    self.members
                        .binary_search(event)
                        .map_err(|_| StoreError::CorruptRecord {
                            seq: Some(seq),
                            what: "lifecycle record names an event this shard does not own",
                        })?;
                self.remaining[i] = *capacity;
            }
            _ => {
                return Err(StoreError::CorruptRecord {
                    seq: Some(seq),
                    what: "non-transaction record in a shard log",
                })
            }
        }
        Ok(())
    }

    fn check_members(&self, seq: u64, decs: &[(u32, u32)]) -> Result<(), StoreError> {
        for (event, _) in decs {
            if self.members.binary_search(event).is_err() {
                return Err(StoreError::CorruptRecord {
                    seq: Some(seq),
                    what: "prepare write set names an event this shard does not own",
                });
            }
        }
        Ok(())
    }

    fn apply(&mut self, decs: &[(u32, u32)]) {
        for &(event, dec) in decs {
            let i = self
                .members
                .binary_search(&event)
                .expect("write set checked against members at prepare");
            self.remaining[i] = self.remaining[i].saturating_sub(dec);
        }
    }

    fn wal(&self) -> &GroupCommitWal {
        self.wal.as_ref().expect("shard log open")
    }

    /// Phase 1. Durable before the `Ok` ack; a re-delivered prepare for
    /// an already-committed round is a no-op ack.
    pub(crate) fn prepare(&mut self, txn: u64, decs: Vec<(u32, u32)>) -> Result<(), StoreError> {
        if txn & REPAIR_BIT == 0 && txn < self.committed_below {
            return Ok(());
        }
        self.check_members(self.wal().next_lsn(), &decs)?;
        let record = Record::TxnPrepare {
            txn,
            decs: decs.clone(),
        };
        let seq = self.wal().append(record)?;
        self.wal().wait_durable(seq)?;
        self.prepared.insert(txn, decs);
        Ok(())
    }

    /// Phase 2 commit. The commit record's durability may lag (it can
    /// be re-derived from the coordinator log), so this does not wait
    /// for the syncer.
    pub(crate) fn commit(&mut self, txn: u64) -> Result<(), StoreError> {
        if !self.prepared.contains_key(&txn) {
            // Re-delivered commit of an already-committed round.
            return Ok(());
        }
        let seq = self.wal().append(Record::TxnCommit { txn })?;
        self.fold(seq, &Record::TxnCommit { txn })
    }

    /// Lifecycle re-plan for a member event. Durable before the `Ok`
    /// ack — the coordinator's own `Lifecycle` record is already on
    /// disk by the time this runs, and replaying either log reproduces
    /// the same counter (set-capacity records are idempotent).
    ///
    /// Like [`ShardState::prepare`], a re-plan decided at a round this
    /// shard has already committed past is a re-delivered duplicate
    /// (the coordinator is re-running history after losing log tail)
    /// and acks as a no-op — applying it would clobber the decrements
    /// of the later rounds, which no-op on their own re-delivery.
    pub(crate) fn lifecycle(
        &mut self,
        t: u64,
        event: u32,
        capacity: u32,
    ) -> Result<(), StoreError> {
        if t < self.committed_below {
            return Ok(());
        }
        if self.members.binary_search(&event).is_err() {
            return Err(StoreError::CorruptRecord {
                seq: Some(self.wal().next_lsn()),
                what: "lifecycle record names an event this shard does not own",
            });
        }
        let record = Record::Lifecycle { t, event, capacity };
        let seq = self.wal().append(record.clone())?;
        self.wal().wait_durable(seq)?;
        self.fold(seq, &record)
    }

    /// Phase 2 abort.
    pub(crate) fn abort(&mut self, txn: u64) -> Result<(), StoreError> {
        if !self.prepared.contains_key(&txn) {
            return Ok(());
        }
        let seq = self.wal().append(Record::TxnAbort { txn })?;
        self.fold(seq, &Record::TxnAbort { txn })
    }

    /// Resolves every in-doubt (prepared, undecided) transaction from
    /// the coordinator's recovered round counter: round `txn` committed
    /// iff the coordinator completed it (`txn < rounds_completed` —
    /// its `Feedback` record, the commit decision, is durable). An
    /// in-doubt *repair* transaction is always aborted: the
    /// reconciliation that wrote it re-runs right after this and
    /// recomputes the diff from scratch.
    pub(crate) fn resolve_in_doubt(&mut self, rounds_completed: u64) -> Result<(), StoreError> {
        let in_doubt: Vec<u64> = self.prepared.keys().copied().collect();
        for txn in in_doubt {
            if txn & REPAIR_BIT == 0 && txn < rounds_completed {
                self.commit(txn)?;
            } else {
                self.abort(txn)?;
            }
        }
        self.wal().sync_barrier()
    }

    /// Brings the shard's counters back in line with the coordinator's
    /// capacity mirror after in-doubt resolution.
    ///
    /// The committed watermark decides who is authoritative. If the
    /// shard committed a round whose `Feedback` record the coordinator
    /// lost (`committed_below > rounds_completed`), the shard is
    /// **ahead**: its counters embed decrements — and lifecycle
    /// re-plans, which fan out in the same order — from rounds the
    /// coordinator is about to re-run, so its counters may sit on
    /// either side of the stale mirror. Write nothing: the coordinator
    /// re-proposes identically (determinism), and the re-delivered
    /// prepares/commits/lifecycles all no-op against `committed_below`
    /// while the mirror catches up.
    ///
    /// Otherwise everything the shard's log holds belongs to rounds the
    /// coordinator already completed, so any divergence from the mirror
    /// is durably-acked work a torn shard log lost:
    ///
    /// * counter **above** the mirror — lost decrements; write one
    ///   repair transaction (prepare + commit, [`REPAIR_BIT`]-tagged
    ///   id) re-applying them, so the log stays the full history of
    ///   every counter change;
    /// * counter **below** the mirror — a lost lifecycle *raise*; write
    ///   a repair `Lifecycle` record lifting the counter back to the
    ///   mirror.
    pub(crate) fn reconcile(
        &mut self,
        mirror: &[u32],
        rounds_completed: u64,
    ) -> Result<(), StoreError> {
        if self.committed_below > rounds_completed {
            return Ok(());
        }
        let mut decs = Vec::new();
        let mut raises = Vec::new();
        for (i, &event) in self.members.iter().enumerate() {
            let expected = mirror[event as usize];
            if self.remaining[i] > expected {
                decs.push((event, self.remaining[i] - expected));
            } else if self.remaining[i] < expected {
                raises.push((event, expected));
            }
        }
        if decs.is_empty() && raises.is_empty() {
            return Ok(());
        }
        for (event, capacity) in raises {
            self.lifecycle(rounds_completed, event, capacity)?;
        }
        if !decs.is_empty() {
            let txn = REPAIR_BIT | rounds_completed;
            self.prepare(txn, decs)?;
            self.commit(txn)?;
        }
        self.wal().sync_barrier()
    }

    pub(crate) fn remaining_pairs(&self) -> Vec<(u32, u32)> {
        self.members
            .iter()
            .copied()
            .zip(self.remaining.iter().copied())
            .collect()
    }

    fn close(&mut self) -> Result<(), StoreError> {
        let wal = self.wal.take().expect("shard log open");
        let mut wal = wal.close()?;
        wal.sync()
    }
}

/// The coordinator's handle to one shard actor: the request sender, the
/// reply receiver (mutex-wrapped — replies are only read while holding
/// the coordinator's fan-out, never concurrently), and the live queue
/// depth.
pub(crate) struct ShardChannel {
    tx: Sender<Request>,
    rx: Mutex<Receiver<Reply>>,
    depth: Arc<AtomicU64>,
    /// Peak queue depth observed at fan-out since last drained by the
    /// metrics layer ([`u64::MAX`] = no sample).
    sampled_depth: AtomicU64,
}

impl ShardChannel {
    /// Moves `state` into a new actor thread and returns the channel
    /// plus the join handle.
    pub(crate) fn spawn(
        state: ShardState,
        shard: usize,
        staging: Arc<RwLock<Vec<f64>>>,
    ) -> (ShardChannel, JoinHandle<()>) {
        let (tx, req_rx) = channel::<Request>();
        let (reply_tx, rx) = channel::<Reply>();
        let depth = Arc::new(AtomicU64::new(0));
        let actor_depth = Arc::clone(&depth);
        let join = std::thread::Builder::new()
            .name(format!("fasea-shard-{shard}"))
            .spawn(move || run_actor(state, req_rx, reply_tx, staging, actor_depth))
            .expect("spawn shard actor");
        (
            ShardChannel {
                tx,
                rx: Mutex::new(rx),
                depth,
                sampled_depth: AtomicU64::new(u64::MAX),
            },
            join,
        )
    }

    /// Enqueues a request. Panics if the actor thread is gone — that
    /// only happens after `Close` or an actor panic, both of which end
    /// the service.
    pub(crate) fn send(&self, req: Request) {
        self.depth.fetch_add(1, Ordering::AcqRel);
        self.tx.send(req).expect("shard actor disconnected");
    }

    /// Receives the next reply (requests and replies are strictly
    /// paired per shard, so fan-out is send-all-then-recv-all).
    pub(crate) fn recv(&self) -> Reply {
        self.rx
            .lock()
            .expect("shard reply receiver poisoned")
            .recv()
            .expect("shard actor disconnected")
    }

    /// Folds the current queue depth into the peak sample.
    pub(crate) fn sample_depth(&self) {
        let now = self.depth.load(Ordering::Acquire);
        let prev = self.sampled_depth.load(Ordering::Relaxed);
        if prev == u64::MAX || now > prev {
            self.sampled_depth.store(now, Ordering::Relaxed);
        }
    }

    /// Drains the peak queue-depth sample (`None` if nothing was
    /// sampled since the last drain).
    pub(crate) fn take_sampled_depth(&self) -> Option<u64> {
        match self.sampled_depth.swap(u64::MAX, Ordering::Relaxed) {
            u64::MAX => None,
            d => Some(d),
        }
    }
}

fn run_actor(
    mut state: ShardState,
    rx: Receiver<Request>,
    reply: Sender<Reply>,
    staging: Arc<RwLock<Vec<f64>>>,
    depth: Arc<AtomicU64>,
) {
    let mut scratch = Vec::new();
    while let Ok(req) = rx.recv() {
        let done = matches!(req, Request::Close);
        let out = match req {
            Request::TopK { k } => {
                let scores = staging.read().expect("score staging poisoned");
                subset_top_k(&scores, &state.members, k, &mut scratch);
                Reply::TopK(scratch.clone())
            }
            Request::Prepare { txn, decs } => Reply::Done(state.prepare(txn, decs)),
            Request::Commit { txn } => Reply::Done(state.commit(txn)),
            Request::Abort { txn } => Reply::Done(state.abort(txn)),
            Request::Lifecycle { t, event, capacity } => {
                Reply::Done(state.lifecycle(t, event, capacity))
            }
            Request::Remaining => Reply::Remaining(state.remaining_pairs()),
            Request::Sync => Reply::Done(state.wal().sync_barrier()),
            Request::Close => Reply::Done(state.close()),
        };
        depth.fetch_sub(1, Ordering::AcqRel);
        if reply.send(out).is_err() || done {
            return;
        }
    }
    // Request channel dropped without Close: the coordinator was
    // dropped crash-style. The GroupCommitWal's own drop drains its
    // queue, so nothing appended is lost.
}

//! The sharded coordinator: a [`DurableArrangementService`] front whose
//! ranking fans out over shard actors and whose feedback commits
//! cross-shard capacity decrements with a two-phase protocol.

use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use fasea_bandit::{Arranger, Policy};
use fasea_core::{Arrangement, ProblemInstance, UserArrival};
use fasea_sim::{
    ArrangementService, DurableArrangementService, DurableOptions, ServiceError, ServiceHealth,
};
use fasea_store::{CommitNotifier, CommitObserver};

use crate::actor::{shard_fingerprint, Reply, Request, ShardChannel, ShardState};
use crate::plan::ShardPlan;
use crate::router::{ShardRouter, ShardTimings};

/// A [`DurableArrangementService`] partitioned over N shard actors,
/// with the identical surface and — by construction — the identical
/// byte-for-byte behaviour.
///
/// Layout under `dir`:
///
/// ```text
/// dir/coordinator/   the inner durable service: round WAL + snapshots
/// dir/shard-000/     shard 0's transaction log
/// dir/shard-001/     …
/// ```
///
/// The **coordinator** owns everything decision-making: the policy
/// (scores and RNG), the capacity mirror the oracle reads, the round
/// WAL and snapshots. The **shards** own the authoritative per-event
/// capacity counters of their members plus a transaction log. Two
/// operations cross the boundary:
///
/// * `propose` — the policy scores as usual; the installed
///   [`ShardRouter`] replaces the local top-k ranking with a fan-out
///   over the shards' [`fasea_bandit::subset_top_k`] answers, merged
///   under the oracle's own comparator. Identical arrangements to the
///   single-actor service (merge theorem on the gathered form of
///   [`fasea_bandit::Oracle::arrange_gathered`]).
/// * `feedback` — accepted events become per-shard write sets. Phase 1
///   sends `Prepare{txn = round, decs}` to the involved shards in
///   ascending shard order; each makes the prepare durable before
///   acking. Only then does the coordinator append its `Feedback`
///   record — *the* commit decision. Phase 2 fans `Commit{txn}` out in
///   the same order. Recovery resolves an in-doubt prepare by asking
///   whether the coordinator completed the round, then repairs any
///   counter drift against the mirror — see
///   [`crate::actor`]'s state-machine docs.
///
/// Both orders (shard assignment and commit fan-out) are pure
/// functions of the instance and the round, which is the determinism
/// claim the golden parity tests pin down: an N-shard run's
/// coordinator state — including policy RNG — is byte-identical to the
/// single-actor run's.
pub struct ShardedArrangementService {
    inner: DurableArrangementService,
    plan: ShardPlan,
    channels: Arc<Vec<ShardChannel>>,
    timings: Arc<ShardTimings>,
    joins: Vec<std::thread::JoinHandle<()>>,
}

impl ShardedArrangementService {
    /// Opens (or creates) the sharded service: opens the coordinator,
    /// opens and replays every shard log, resolves in-doubt
    /// transactions against the coordinator's round counter, repairs
    /// counter drift against the capacity mirror, then spawns the
    /// shard actors and installs the routing arranger.
    ///
    /// # Errors
    /// Everything [`DurableArrangementService::open`] can return, plus
    /// [`ServiceError::Store`] for shard-log damage.
    pub fn open(
        dir: &Path,
        instance: ProblemInstance,
        policy: Box<dyn Policy>,
        options: DurableOptions,
        num_shards: usize,
    ) -> Result<Self, ServiceError> {
        assert!(num_shards >= 1, "at least one shard");
        let plan = ShardPlan::build(instance.conflicts(), num_shards);
        let capacities = instance.capacities().to_vec();
        // Same oracle the coordinator installs for replay: the router
        // reuses it so the sharded selection matches the local one
        // bit for bit.
        let oracle = options.oracle.build();
        let mut inner =
            DurableArrangementService::open(&dir.join("coordinator"), instance, policy, options)?;

        let fingerprint = inner.fingerprint();
        let mut states = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let state = ShardState::open(
                &dir.join(format!("shard-{s:03}")),
                shard_fingerprint(fingerprint, s),
                plan.members(s).to_vec(),
                &capacities,
                options.segment_bytes,
                options.fsync,
            )
            .map_err(ServiceError::Store)?;
            states.push(state);
        }

        // Recovery: decide every in-doubt transaction from the
        // coordinator's durable history, then repair what torn shard
        // logs lost. Order matters — resolution may apply write sets
        // reconciliation would otherwise double-count.
        let completed = inner.rounds_completed();
        let mirror = inner.service().remaining().to_vec();
        for state in &mut states {
            state
                .resolve_in_doubt(completed)
                .map_err(ServiceError::Store)?;
            state
                .reconcile(&mirror, completed)
                .map_err(ServiceError::Store)?;
        }

        let staging = Arc::new(RwLock::new(Vec::new()));
        let mut channels = Vec::with_capacity(num_shards);
        let mut joins = Vec::with_capacity(num_shards);
        for (s, state) in states.into_iter().enumerate() {
            let (channel, join) = ShardChannel::spawn(state, s, Arc::clone(&staging));
            channels.push(channel);
            joins.push(join);
        }
        let channels = Arc::new(channels);
        let timings = Arc::new(ShardTimings::new());
        let router = Arc::new(ShardRouter::new(
            Arc::clone(&channels),
            staging,
            Arc::clone(&timings),
            oracle,
        ));
        // Installed *after* open: recovery replay ran the local oracle,
        // which produces identical arrangements by the arranger
        // contract, so the replay cross-check cannot diverge.
        inner.install_arranger(Some(router as Arc<dyn Arranger>));

        Ok(ShardedArrangementService {
            inner,
            plan,
            channels,
            timings,
            joins,
        })
    }

    /// Proposes an arrangement for `user` — the policy runs on the
    /// coordinator, the ranking fans out over the shards.
    pub fn propose(&mut self, user: &UserArrival) -> Result<Arrangement, ServiceError> {
        self.inner.propose(user)
    }

    /// [`DurableArrangementService::propose_deferred`] over the
    /// sharded ranking.
    pub fn propose_deferred(
        &mut self,
        user: &UserArrival,
    ) -> Result<(Arrangement, u64), ServiceError> {
        self.inner.propose_deferred(user)
    }

    /// Applies feedback with the cross-shard two-phase commit, waiting
    /// for the coordinator record's durability (blocking form).
    pub fn feedback(&mut self, accepted: &[bool]) -> Result<u32, ServiceError> {
        let staged = self.stage_commit(accepted)?;
        let result = self.inner.feedback(accepted);
        self.finish_commit(staged, result.is_ok())?;
        result
    }

    /// Applies feedback with the cross-shard two-phase commit,
    /// returning the coordinator LSN to gate acknowledgements on
    /// (group-commit form).
    pub fn feedback_deferred(&mut self, accepted: &[bool]) -> Result<(u32, u64), ServiceError> {
        let staged = self.stage_commit(accepted)?;
        let result = self.inner.feedback_deferred(accepted);
        self.finish_commit(staged, result.is_ok())?;
        result
    }

    /// Event lifecycle re-plan ([`DurableArrangementService::lifecycle`])
    /// fanned out to the owning shard.
    ///
    /// The coordinator's `Lifecycle` record is the decision: it is
    /// durable (and applied to the capacity mirror) *before* the owning
    /// shard logs and installs its own copy. A crash in between leaves
    /// the shard's counter stale, which recovery's
    /// reconciliation repairs from the mirror — a lost lower shows up
    /// as drift-above, a lost raise as drift-below with no committed
    /// round to explain it.
    ///
    /// Returns the installed remaining capacity (clamped to the planned
    /// capacity), like the inner call.
    pub fn lifecycle(&mut self, event: u32, capacity: u32) -> Result<u32, ServiceError> {
        let t = self.inner.rounds_completed();
        let installed = self.inner.lifecycle(event, capacity)?;
        let shard = self.plan.shard_of(event);
        self.channels[shard].send(Request::Lifecycle {
            t,
            event,
            capacity: installed,
        });
        match self.channels[shard].recv() {
            Reply::Done(r) => r.map_err(ServiceError::Store)?,
            other => panic!("shard answered Lifecycle with {other:?}"),
        }
        Ok(installed)
    }

    /// Phase 1: validates the feedback shape, builds the per-shard
    /// write sets, and durably prepares them on every involved shard
    /// (ascending shard order). Returns the staged transaction, or
    /// `None` when no event was accepted (no shard involvement — the
    /// round is coordinator-only).
    fn stage_commit(
        &mut self,
        accepted: &[bool],
    ) -> Result<Option<(u64, Vec<usize>, Instant)>, ServiceError> {
        let pending = self
            .inner
            .pending_arrangement()
            .ok_or(ServiceError::NoPendingProposal)?;
        if pending.len() != accepted.len() {
            return Err(ServiceError::FeedbackLengthMismatch {
                expected: pending.len(),
                got: accepted.len(),
            });
        }
        let mut by_shard: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.plan.num_shards()];
        for (slot, v) in pending.iter().enumerate() {
            if accepted[slot] {
                let event = v.index() as u32;
                by_shard[self.plan.shard_of(event)].push((event, 1));
            }
        }
        let involved: Vec<usize> = (0..by_shard.len())
            .filter(|&s| !by_shard[s].is_empty())
            .collect();
        if involved.is_empty() {
            return Ok(None);
        }
        let txn = self.inner.rounds_completed();
        let started = Instant::now();
        for &s in &involved {
            // Arrangement order is the greedy visiting order; the
            // write-set encoding wants ascending event ids.
            by_shard[s].sort_unstable_by_key(|&(event, _)| event);
            self.channels[s].send(Request::Prepare {
                txn,
                decs: std::mem::take(&mut by_shard[s]),
            });
        }
        for &s in &involved {
            self.channels[s].sample_depth();
        }
        let mut first_err = None;
        for &s in &involved {
            match self.channels[s].recv() {
                Reply::Done(Ok(())) => {}
                Reply::Done(Err(e)) => first_err = first_err.or(Some(e)),
                other => panic!("shard answered Prepare with {other:?}"),
            }
        }
        if let Some(e) = first_err {
            // Best effort: unstage what did prepare, then surface the
            // failure. Anything left in-doubt resolves on reopen.
            self.abort_all(txn, &involved);
            return Err(ServiceError::Store(e));
        }
        Ok(Some((txn, involved, started)))
    }

    /// Phase 2: fans `Commit` (or, when the coordinator's own append
    /// failed, `Abort`) out to the involved shards in ascending order.
    fn finish_commit(
        &mut self,
        staged: Option<(u64, Vec<usize>, Instant)>,
        committed: bool,
    ) -> Result<(), ServiceError> {
        let Some((txn, involved, started)) = staged else {
            return Ok(());
        };
        if !committed {
            self.abort_all(txn, &involved);
            return Ok(());
        }
        for &s in &involved {
            self.channels[s].send(Request::Commit { txn });
        }
        let mut first_err = None;
        for &s in &involved {
            match self.channels[s].recv() {
                Reply::Done(Ok(())) => {}
                Reply::Done(Err(e)) => first_err = first_err.or(Some(e)),
                other => panic!("shard answered Commit with {other:?}"),
            }
        }
        self.timings.record_commit(started.elapsed());
        first_err.map_or(Ok(()), |e| Err(ServiceError::Store(e)))
    }

    fn abort_all(&self, txn: u64, involved: &[usize]) {
        for &s in involved {
            self.channels[s].send(Request::Abort { txn });
        }
        for &s in involved {
            let _ = self.channels[s].recv();
        }
    }

    /// The shard plan in force (pure function of instance + N).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// Shard `s`'s authoritative `(event, remaining)` counters
    /// (diagnostics/tests — one actor round-trip).
    pub fn shard_remaining(&self, s: usize) -> Vec<(u32, u32)> {
        self.channels[s].send(Request::Remaining);
        match self.channels[s].recv() {
            Reply::Remaining(pairs) => pairs,
            other => panic!("shard answered Remaining with {other:?}"),
        }
    }

    /// Drains the latest shard-route duration sample (µs), if any.
    pub fn take_route_us(&self) -> Option<u64> {
        self.timings.take_route_us()
    }

    /// Drains the latest cross-shard-commit duration sample (µs), if
    /// any.
    pub fn take_commit_us(&self) -> Option<u64> {
        self.timings.take_commit_us()
    }

    /// Drains the peak queue-depth sample of every shard (index =
    /// shard id; `None` = no fan-out since last drain).
    pub fn take_queue_depths(&self) -> Vec<Option<u64>> {
        self.channels
            .iter()
            .map(|ch| ch.take_sampled_depth())
            .collect()
    }

    // ---- delegated surface (same as DurableArrangementService) ----

    /// See [`DurableArrangementService::sync`]; also barriers every
    /// shard log.
    pub fn sync(&mut self) -> Result<(), ServiceError> {
        self.inner.sync()?;
        for ch in self.channels.iter() {
            ch.send(Request::Sync);
        }
        let mut first_err = None;
        for ch in self.channels.iter() {
            match ch.recv() {
                Reply::Done(Ok(())) => {}
                Reply::Done(Err(e)) => first_err = first_err.or(Some(e)),
                other => panic!("shard answered Sync with {other:?}"),
            }
        }
        first_err.map_or(Ok(()), |e| Err(ServiceError::Store(e)))
    }

    /// See [`DurableArrangementService::snapshot_async`] (coordinator
    /// only; shard logs are replayed in full, never compacted).
    pub fn snapshot_async(&mut self) -> Result<(), ServiceError> {
        self.inner.snapshot_async()
    }

    /// See [`DurableArrangementService::snapshot_published_seq`].
    pub fn snapshot_published_seq(&self) -> u64 {
        self.inner.snapshot_published_seq()
    }

    /// See [`DurableArrangementService::durable_lsn`] (coordinator
    /// round log).
    pub fn durable_lsn(&self) -> u64 {
        self.inner.durable_lsn()
    }

    /// See [`DurableArrangementService::wait_durable`].
    pub fn wait_durable(&self, lsn: u64) -> Result<(), ServiceError> {
        self.inner.wait_durable(lsn)
    }

    /// See [`DurableArrangementService::group_commit_enabled`].
    pub fn group_commit_enabled(&self) -> bool {
        self.inner.group_commit_enabled()
    }

    /// See [`DurableArrangementService::set_commit_observer`].
    pub fn set_commit_observer(&self, observer: Option<CommitObserver>) {
        self.inner.set_commit_observer(observer);
    }

    /// See [`DurableArrangementService::set_commit_notifier`].
    pub fn set_commit_notifier(&self, notifier: Option<CommitNotifier>) {
        self.inner.set_commit_notifier(notifier);
    }

    /// The wrapped in-memory service (all read accessors).
    pub fn service(&self) -> &ArrangementService {
        self.inner.service()
    }

    /// See [`DurableArrangementService::prefetch_scores`]. Scoring
    /// happens on the coordinator's policy (only the *ranking* fans out
    /// to shard actors), so a prefetch touches no shard state and no
    /// shard log — it composes trivially with the per-shard write sets
    /// and the cross-shard 2PC.
    ///
    /// # Errors
    /// [`ServiceError::ContextShapeMismatch`] on malformed input.
    pub fn prefetch_scores(&mut self, t: u64, user: &UserArrival) -> Result<(), ServiceError> {
        self.inner.prefetch_scores(t, user)
    }

    /// See [`DurableArrangementService::model_epoch`].
    pub fn model_epoch(&self) -> u64 {
        self.inner.model_epoch()
    }

    /// See [`DurableArrangementService::clear_prefetch`].
    pub fn clear_prefetch(&mut self) {
        self.inner.clear_prefetch();
    }

    /// See [`DurableArrangementService::has_pending`].
    pub fn has_pending(&self) -> bool {
        self.inner.has_pending()
    }

    /// See [`DurableArrangementService::pending_arrangement`].
    pub fn pending_arrangement(&self) -> Option<&Arrangement> {
        self.inner.pending_arrangement()
    }

    /// See [`DurableArrangementService::rounds_completed`].
    pub fn rounds_completed(&self) -> u64 {
        self.inner.rounds_completed()
    }

    /// See [`DurableArrangementService::fingerprint`] — the coordinator
    /// fingerprint; shard logs mix in their index on top of it.
    pub fn fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }

    /// See [`DurableArrangementService::next_seq`] (coordinator round
    /// log).
    pub fn next_seq(&self) -> u64 {
        self.inner.next_seq()
    }

    /// See [`DurableArrangementService::health`] (coordinator view).
    pub fn health(&self) -> ServiceHealth {
        self.inner.health()
    }

    /// Closes every shard (sync + join actor threads) and then the
    /// coordinator (final sync + snapshot). Returns the coordinator's
    /// snapshot path as [`DurableArrangementService::close`] does.
    pub fn close(mut self) -> Result<Option<PathBuf>, ServiceError> {
        self.inner.install_arranger(None);
        let mut first_err = None;
        for ch in self.channels.iter() {
            ch.send(Request::Close);
        }
        for ch in self.channels.iter() {
            match ch.recv() {
                Reply::Done(Ok(())) => {}
                Reply::Done(Err(e)) => first_err = first_err.or(Some(e)),
                other => panic!("shard answered Close with {other:?}"),
            }
        }
        for join in self.joins.drain(..) {
            let _ = join.join();
        }
        let snapshot = self.inner.close()?;
        first_err.map_or(Ok(snapshot), |e| Err(ServiceError::Store(e)))
    }
}

/// The sharded coordinator drives under [`fasea_sim::RoundPipeline`]
/// like the single-actor backends: scoring (and hence prefetching)
/// stays on the coordinator thread, feedback runs the cross-shard 2PC
/// in `feedback_begin` and gates acknowledgement on the coordinator
/// LSN in `wait_durable`.
impl fasea_sim::PipelinedBackend for ShardedArrangementService {
    fn rounds_completed(&self) -> u64 {
        ShardedArrangementService::rounds_completed(self)
    }
    fn pending_arrangement(&self) -> Option<Arrangement> {
        ShardedArrangementService::pending_arrangement(self).cloned()
    }
    fn propose(&mut self, user: &UserArrival) -> Result<Arrangement, ServiceError> {
        ShardedArrangementService::propose(self, user)
    }
    fn feedback_begin(&mut self, accepts: &[bool]) -> Result<(u32, u64), ServiceError> {
        self.feedback_deferred(accepts)
    }
    fn wait_durable(&self, token: u64) -> Result<(), ServiceError> {
        ShardedArrangementService::wait_durable(self, token)
    }
    fn lifecycle(&mut self, event: u32, capacity: u32) -> Result<u32, ServiceError> {
        ShardedArrangementService::lifecycle(self, event, capacity)
    }
    fn prefetch_scores(&mut self, t: u64, user: &UserArrival) -> Result<(), ServiceError> {
        ShardedArrangementService::prefetch_scores(self, t, user)
    }
    fn prefetch_stats(&self) -> fasea_bandit::PrefetchStats {
        self.service().policy().workspace().prefetch_stats()
    }
}

impl std::fmt::Debug for ShardedArrangementService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedArrangementService")
            .field("shards", &self.plan.num_shards())
            .field("rounds_completed", &self.rounds_completed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_bandit::ThompsonSampling;
    use fasea_core::{ConflictGraph, ContextMatrix, ProblemMode};
    use fasea_store::FsyncPolicy;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fasea-shard-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn instance() -> ProblemInstance {
        // Components {0,5}, {2,3}, singletons 1/4/6/7 — splits across
        // 1..=4 shards in interesting ways.
        ProblemInstance::new(
            vec![9, 9, 9, 9, 9, 9, 9, 9],
            ConflictGraph::from_pairs(8, &[(0, 5), (2, 3)]),
            3,
            ProblemMode::Fasea,
        )
    }

    fn arrival(round: u64) -> UserArrival {
        let mut ctx = ContextMatrix::from_fn(8, 3, |v, j| {
            (((round as usize * 5 + v * 3 + j) % 11) as f64) / 11.0 - 0.3
        });
        ctx.normalize_rows();
        UserArrival::new(2, ctx)
    }

    fn accepts_for(round: u64, a: &Arrangement) -> Vec<bool> {
        a.iter()
            .map(|v| (round as usize + v.index()).is_multiple_of(3))
            .collect()
    }

    fn ts_policy() -> Box<dyn Policy> {
        Box::new(ThompsonSampling::new(3, 1.0, 0.1, 23))
    }

    fn opts() -> DurableOptions {
        let mut o = DurableOptions::default();
        o.fsync = FsyncPolicy::Never;
        o
    }

    fn drive(svc: &mut ShardedArrangementService, rounds: std::ops::Range<u64>) {
        for round in rounds {
            let a = svc.propose(&arrival(round)).unwrap();
            svc.feedback(&accepts_for(round, &a)).unwrap();
        }
    }

    /// Full observable state of the single-actor reference run.
    fn reference(rounds: u64) -> (Vec<Vec<bool>>, Vec<u32>, Vec<u8>) {
        let dir = tmp("reference");
        let mut svc =
            DurableArrangementService::open(&dir, instance(), ts_policy(), opts()).unwrap();
        let mut accepts = Vec::new();
        for round in 0..rounds {
            let a = svc.propose(&arrival(round)).unwrap();
            let acc = accepts_for(round, &a);
            svc.feedback(&acc).unwrap();
            accepts.push(acc);
        }
        let remaining = svc.service().remaining().to_vec();
        let policy = svc.service().policy().save_state();
        let _ = fs::remove_dir_all(&dir);
        (accepts, remaining, policy)
    }

    #[test]
    fn sharded_run_is_byte_identical_to_single_actor() {
        let (_, ref_remaining, ref_policy) = reference(40);
        for shards in [1usize, 2, 3, 4] {
            let dir = tmp(&format!("parity-{shards}"));
            let mut svc =
                ShardedArrangementService::open(&dir, instance(), ts_policy(), opts(), shards)
                    .unwrap();
            drive(&mut svc, 0..40);
            assert_eq!(
                svc.service().remaining(),
                &ref_remaining[..],
                "{shards} shards"
            );
            assert_eq!(
                svc.service().policy().save_state(),
                ref_policy,
                "{shards} shards: policy state (incl. RNG) must match single-actor"
            );
            // Shard counters agree with the coordinator mirror.
            for s in 0..shards {
                for (event, rem) in svc.shard_remaining(s) {
                    assert_eq!(rem, ref_remaining[event as usize]);
                }
            }
            svc.close().unwrap();
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn clean_close_and_reopen_resumes_identically() {
        let (_, ref_remaining, ref_policy) = reference(30);
        let dir = tmp("reopen");
        {
            let mut svc =
                ShardedArrangementService::open(&dir, instance(), ts_policy(), opts(), 3).unwrap();
            drive(&mut svc, 0..12);
            svc.close().unwrap();
        }
        let mut svc =
            ShardedArrangementService::open(&dir, instance(), ts_policy(), opts(), 3).unwrap();
        assert_eq!(svc.rounds_completed(), 12);
        drive(&mut svc, 12..30);
        assert_eq!(svc.service().remaining(), &ref_remaining[..]);
        assert_eq!(svc.service().policy().save_state(), ref_policy);
        svc.close().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_style_drop_recovers_and_continues() {
        let (_, ref_remaining, ref_policy) = reference(30);
        let dir = tmp("crash");
        {
            let mut svc =
                ShardedArrangementService::open(&dir, instance(), ts_policy(), opts(), 4).unwrap();
            drive(&mut svc, 0..17);
            // Leave a pending proposal in flight, then drop without
            // close — actor threads see the hangup; WAL drops drain.
            let _ = svc.propose(&arrival(17)).unwrap();
        }
        let mut svc =
            ShardedArrangementService::open(&dir, instance(), ts_policy(), opts(), 4).unwrap();
        assert_eq!(svc.rounds_completed(), 17);
        // The pending proposal survives recovery exactly as it does on
        // the single-actor service.
        assert!(svc.has_pending());
        let a = svc.pending_arrangement().unwrap().clone();
        svc.feedback(&accepts_for(17, &a)).unwrap();
        drive(&mut svc, 18..30);
        assert_eq!(svc.service().remaining(), &ref_remaining[..]);
        assert_eq!(svc.service().policy().save_state(), ref_policy);
        for s in 0..4 {
            for (event, rem) in svc.shard_remaining(s) {
                assert_eq!(rem, ref_remaining[event as usize]);
            }
        }
        svc.close().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn feedback_shape_errors_leave_no_staged_transactions() {
        let dir = tmp("shape");
        let mut svc =
            ShardedArrangementService::open(&dir, instance(), ts_policy(), opts(), 2).unwrap();
        assert!(matches!(
            svc.feedback(&[true]),
            Err(ServiceError::NoPendingProposal)
        ));
        let a = svc.propose(&arrival(0)).unwrap();
        let err = svc.feedback(&vec![true; a.len() + 1]).unwrap_err();
        assert!(matches!(err, ServiceError::FeedbackLengthMismatch { .. }));
        // The round is still pending and completes normally after the
        // shape error — nothing was prepared on any shard.
        svc.feedback(&accepts_for(0, &a)).unwrap();
        assert_eq!(svc.rounds_completed(), 1);
        svc.close().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_samples_drain_once() {
        let dir = tmp("metrics");
        let mut svc =
            ShardedArrangementService::open(&dir, instance(), ts_policy(), opts(), 2).unwrap();
        let a = svc.propose(&arrival(0)).unwrap();
        assert!(svc.take_route_us().is_some());
        assert!(svc.take_route_us().is_none(), "drained");
        svc.feedback(&vec![true; a.len()]).unwrap();
        assert!(svc.take_commit_us().is_some());
        assert!(svc.take_commit_us().is_none(), "drained");
        let depths = svc.take_queue_depths();
        assert_eq!(depths.len(), 2);
        assert!(depths.iter().any(|d| d.is_some()));
        svc.close().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}

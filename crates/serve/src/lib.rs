//! # fasea-serve
//!
//! A concurrent TCP serving layer over the durable FASEA arrangement
//! service.
//!
//! The FASEA protocol (paper Definition 3) is inherently sequential —
//! one round in flight, propose then feedback, irrevocably — but a
//! production arrangement platform still needs concurrent network
//! access: many organiser/attendee frontends, one shared policy state.
//! This crate resolves that tension with a **claim-based** wire
//! protocol in front of a **single-writer actor**:
//!
//! * [`server::Server`] binds a listener and spawns a worker pool; each
//!   worker handles connection I/O, framing, decode/validation, and
//!   encode for one connection at a time;
//! * the [`actor::ServiceActor`] thread exclusively owns the
//!   [`fasea_sim::DurableArrangementService`] and executes rounds
//!   strictly sequentially; round ownership moves between sessions via
//!   `CLAIM`/`RELEASE`, with a bounded wait queue as the backpressure
//!   point (typed `Overloaded` on overflow);
//! * frames reuse the WAL's on-disk convention — `len | crc | payload`,
//!   CRC-32-checked — via `fasea_store`'s raw-frame helpers, so a
//!   corrupted byte stream is detected exactly like a torn log record
//!   ([`proto`]);
//! * contexts and feedback travel as exact IEEE-754/boolean bytes, so a
//!   workload driven over the wire with common random numbers produces
//!   **byte-identical** accept/regret accounting to the same workload
//!   run in-process;
//! * [`metrics::Metrics`] counts requests/errors and buckets
//!   propose/feedback/decode/queue-wait latencies, exposed over the
//!   `STATS` verb and a periodic log line;
//! * [`client::ServeClient`] is the matching blocking client with
//!   reconnect + backoff.
//!
//! Graceful shutdown (the `SHUTDOWN` verb or
//! [`server::ServerHandle::initiate_shutdown`]) refuses new claims,
//! drains in-flight rounds, then fsyncs the WAL and writes a final
//! snapshot. A SIGKILL instead of a drain loses nothing: the next
//! `open` replays the WAL, and a pending proposal is re-granted to the
//! first claimant of the new process.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod actor;
pub mod backend;
pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;

pub use actor::{service_error_code, CloseReport, Command, ServiceActor};
pub use backend::BackendService;
pub use client::{ClaimedRound, ClientConfig, ClientError, ServeClient, ServerInfo};
pub use metrics::{Counter, Histogram, Metrics};
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, ErrorCode, Request, Response,
    WireHistogram, WireStats, CLIENT_MAGIC, PROTOCOL_VERSION,
};
pub use server::{ServeReport, Server, ServerConfig, ServerHandle};

//! The service actor: a single thread that owns the
//! [`DurableArrangementService`] and executes commands strictly
//! sequentially, exactly as the FASEA protocol demands.
//!
//! Workers never touch the service directly — they send [`Command`]s
//! over a channel with a per-request reply sender. Round ownership is
//! brokered here: a `CLAIM` either grants a round immediately, parks
//! the claimant in a bounded FIFO (the backpressure point — a full
//! queue answers [`ErrorCode::Overloaded`]), or is refused while
//! draining. If a grant-holder disconnects, its round (including an
//! already-logged pending proposal) is re-granted to the next waiter
//! under the *same* round number.
//!
//! # Optimistic concurrent admission
//!
//! With `pipeline_depth > 1` the actor grants up to that many
//! *consecutive* rounds at once: the head grant is the round the
//! service is actually at (`rounds_completed()`), later grants carry
//! future round numbers. Clients of future rounds may send their
//! `PROPOSE` early; the actor buffers it and — for policies whose
//! scoring is RNG-free ([`fasea_bandit::Policy::scoring_is_deterministic`])
//! — speculatively runs the `score_into` kernel now, stashing the
//! score vector tagged with the current model-version epoch. When the
//! head round's feedback lands, the next buffered proposal is
//! *promoted*: executed against the service in strict round order, so
//! the WAL records the exact depth-1 interleaving. If the intervening
//! feedback touched the model, the stash's epoch no longer matches —
//! counted as a `conflict_replays` — and the promoted round re-scores
//! deterministically; the arrangement step always runs fresh against
//! the live capacities either way. Depth therefore changes *when* work
//! happens, never *what* is decided: the final WAL and state digest are
//! bit-equal to `pipeline_depth = 1` (gated by `tests/pipeline_parity.rs`).
//!
//! # Group commit: deferred acknowledgements
//!
//! When the service runs with group commit, rounds are applied to the
//! in-memory state immediately (so the *next* round can be granted
//! while the log writes are still in flight) but the round-completing
//! `FEEDBACK_OK` reply is withheld in an [`AckQueue`] until the
//! store's `durable_lsn` watermark covers the round's last LSN — an
//! acked round still implies a durable round, exactly as in the
//! synchronous path, but N concurrent sessions now share one fsync.
//! The commit syncer flushes the queue directly from its own thread
//! via the commit notifier (no actor wake-up needed), and the actor
//! re-flushes after every push to close the race where the watermark
//! advanced between the append and the push.
//!
//! `PROPOSED` is *not* withheld: `propose` is compute-then-log (see
//! DESIGN.md §8) — a crash that loses an unacknowledged-by-fsync
//! Propose record recovers to the pre-round state and re-draws the
//! *identical* arrangement when the round is re-delivered, because the
//! policy's RNG position is restored from the log; recovery asserts
//! this bit-exactly (`RecoveryDiverged`). The propose record still
//! travels the commit queue in LSN order, so it is always durable
//! before the feedback that completes its round is acknowledged.
//! Keeping the proposal ack off the fsync keeps the fsync out of the
//! round-sequential critical path: the only durability wait left per
//! round overlaps the next round's network turnaround.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fasea_core::{ContextMatrix, UserArrival};
use fasea_sim::ServiceError;

use crate::backend::BackendService;
use crate::metrics::Metrics;
use crate::proto::{ErrorCode, Response, WireStats};

/// A command sent from a worker to the service actor. Every variant
/// carrying a `reply` is answered with exactly one [`Response`] (unless
/// the worker has already hung up, in which case the reply is dropped).
pub enum Command {
    /// Session handshake.
    Hello {
        /// Reply channel.
        reply: Sender<Response>,
    },
    /// Request ownership of the next round.
    Claim {
        /// Session id of the claimant.
        conn: u64,
        /// When the claim left the worker (queue-wait metric).
        enqueued: Instant,
        /// Reply channel; answered when granted, refused, or draining.
        reply: Sender<Response>,
    },
    /// Give the claimed round back without proposing.
    Release {
        /// Session id.
        conn: u64,
        /// Reply channel.
        reply: Sender<Response>,
    },
    /// Propose an arrangement for the owned round.
    Propose {
        /// Session id.
        conn: u64,
        /// The arriving user's capacity.
        user_capacity: u32,
        /// Context rows.
        num_events: u32,
        /// Context dimension.
        dim: u32,
        /// Row-major context block.
        contexts: Vec<f64>,
        /// Reply channel.
        reply: Sender<Response>,
    },
    /// Answer the pending proposal of the owned round.
    Feedback {
        /// Session id.
        conn: u64,
        /// Accept/reject per arranged slot.
        accepts: Vec<bool>,
        /// Reply channel.
        reply: Sender<Response>,
    },
    /// Health + metrics snapshot.
    Stats {
        /// Reply channel.
        reply: Sender<Response>,
    },
    /// Begin a graceful drain: refuse new claims, answer parked ones
    /// with `ShuttingDown`, let in-flight rounds finish.
    Shutdown {
        /// Reply channel.
        reply: Sender<Response>,
    },
    /// The session's connection closed; release anything it owns.
    Disconnect {
        /// Session id.
        conn: u64,
    },
}

/// What the actor thread returns once the command channel closes and
/// the service has been flushed to disk.
pub struct CloseReport {
    /// Rounds completed at close.
    pub rounds_completed: u64,
    /// Final snapshot path, if any state existed to snapshot.
    pub snapshot: Option<PathBuf>,
    /// The close-time error, if syncing or snapshotting failed.
    pub error: Option<ServiceError>,
}

struct Waiter {
    conn: u64,
    enqueued: Instant,
    reply: Sender<Response>,
}

/// A reply withheld until the group-commit watermark covers its LSN.
struct PendingAck {
    lsn: u64,
    reply: Sender<Response>,
    response: Response,
}

/// Replies awaiting durability, in LSN order (the actor is the only
/// pusher and its LSNs are monotone). Shared with the commit syncer,
/// which flushes it from the commit notifier the moment a batch's
/// watermark is published — client acks ride the fsync that made them
/// durable instead of waiting for the actor's next poll tick.
struct AckQueue {
    inner: Mutex<VecDeque<PendingAck>>,
}

impl AckQueue {
    fn new() -> Self {
        AckQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, lsn: u64, reply: Sender<Response>, response: Response) {
        self.inner
            .lock()
            .expect("ack queue poisoned")
            .push_back(PendingAck {
                lsn,
                reply,
                response,
            });
    }

    /// Sends every withheld reply whose record the watermark covers
    /// (count semantics: `lsn < durable`).
    fn flush(&self, durable: u64) {
        let mut q = self.inner.lock().expect("ack queue poisoned");
        while q.front().is_some_and(|p| p.lsn < durable) {
            let p = q.pop_front().expect("non-empty after front check");
            let _ = p.reply.send(p.response);
        }
    }

    /// Answers every still-withheld reply with a typed error; used when
    /// the commit pipeline fails and the records will never be durable.
    fn fail_all(&self, code: ErrorCode, detail: &str) {
        let mut q = self.inner.lock().expect("ack queue poisoned");
        for p in q.drain(..) {
            let _ = p.reply.send(Response::Error {
                code,
                detail: detail.to_string(),
            });
        }
    }
}

/// One granted in-flight round. Grants are held in round order; the
/// front grant is the round the service will execute next.
struct Grant {
    /// The session holding the grant; `None` after a release or
    /// disconnect until the slot is re-granted (the round number is
    /// already promised, so the slot survives its holder).
    conn: Option<u64>,
    /// The round number promised to the holder.
    t: u64,
    /// An early `PROPOSE` for a future round, executed at promotion.
    buffered: Option<BufferedPropose>,
}

/// A `PROPOSE` that arrived before its round became the head round.
struct BufferedPropose {
    user: UserArrival,
    reply: Sender<Response>,
    /// Set when the score kernel already ran speculatively.
    speculation: Option<Speculation>,
}

/// What the world looked like when a buffered proposal was
/// speculatively scored; compared at promotion to detect conflicts.
struct Speculation {
    model_epoch: u64,
}

/// The actor state machine. Owns the durable service for its lifetime.
pub struct ServiceActor {
    svc: BackendService,
    rx: Receiver<Command>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    max_inflight: usize,
    poll_interval: Duration,
    /// Maximum concurrently granted rounds (1 = sequential admission).
    pipeline_depth: usize,
    /// Granted in-flight rounds, in round order (head first).
    grants: VecDeque<Grant>,
    /// Workspace prefetch counters already drained into the metrics.
    prefetch_seen: fasea_bandit::PrefetchStats,
    /// Workspace model-tier counters already drained into the metrics.
    tier_seen: fasea_bandit::ModelTierStats,
    waiters: VecDeque<Waiter>,
    /// Set once a store-level failure makes further writes unsafe.
    poisoned: bool,
    /// Replies withheld until their LSN is durable (group commit only).
    acks: Arc<AckQueue>,
    /// Request an async snapshot every this many completed rounds.
    snapshot_every: Option<u64>,
    /// Event lifecycle schedule, applied (and durably logged) before a
    /// round is granted to a claimant.
    churn: fasea_core::ChurnSchedule,
    /// One past the last round whose churn actions were applied in this
    /// process life (earlier rounds' records replay from the WAL).
    churn_applied_through: u64,
}

fn error_response(code: ErrorCode, detail: impl Into<String>) -> Response {
    Response::Error {
        code,
        detail: detail.into(),
    }
}

/// Maps a service-level failure onto its wire error code.
pub fn service_error_code(err: &ServiceError) -> ErrorCode {
    match err {
        ServiceError::FeedbackPending => ErrorCode::FeedbackPending,
        ServiceError::NoPendingProposal => ErrorCode::NoPendingProposal,
        ServiceError::FeedbackLengthMismatch { .. } => ErrorCode::FeedbackLengthMismatch,
        ServiceError::ContextShapeMismatch => ErrorCode::ContextShapeMismatch,
        ServiceError::PolicyProducedInfeasible(_) => ErrorCode::PolicyInfeasible,
        _ => ErrorCode::StoreFailure,
    }
}

fn is_store_failure(err: &ServiceError) -> bool {
    service_error_code(err) == ErrorCode::StoreFailure
}

impl ServiceActor {
    /// Builds the actor. `shutdown` is shared with the server: the
    /// actor observes it to drain, and raises it itself on fatal store
    /// errors or a `SHUTDOWN` request. `snapshot_every` requests an
    /// asynchronous snapshot every that many completed rounds.
    ///
    /// With group commit enabled this hooks the commit syncer: the
    /// notifier flushes deferred acks as each batch becomes durable,
    /// and the observer feeds the `fsync_batch_size` /
    /// `commit_latency_us` histograms.
    ///
    /// `pipeline_depth` bounds concurrently granted rounds (clamped to
    /// at least 1; 1 reproduces the strictly sequential admission).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        svc: impl Into<BackendService>,
        rx: Receiver<Command>,
        metrics: Arc<Metrics>,
        shutdown: Arc<AtomicBool>,
        max_inflight: usize,
        poll_interval: Duration,
        pipeline_depth: usize,
        snapshot_every: Option<u64>,
        churn: fasea_core::ChurnSchedule,
    ) -> Self {
        let svc = svc.into();
        let acks = Arc::new(AckQueue::new());
        if svc.group_commit_enabled() {
            let for_notifier = Arc::clone(&acks);
            svc.set_commit_notifier(Some(Arc::new(move |durable| {
                for_notifier.flush(durable);
            })));
            let for_observer = Arc::clone(&metrics);
            svc.set_commit_observer(Some(Arc::new(move |batch, latency| {
                for_observer.fsync_batch_size.observe_value(batch as u64);
                for_observer.commit_latency_us.observe(latency);
            })));
        }
        ServiceActor {
            svc,
            rx,
            metrics,
            shutdown,
            max_inflight: max_inflight.max(1),
            poll_interval,
            pipeline_depth: pipeline_depth.max(1),
            grants: VecDeque::new(),
            prefetch_seen: fasea_bandit::PrefetchStats::default(),
            tier_seen: fasea_bandit::ModelTierStats::default(),
            waiters: VecDeque::new(),
            poisoned: false,
            acks,
            snapshot_every: snapshot_every.filter(|&n| n > 0),
            churn,
            churn_applied_through: 0,
        }
    }

    /// Runs until every command sender is gone, then flushes and
    /// snapshots the service.
    pub fn run(mut self) -> CloseReport {
        loop {
            match self.rx.recv_timeout(self.poll_interval) {
                Ok(cmd) => self.handle(cmd),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if self.draining() {
                self.refuse_waiters();
            } else {
                self.grant_next();
            }
        }
        self.refuse_waiters();
        self.settle_acks();
        let rounds_completed = self.svc.rounds_completed();
        match self.svc.close() {
            Ok(snapshot) => CloseReport {
                rounds_completed,
                snapshot,
                error: None,
            },
            Err(err) => CloseReport {
                rounds_completed,
                snapshot: None,
                error: Some(err),
            },
        }
    }

    fn draining(&self) -> bool {
        self.poisoned || self.shutdown.load(Ordering::SeqCst)
    }

    /// Resolves every still-deferred reply before the service closes:
    /// force one last sync so the watermark covers everything appended,
    /// then flush; if even that fails, the records were lost and the
    /// withheld replies become typed store errors (never false acks).
    fn settle_acks(&mut self) {
        match self.svc.sync() {
            Ok(()) => self.acks.flush(self.svc.durable_lsn()),
            Err(_) => {
                self.acks.flush(self.svc.durable_lsn());
                self.acks.fail_all(
                    ErrorCode::StoreFailure,
                    "commit pipeline failed before this round reached disk",
                );
            }
        }
    }

    /// Kicks off a background snapshot at the configured round cadence.
    fn maybe_snapshot(&mut self) {
        let Some(every) = self.snapshot_every else {
            return;
        };
        let rounds = self.svc.rounds_completed();
        if rounds > 0 && rounds.is_multiple_of(every) {
            if let Err(err) = self.svc.snapshot_async() {
                if is_store_failure(&err) {
                    self.poisoned = true;
                    self.shutdown.store(true, Ordering::SeqCst);
                }
            }
        }
    }

    fn handle(&mut self, cmd: Command) {
        match cmd {
            Command::Hello { reply } => {
                let health = self.svc.health();
                let _ = reply.send(Response::HelloOk {
                    fingerprint: health.fingerprint,
                    num_events: self.svc.service().instance().num_events() as u32,
                    dim: self.svc.service().instance().dim() as u32,
                    rounds_completed: health.rounds_completed,
                    has_pending: health.has_pending,
                });
            }
            Command::Claim {
                conn,
                enqueued,
                reply,
            } => self.handle_claim(conn, enqueued, reply),
            Command::Release { conn, reply } => {
                let Some(idx) = self.grant_index(conn) else {
                    self.metrics.protocol_errors.incr();
                    let _ = reply.send(error_response(
                        ErrorCode::NotRoundOwner,
                        "RELEASE from a session that does not own a round",
                    ));
                    return;
                };
                // The round number was promised, so the slot stays and
                // is re-granted to the next waiter under the same `t`.
                self.grants[idx].conn = None;
                self.drop_buffered(idx);
                self.metrics.releases.incr();
                let _ = reply.send(Response::ReleaseOk);
            }
            Command::Propose {
                conn,
                user_capacity,
                num_events,
                dim,
                contexts,
                reply,
            } => self.handle_propose(conn, user_capacity, num_events, dim, contexts, reply),
            Command::Feedback {
                conn,
                accepts,
                reply,
            } => self.handle_feedback(conn, &accepts, reply),
            Command::Stats { reply } => {
                self.metrics.stats_requests.incr();
                let _ = reply.send(Response::StatsOk(self.wire_stats()));
            }
            Command::Shutdown { reply } => {
                self.shutdown.store(true, Ordering::SeqCst);
                let _ = reply.send(Response::ShutdownOk);
            }
            Command::Disconnect { conn } => {
                self.waiters.retain(|w| w.conn != conn);
                let dropped: Vec<usize> = self
                    .grants
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.conn == Some(conn))
                    .map(|(i, _)| i)
                    .collect();
                for idx in dropped {
                    self.grants[idx].conn = None;
                    // A buffered proposal dies with its connection: it
                    // was never executed against the service, so the
                    // round is simply re-granted un-proposed.
                    self.drop_buffered(idx);
                    self.metrics.reassigned_rounds.incr();
                }
            }
        }
    }

    fn handle_claim(&mut self, conn: u64, enqueued: Instant, reply: Sender<Response>) {
        if self.draining() {
            self.metrics.protocol_errors.incr();
            let _ = reply.send(error_response(
                ErrorCode::ShuttingDown,
                "server is draining",
            ));
            return;
        }
        if self.grant_index(conn).is_some() {
            self.metrics.protocol_errors.incr();
            let _ = reply.send(error_response(
                ErrorCode::Internal,
                "CLAIM from a session that already holds a round",
            ));
            return;
        }
        self.metrics.claims.incr();
        if self.waiters.len() >= self.max_inflight {
            self.metrics.overloaded.incr();
            self.metrics.protocol_errors.incr();
            let _ = reply.send(error_response(
                ErrorCode::Overloaded,
                format!("claim queue full ({} waiting)", self.waiters.len()),
            ));
            return;
        }
        self.waiters.push_back(Waiter {
            conn,
            enqueued,
            reply,
        });
        self.grant_next();
    }

    /// Applies round `t`'s lifecycle actions, exactly once per round
    /// per process life. Skipped while a proposal is pending (the
    /// actions already ran before that propose was logged); re-applied
    /// records after a crash are idempotent set-capacity writes.
    fn apply_churn(&mut self, t: u64) {
        if self.churn_applied_through > t || self.svc.pending_arrangement().is_some() {
            return;
        }
        self.churn_applied_through = t + 1;
        let actions = self.churn.actions_at(t).to_vec();
        for a in actions {
            if let Err(err) = self.svc.lifecycle(a.event, a.capacity) {
                if is_store_failure(&err) {
                    self.poisoned = true;
                    self.shutdown.store(true, Ordering::SeqCst);
                }
                return;
            }
        }
    }

    /// The grant slot `conn` currently holds, if any.
    fn grant_index(&self, conn: u64) -> Option<usize> {
        self.grants.iter().position(|g| g.conn == Some(conn))
    }

    /// Discards grant `idx`'s buffered proposal, if any. A speculated
    /// stash must die with the proposal it was computed from: the round
    /// may later be re-proposed with *different contexts*, which the
    /// stash's (round, epoch) tag alone cannot detect.
    fn drop_buffered(&mut self, idx: usize) {
        if let Some(b) = self.grants[idx].buffered.take() {
            if b.speculation.is_some() {
                self.svc.clear_prefetch();
            }
        }
    }

    /// Hands rounds to the oldest live waiters: vacated slots first
    /// (their round numbers are already promised), then fresh future
    /// rounds while fewer than `pipeline_depth` grants are out.
    fn grant_next(&mut self) {
        loop {
            let base = self.svc.rounds_completed();
            let slot_t = if let Some(g) = self.grants.iter().find(|g| g.conn.is_none()) {
                g.t
            } else if self.grants.len() < self.pipeline_depth {
                self.grants.back().map_or(base, |g| g.t + 1)
            } else {
                return;
            };
            let Some(w) = self.waiters.pop_front() else {
                return;
            };
            self.metrics.queue_wait_us.observe(w.enqueued.elapsed());
            // Only the head round can have service-side state attached:
            // churn is applied (and logged) when its round activates,
            // and a recovered/reassigned pending proposal is handed to
            // the new holder. Future rounds are granted bare.
            let pending = if slot_t == base {
                self.apply_churn(slot_t);
                self.svc
                    .pending_arrangement()
                    .map(|a| a.events().iter().map(|v| v.index() as u32).collect())
            } else {
                None
            };
            if w.reply
                .send(Response::Claimed { t: slot_t, pending })
                .is_ok()
            {
                if let Some(g) = self
                    .grants
                    .iter_mut()
                    .find(|g| g.conn.is_none() && g.t == slot_t)
                {
                    g.conn = Some(w.conn);
                } else {
                    self.grants.push_back(Grant {
                        conn: Some(w.conn),
                        t: slot_t,
                        buffered: None,
                    });
                }
                self.metrics
                    .pipeline_depth
                    .observe_value(self.grants.len() as u64);
            }
            // A dead reply channel means the claimant's worker already
            // hung up — fall through and try the next waiter.
        }
    }

    fn refuse_waiters(&mut self) {
        for w in self.waiters.drain(..) {
            self.metrics.protocol_errors.incr();
            let _ = w.reply.send(error_response(
                ErrorCode::ShuttingDown,
                "server is draining",
            ));
        }
    }

    fn handle_propose(
        &mut self,
        conn: u64,
        user_capacity: u32,
        num_events: u32,
        dim: u32,
        contexts: Vec<f64>,
        reply: Sender<Response>,
    ) {
        let Some(idx) = self.grant_index(conn) else {
            self.metrics.protocol_errors.incr();
            let _ = reply.send(error_response(
                ErrorCode::NotRoundOwner,
                "PROPOSE from a session that does not own a round",
            ));
            return;
        };
        let instance = self.svc.service().instance();
        if num_events as usize != instance.num_events()
            || dim as usize != instance.dim()
            || contexts.len() != (num_events as usize) * (dim as usize)
        {
            self.metrics.protocol_errors.incr();
            let _ = reply.send(error_response(
                ErrorCode::ContextShapeMismatch,
                format!(
                    "context block is {num_events}x{dim}, instance is {}x{}",
                    instance.num_events(),
                    instance.dim()
                ),
            ));
            return;
        }
        let user = UserArrival::new(
            user_capacity,
            ContextMatrix::from_rows(num_events as usize, dim as usize, contexts),
        );
        if idx == 0 {
            // Head round: execute now, exactly as sequential admission.
            self.apply_churn(self.grants[0].t);
            self.execute_propose(user, reply);
            return;
        }
        // Future round: buffer for in-order promotion. Double-propose
        // on the same grant mirrors the head's FeedbackPending error.
        if self.grants[idx].buffered.is_some() {
            self.metrics.protocol_errors.incr();
            let _ = reply.send(error_response(
                ErrorCode::FeedbackPending,
                format!(
                    "round {} already has a buffered proposal",
                    self.grants[idx].t
                ),
            ));
            return;
        }
        // Optimistic speculation: run the score kernel now when it is
        // safe (next in line, RNG-free scoring). The stash is epoch
        // tagged — a conflicting model update before promotion is
        // detected there and the round re-scores deterministically.
        let t = self.grants[idx].t;
        let speculation = if idx == 1 {
            self.speculate(t, &user)
        } else {
            None
        };
        self.grants[idx].buffered = Some(BufferedPropose {
            user,
            reply,
            speculation,
        });
    }

    /// Runs the score kernel for future round `t` now, if that can
    /// never change what is later decided: the policy must consume no
    /// randomness while scoring (otherwise a discarded stash would
    /// fork the RNG stream from the depth-1 run).
    fn speculate(&mut self, t: u64, user: &UserArrival) -> Option<Speculation> {
        if !self.svc.service().policy().scoring_is_deterministic() {
            return None;
        }
        let model_epoch = self.svc.model_epoch();
        self.svc.prefetch_scores(t, user).ok()?;
        Some(Speculation { model_epoch })
    }

    /// Executes a proposal for the head round and replies. Shared by
    /// the direct head-propose path and buffered-proposal promotion.
    fn execute_propose(&mut self, user: UserArrival, reply: Sender<Response>) {
        let t = self.svc.rounds_completed();
        let started = Instant::now();
        if self.svc.group_commit_enabled() {
            match self.svc.propose_deferred(&user) {
                Ok((arrangement, _lsn)) => {
                    self.metrics.propose_us.observe(started.elapsed());
                    self.metrics.proposes.incr();
                    self.svc.drain_shard_metrics(&self.metrics);
                    self.drain_prefetch_metrics();
                    // Replied immediately: compute-then-log makes an
                    // undurable Propose harmless (recovery re-draws it
                    // identically), and its LSN precedes the feedback
                    // LSN this round's completion ack will wait on.
                    let _ = reply.send(Response::Proposed {
                        t,
                        arrangement: arrangement
                            .events()
                            .iter()
                            .map(|v| v.index() as u32)
                            .collect(),
                    });
                }
                Err(err) => self.reply_service_error(err, &reply),
            }
            return;
        }
        match self.svc.propose(&user) {
            Ok(arrangement) => {
                self.metrics.propose_us.observe(started.elapsed());
                self.metrics.proposes.incr();
                self.svc.drain_shard_metrics(&self.metrics);
                self.drain_prefetch_metrics();
                let _ = reply.send(Response::Proposed {
                    t,
                    arrangement: arrangement
                        .events()
                        .iter()
                        .map(|v| v.index() as u32)
                        .collect(),
                });
            }
            Err(err) => self.reply_service_error(err, &reply),
        }
    }

    /// Folds newly accumulated workspace prefetch counters into the
    /// serving metrics.
    fn drain_prefetch_metrics(&mut self) {
        let s = self.svc.prefetch_stats();
        self.metrics
            .prefetch_hit
            .add(s.hits - self.prefetch_seen.hits);
        self.metrics
            .prefetch_recompute
            .add(s.recomputes - self.prefetch_seen.recomputes);
        self.prefetch_seen = s;
    }

    /// Folds newly accumulated workspace model-tier counters (cohort
    /// select hits, sketch promotions) into the serving metrics. Stays
    /// all-zero for policies without a backing estimator store.
    fn drain_model_tier_metrics(&mut self) {
        let s = self.svc.model_tier_stats();
        self.metrics
            .cohort_hits
            .add(s.cohort_hits - self.tier_seen.cohort_hits);
        self.metrics
            .sketch_promotions
            .add(s.sketch_promotions - self.tier_seen.sketch_promotions);
        self.tier_seen = s;
    }

    /// After the head round completed: if the next grant already sent
    /// its proposal, execute it now — in round order, which is what
    /// keeps the WAL bit-equal to sequential admission. Conflicts
    /// (the just-applied feedback moved the model epoch after a
    /// speculation) are counted; the re-scoring itself happens inside
    /// `select_into` when it finds the stale stash.
    fn promote_buffered(&mut self) {
        let Some(head) = self.grants.front_mut() else {
            return;
        };
        let Some(b) = head.buffered.take() else {
            return;
        };
        let t = head.t;
        if let Some(spec) = &b.speculation {
            if spec.model_epoch != self.svc.model_epoch() {
                self.metrics.conflict_replays.incr();
            }
        }
        self.apply_churn(t);
        self.execute_propose(b.user, b.reply);
    }

    /// Withholds `response` until `lsn` is durable. The push-then-flush
    /// order closes the race against the syncer: the entry is either
    /// flushed here (watermark already advanced) or by a later notifier
    /// call — never stranded, never sent twice (the queue pops under
    /// one lock).
    fn defer_ack(&mut self, lsn: u64, reply: Sender<Response>, response: Response) {
        self.acks.push(lsn, reply, response);
        self.acks.flush(self.svc.durable_lsn());
    }

    fn handle_feedback(&mut self, conn: u64, accepts: &[bool], reply: Sender<Response>) {
        let Some(idx) = self.grant_index(conn) else {
            self.metrics.protocol_errors.incr();
            let _ = reply.send(error_response(
                ErrorCode::NotRoundOwner,
                "FEEDBACK from a session that does not own a round",
            ));
            return;
        };
        if idx != 0 {
            // Only the head round can have a pending proposal in the
            // service; a future-round holder has nothing to answer yet.
            self.metrics.protocol_errors.incr();
            let _ = reply.send(error_response(
                ErrorCode::NoPendingProposal,
                format!("round {} is not yet active", self.grants[idx].t),
            ));
            return;
        }
        let t = self.svc.rounds_completed();
        let started = Instant::now();
        if self.svc.group_commit_enabled() {
            match self.svc.feedback_deferred(accepts) {
                Ok((reward, lsn)) => {
                    self.metrics.feedback_us.observe(started.elapsed());
                    self.metrics.feedbacks.incr();
                    self.svc.drain_shard_metrics(&self.metrics);
                    self.drain_model_tier_metrics();
                    // The round is complete in memory: retire its grant
                    // *now* so the next round proceeds while this
                    // round's records are still being fsynced — the
                    // pipelining that lets N sessions share one fsync.
                    self.grants.pop_front();
                    self.defer_ack(lsn, reply, Response::FeedbackOk { t, reward });
                    self.maybe_snapshot();
                    self.promote_buffered();
                }
                Err(err) => self.reply_service_error(err, &reply),
            }
            return;
        }
        match self.svc.feedback(accepts) {
            Ok(reward) => {
                self.metrics.feedback_us.observe(started.elapsed());
                self.metrics.feedbacks.incr();
                self.svc.drain_shard_metrics(&self.metrics);
                self.drain_model_tier_metrics();
                self.grants.pop_front();
                let _ = reply.send(Response::FeedbackOk { t, reward });
                self.maybe_snapshot();
                self.promote_buffered();
            }
            Err(err) => self.reply_service_error(err, &reply),
        }
    }

    /// Replies with the typed wire error for `err`; a store-level
    /// failure additionally poisons the actor and raises the shutdown
    /// flag, since the WAL can no longer be trusted to advance.
    fn reply_service_error(&mut self, err: ServiceError, reply: &Sender<Response>) {
        self.metrics.protocol_errors.incr();
        if is_store_failure(&err) {
            self.poisoned = true;
            self.shutdown.store(true, Ordering::SeqCst);
            // Whatever the watermark already covers is genuinely
            // durable and may still be acked; everything behind the
            // failure never will be — fail those now rather than let
            // the sessions time out.
            self.acks.flush(self.svc.durable_lsn());
            self.acks.fail_all(
                ErrorCode::StoreFailure,
                "commit pipeline failed before this round reached disk",
            );
        }
        let _ = reply.send(error_response(service_error_code(&err), err.to_string()));
    }

    fn wire_stats(&self) -> WireStats {
        let health = self.svc.health();
        WireStats {
            fingerprint: health.fingerprint,
            rounds_completed: health.rounds_completed,
            total_arranged: health.total_arranged,
            total_rewards: health.total_rewards,
            available_events: health.available_events as u32,
            has_pending: health.has_pending,
            next_seq: health.next_seq,
            counters: self.metrics.wire_counters(),
            histograms: self.metrics.wire_histograms(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_bandit::LinUcb;
    use fasea_core::ProblemInstance;
    use fasea_sim::{DurableArrangementService, DurableOptions};
    use fasea_store::FsyncPolicy;
    use std::sync::mpsc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fasea-serve-actor-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spawn_actor(
        tag: &str,
    ) -> (
        Sender<Command>,
        Arc<AtomicBool>,
        std::thread::JoinHandle<CloseReport>,
    ) {
        spawn_actor_with(tag, DurableOptions::new().with_fsync(FsyncPolicy::Never), 1)
    }

    fn spawn_actor_with(
        tag: &str,
        options: DurableOptions,
        pipeline_depth: usize,
    ) -> (
        Sender<Command>,
        Arc<AtomicBool>,
        std::thread::JoinHandle<CloseReport>,
    ) {
        let dir = temp_dir(tag);
        let instance = ProblemInstance::basic(4, 2);
        let svc = DurableArrangementService::open(
            &dir,
            instance,
            Box::new(LinUcb::new(2, 1.0, 2.0)),
            options,
        )
        .unwrap();
        let (tx, rx) = mpsc::channel();
        let shutdown = Arc::new(AtomicBool::new(false));
        let actor = ServiceActor::new(
            svc,
            rx,
            Arc::new(Metrics::default()),
            Arc::clone(&shutdown),
            2,
            Duration::from_millis(10),
            pipeline_depth,
            None,
            fasea_core::ChurnSchedule::none(),
        );
        let handle = std::thread::spawn(move || actor.run());
        (tx, shutdown, handle)
    }

    fn rpc(tx: &Sender<Command>, build: impl FnOnce(Sender<Response>) -> Command) -> Response {
        let (reply_tx, reply_rx) = mpsc::channel();
        tx.send(build(reply_tx)).unwrap();
        reply_rx.recv_timeout(Duration::from_secs(5)).unwrap()
    }

    #[test]
    fn claim_propose_feedback_cycle_and_ownership() {
        let (tx, _shutdown, handle) = spawn_actor("cycle");
        let granted = rpc(&tx, |reply| Command::Claim {
            conn: 1,
            enqueued: Instant::now(),
            reply,
        });
        assert_eq!(
            granted,
            Response::Claimed {
                t: 0,
                pending: None
            }
        );
        // A stranger may not propose.
        let resp = rpc(&tx, |reply| Command::Propose {
            conn: 2,
            user_capacity: 1,
            num_events: 4,
            dim: 2,
            contexts: vec![0.5; 8],
            reply,
        });
        assert!(
            matches!(&resp, Response::Error { code, .. } if *code == ErrorCode::NotRoundOwner),
            "{resp:?}"
        );
        // The owner proposes and answers feedback.
        let resp = rpc(&tx, |reply| Command::Propose {
            conn: 1,
            user_capacity: 1,
            num_events: 4,
            dim: 2,
            contexts: vec![0.5; 8],
            reply,
        });
        let arrangement = match resp {
            Response::Proposed { t: 0, arrangement } => arrangement,
            other => panic!("{other:?}"),
        };
        let resp = rpc(&tx, |reply| Command::Feedback {
            conn: 1,
            accepts: vec![true; arrangement.len()],
            reply,
        });
        assert!(
            matches!(resp, Response::FeedbackOk { t: 0, .. }),
            "{resp:?}"
        );
        drop(tx);
        let report = handle.join().unwrap();
        assert_eq!(report.rounds_completed, 1);
        assert!(report.error.is_none());
        assert!(report.snapshot.is_some());
    }

    #[test]
    fn group_commit_defers_acks_until_durable() {
        let (tx, _shutdown, handle) = spawn_actor_with(
            "group-acks",
            DurableOptions::new()
                .with_fsync(FsyncPolicy::Always)
                .with_group_commit(true),
            1,
        );
        // Rounds still ack in order and carry the right round indices;
        // each blocking rpc() below only returns once the commit syncer
        // (or the actor's own flush) released the deferred reply, so
        // completing all of them proves acks are never stranded.
        for t in 0..5u64 {
            let granted = rpc(&tx, |reply| Command::Claim {
                conn: 1,
                enqueued: Instant::now(),
                reply,
            });
            assert!(matches!(granted, Response::Claimed { .. }), "{granted:?}");
            let resp = rpc(&tx, |reply| Command::Propose {
                conn: 1,
                user_capacity: 1,
                num_events: 4,
                dim: 2,
                contexts: vec![0.5; 8],
                reply,
            });
            let arrangement = match resp {
                Response::Proposed {
                    t: got,
                    arrangement,
                } if got == t => arrangement,
                other => panic!("{other:?}"),
            };
            let resp = rpc(&tx, |reply| Command::Feedback {
                conn: 1,
                accepts: vec![true; arrangement.len()],
                reply,
            });
            assert!(
                matches!(&resp, Response::FeedbackOk { t: got, .. } if *got == t),
                "{resp:?}"
            );
        }
        drop(tx);
        let report = handle.join().unwrap();
        assert_eq!(report.rounds_completed, 5);
        assert!(report.error.is_none(), "{:?}", report.error);
    }

    #[test]
    fn overload_and_disconnect_reassignment() {
        let (tx, _shutdown, handle) = spawn_actor("overload");
        // conn 1 owns the round; conns 2 and 3 fill the wait queue
        // (max_inflight = 2); conn 4 is refused.
        let r1 = rpc(&tx, |reply| Command::Claim {
            conn: 1,
            enqueued: Instant::now(),
            reply,
        });
        assert!(matches!(r1, Response::Claimed { .. }));
        let (w2_tx, w2_rx) = mpsc::channel();
        tx.send(Command::Claim {
            conn: 2,
            enqueued: Instant::now(),
            reply: w2_tx,
        })
        .unwrap();
        let (w3_tx, w3_rx) = mpsc::channel();
        tx.send(Command::Claim {
            conn: 3,
            enqueued: Instant::now(),
            reply: w3_tx,
        })
        .unwrap();
        // Let the actor park both waiters before overflowing.
        std::thread::sleep(Duration::from_millis(50));
        let r4 = rpc(&tx, |reply| Command::Claim {
            conn: 4,
            enqueued: Instant::now(),
            reply,
        });
        assert!(
            matches!(&r4, Response::Error { code, .. } if *code == ErrorCode::Overloaded),
            "{r4:?}"
        );
        // Owner disconnects: the round passes to conn 2, then a release
        // passes it to conn 3.
        tx.send(Command::Disconnect { conn: 1 }).unwrap();
        let g2 = w2_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            g2,
            Response::Claimed {
                t: 0,
                pending: None
            }
        );
        let rel = rpc(&tx, |reply| Command::Release { conn: 2, reply });
        assert_eq!(rel, Response::ReleaseOk);
        let g3 = w3_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(g3, Response::Claimed { .. }), "{g3:?}");
        drop(tx);
        handle.join().unwrap();
    }

    #[test]
    fn pipelined_admission_promotes_buffered_proposals_in_order() {
        let (tx, _shutdown, handle) = spawn_actor_with(
            "pipelined",
            DurableOptions::new().with_fsync(FsyncPolicy::Never),
            2,
        );
        // Both rounds granted concurrently, in round order.
        let g1 = rpc(&tx, |reply| Command::Claim {
            conn: 1,
            enqueued: Instant::now(),
            reply,
        });
        assert_eq!(
            g1,
            Response::Claimed {
                t: 0,
                pending: None
            }
        );
        let g2 = rpc(&tx, |reply| Command::Claim {
            conn: 2,
            enqueued: Instant::now(),
            reply,
        });
        assert_eq!(
            g2,
            Response::Claimed {
                t: 1,
                pending: None
            }
        );
        // A future-round holder has nothing to answer yet.
        let early = rpc(&tx, |reply| Command::Feedback {
            conn: 2,
            accepts: vec![true],
            reply,
        });
        assert!(
            matches!(&early, Response::Error { code, .. } if *code == ErrorCode::NoPendingProposal),
            "{early:?}"
        );
        // Round 1's proposal arrives before round 0 even proposed: it
        // is buffered (and speculatively scored — LinUcb is RNG-free),
        // with the reply withheld until promotion.
        let (p2_tx, p2_rx) = mpsc::channel();
        tx.send(Command::Propose {
            conn: 2,
            user_capacity: 1,
            num_events: 4,
            dim: 2,
            contexts: vec![0.25; 8],
            reply: p2_tx,
        })
        .unwrap();
        // A second early proposal on the same grant is refused.
        let dup = rpc(&tx, |reply| Command::Propose {
            conn: 2,
            user_capacity: 1,
            num_events: 4,
            dim: 2,
            contexts: vec![0.25; 8],
            reply,
        });
        assert!(
            matches!(&dup, Response::Error { code, .. } if *code == ErrorCode::FeedbackPending),
            "{dup:?}"
        );
        assert!(
            p2_rx.recv_timeout(Duration::from_millis(100)).is_err(),
            "buffered proposal must not execute before its round"
        );
        // Head round runs; its feedback promotes the buffered proposal.
        let resp = rpc(&tx, |reply| Command::Propose {
            conn: 1,
            user_capacity: 1,
            num_events: 4,
            dim: 2,
            contexts: vec![0.5; 8],
            reply,
        });
        let arrangement = match resp {
            Response::Proposed { t: 0, arrangement } => arrangement,
            other => panic!("{other:?}"),
        };
        let resp = rpc(&tx, |reply| Command::Feedback {
            conn: 1,
            accepts: vec![true; arrangement.len()],
            reply,
        });
        assert!(
            matches!(resp, Response::FeedbackOk { t: 0, .. }),
            "{resp:?}"
        );
        let promoted = p2_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let arrangement = match promoted {
            Response::Proposed { t: 1, arrangement } => arrangement,
            other => panic!("{other:?}"),
        };
        let resp = rpc(&tx, |reply| Command::Feedback {
            conn: 2,
            accepts: vec![true; arrangement.len()],
            reply,
        });
        assert!(
            matches!(resp, Response::FeedbackOk { t: 1, .. }),
            "{resp:?}"
        );
        drop(tx);
        let report = handle.join().unwrap();
        assert_eq!(report.rounds_completed, 2);
        assert!(report.error.is_none());
    }

    #[test]
    fn disconnected_future_grant_is_regranted_unproposed() {
        let (tx, _shutdown, handle) = spawn_actor_with(
            "future-drop",
            DurableOptions::new().with_fsync(FsyncPolicy::Never),
            2,
        );
        let g1 = rpc(&tx, |reply| Command::Claim {
            conn: 1,
            enqueued: Instant::now(),
            reply,
        });
        assert!(matches!(g1, Response::Claimed { t: 0, .. }));
        let g2 = rpc(&tx, |reply| Command::Claim {
            conn: 2,
            enqueued: Instant::now(),
            reply,
        });
        assert!(matches!(g2, Response::Claimed { t: 1, .. }));
        // conn 2 buffers a (speculated) proposal, then dies: the slot is
        // re-granted under the same round number and the speculative
        // stash is discarded with the proposal it was computed from.
        let (p2_tx, _p2_rx) = mpsc::channel();
        tx.send(Command::Propose {
            conn: 2,
            user_capacity: 1,
            num_events: 4,
            dim: 2,
            contexts: vec![0.25; 8],
            reply: p2_tx,
        })
        .unwrap();
        tx.send(Command::Disconnect { conn: 2 }).unwrap();
        let g3 = rpc(&tx, |reply| Command::Claim {
            conn: 3,
            enqueued: Instant::now(),
            reply,
        });
        assert_eq!(
            g3,
            Response::Claimed {
                t: 1,
                pending: None
            }
        );
        // Both rounds complete normally, with different contexts for
        // round 1 than the dropped proposal carried.
        for (conn, contexts) in [(1u64, vec![0.5; 8]), (3, vec![0.75; 8])] {
            let resp = rpc(&tx, |reply| Command::Propose {
                conn,
                user_capacity: 1,
                num_events: 4,
                dim: 2,
                contexts,
                reply,
            });
            let arrangement = match resp {
                Response::Proposed { arrangement, .. } => arrangement,
                other => panic!("{other:?}"),
            };
            let resp = rpc(&tx, |reply| Command::Feedback {
                conn,
                accepts: vec![true; arrangement.len()],
                reply,
            });
            assert!(matches!(resp, Response::FeedbackOk { .. }), "{resp:?}");
        }
        drop(tx);
        let report = handle.join().unwrap();
        assert_eq!(report.rounds_completed, 2);
        assert!(report.error.is_none());
    }

    #[test]
    fn shutdown_drains_waiters() {
        let (tx, shutdown, handle) = spawn_actor("drain");
        let r1 = rpc(&tx, |reply| Command::Claim {
            conn: 1,
            enqueued: Instant::now(),
            reply,
        });
        assert!(matches!(r1, Response::Claimed { .. }));
        let (w2_tx, w2_rx) = mpsc::channel();
        tx.send(Command::Claim {
            conn: 2,
            enqueued: Instant::now(),
            reply: w2_tx,
        })
        .unwrap();
        let r = rpc(&tx, |reply| Command::Shutdown { reply });
        assert_eq!(r, Response::ShutdownOk);
        assert!(shutdown.load(Ordering::SeqCst));
        let g2 = w2_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(
            matches!(&g2, Response::Error { code, .. } if *code == ErrorCode::ShuttingDown),
            "{g2:?}"
        );
        // New claims are refused while draining.
        let r3 = rpc(&tx, |reply| Command::Claim {
            conn: 3,
            enqueued: Instant::now(),
            reply,
        });
        assert!(
            matches!(&r3, Response::Error { code, .. } if *code == ErrorCode::ShuttingDown),
            "{r3:?}"
        );
        drop(tx);
        handle.join().unwrap();
    }
}

//! The TCP server: a listener + worker thread pool in front of the
//! service actor.
//!
//! Thread layout (all inside one `crossbeam::thread::scope`, itself
//! inside a single owning `std::thread`):
//!
//! ```text
//!             accept loop (non-blocking poll)
//!                  │ TcpStream
//!                  ▼
//!            ConnQueue (Mutex + Condvar, bounded)
//!        ┌────────┼────────┐
//!        ▼        ▼        ▼
//!     worker 0 worker 1 … worker N-1      ── frame I/O, decode,
//!        │        │        │                 validation, encode
//!        └───────►┴◄───────┘
//!             mpsc::Sender<Command>
//!                  ▼
//!            service actor (1 thread)     ── owns DurableArrangementService,
//!                                            strictly sequential rounds
//! ```
//!
//! Each worker serves one connection at a time for that connection's
//! whole life; connections beyond the pool wait in the queue (and
//! beyond the queue, are refused at accept). Reads are polled with a
//! short timeout so every worker notices shutdown, enforces the idle
//! and mid-frame read deadlines, and still blocks cheaply when quiet.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fasea_store::{parse_raw_frame, write_raw_frame, FrameParse};

use crate::actor::{CloseReport, Command, ServiceActor};
use crate::backend::BackendService;
use crate::metrics::Metrics;
use crate::proto::{
    decode_request, encode_response, ErrorCode, Request, Response, CLIENT_MAGIC, PROTOCOL_VERSION,
};

/// Tunables for [`Server::spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Claim queue depth before `Overloaded` is returned.
    pub max_inflight: usize,
    /// Accepted-but-unserved connections held before refusing more.
    pub conn_backlog: usize,
    /// Deadline for completing a frame once its first byte arrives.
    pub read_timeout: Duration,
    /// Close a connection after this long with no complete frame.
    pub idle_timeout: Duration,
    /// How long a worker waits for the actor to answer one command
    /// (covers the parked-claim wait).
    pub claim_wait_timeout: Duration,
    /// Poll granularity for non-blocking accept and timed reads.
    pub poll_interval: Duration,
    /// Period of the operational log line (`None` disables it).
    pub stats_interval: Option<Duration>,
    /// Request a service snapshot every this many completed rounds
    /// (`None` disables periodic snapshots; the close-time snapshot
    /// always happens). With group commit the snapshot runs on the
    /// background snapshotter and does not stall the round loop.
    pub snapshot_every_rounds: Option<u64>,
    /// Event lifecycle schedule: capacity re-plans the actor applies
    /// (and durably logs) before granting the matching round. Empty by
    /// default. Clients driving a local verification replica must use
    /// the same schedule to stay byte-identical.
    pub churn: fasea_core::ChurnSchedule,
    /// Maximum concurrently granted rounds (optimistic admission).
    /// 1 (the default) is strictly sequential; higher depths overlap
    /// future rounds' network turnaround and speculative scoring while
    /// keeping the WAL bit-equal to depth 1 — see the actor docs.
    pub pipeline_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_inflight: 64,
            conn_backlog: 128,
            read_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(300),
            claim_wait_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(50),
            stats_interval: Some(Duration::from_secs(10)),
            snapshot_every_rounds: None,
            churn: fasea_core::ChurnSchedule::none(),
            pipeline_depth: 1,
        }
    }
}

/// What [`ServerHandle::join`] returns after a full drain.
pub struct ServeReport {
    /// The actor's close report (rounds, final snapshot, close error).
    pub close: CloseReport,
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::initiate_shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    thread: std::thread::JoinHandle<ServeReport>,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Raises the shutdown flag: the listener stops accepting, parked
    /// claims are refused, in-flight rounds drain, the WAL is synced
    /// and snapshotted. Idempotent; also raised by the `SHUTDOWN` verb.
    pub fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once shutdown has been requested (by this handle, the
    /// `SHUTDOWN` verb, or a fatal store error).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the server has fully drained and closed the
    /// service.
    ///
    /// # Panics
    /// If a server thread panicked.
    pub fn join(self) -> ServeReport {
        self.thread.join().expect("server thread panicked")
    }
}

/// Bounded handoff queue between the accept loop and the workers.
struct ConnQueue {
    inner: Mutex<ConnQueueState>,
    cv: Condvar,
    capacity: usize,
}

struct ConnQueueState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(ConnQueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a connection; `false` means full or closed (caller
    /// drops the stream, i.e. refuses the connection).
    fn push(&self, stream: TcpStream) -> bool {
        let mut st = self.inner.lock().unwrap();
        if st.closed || st.conns.len() >= self.capacity {
            return false;
        }
        st.conns.push_back(stream);
        self.cv.notify_one();
        true
    }

    /// Blocks for the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut st = self.inner.lock().unwrap();
        loop {
            if let Some(stream) = st.conns.pop_front() {
                return Some(stream);
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn close(&self) {
        let mut st = self.inner.lock().unwrap();
        st.closed = true;
        st.conns.clear();
        self.cv.notify_all();
    }
}

/// The FASEA network server.
pub struct Server;

impl Server {
    /// Binds `addr`, takes ownership of `svc`, and spawns the serving
    /// threads. Returns once the listener is bound — rounds served so
    /// far and the final state are reported by [`ServerHandle::join`].
    ///
    /// # Errors
    /// Any socket-level failure binding the listener.
    pub fn spawn<A: ToSocketAddrs>(
        svc: impl Into<BackendService>,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let svc = svc.into();
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let metrics = Arc::clone(&metrics);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("fasea-serve".into())
                .spawn(move || run_server(listener, svc, config, metrics, shutdown))?
        };
        Ok(ServerHandle {
            local_addr,
            shutdown,
            metrics,
            thread,
        })
    }
}

fn run_server(
    listener: TcpListener,
    svc: BackendService,
    config: ServerConfig,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
) -> ServeReport {
    let (cmd_tx, cmd_rx) = mpsc::channel::<Command>();
    let actor = ServiceActor::new(
        svc,
        cmd_rx,
        Arc::clone(&metrics),
        Arc::clone(&shutdown),
        config.max_inflight,
        config.poll_interval,
        config.pipeline_depth,
        config.snapshot_every_rounds,
        config.churn.clone(),
    );
    let queue = ConnQueue::new(config.conn_backlog);
    let conn_ids = AtomicU64::new(1);

    let close = crossbeam::thread::scope(|s| {
        let actor_handle = s.spawn(|_| actor.run());
        for _ in 0..config.workers.max(1) {
            let cmd_tx = cmd_tx.clone();
            let queue = &queue;
            let conn_ids = &conn_ids;
            let config = &config;
            let metrics = &metrics;
            let shutdown = &shutdown;
            s.spawn(move |_| {
                while let Some(stream) = queue.pop() {
                    let conn = conn_ids.fetch_add(1, Ordering::Relaxed);
                    serve_connection(stream, conn, &cmd_tx, config, metrics, shutdown);
                    let _ = cmd_tx.send(Command::Disconnect { conn });
                    metrics.connections_closed.incr();
                }
            });
        }

        // Accept loop, on the scope's own closure thread.
        let mut last_stats = Instant::now();
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    metrics.connections_opened.incr();
                    if !queue.push(stream) {
                        // Dropping the stream closes it: backlog full.
                        metrics.connections_closed.incr();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(config.poll_interval);
                }
                Err(_) => std::thread::sleep(config.poll_interval),
            }
            if let Some(interval) = config.stats_interval {
                if last_stats.elapsed() >= interval {
                    eprintln!("[fasea-serve] {}", metrics.log_line());
                    last_stats = Instant::now();
                }
            }
        }
        queue.close();
        drop(cmd_tx);
        actor_handle.join().expect("actor thread panicked")
    })
    .expect("server scope panicked");
    ServeReport { close }
}

/// Per-session state tracked by the worker.
struct Session {
    conn: u64,
    /// Whether this session currently owns the in-flight round (set by
    /// `CLAIMED`, cleared by `FEEDBACK_OK` / `RELEASE_OK`).
    owns_round: bool,
}

enum After {
    Continue,
    Close,
}

fn serve_connection(
    mut stream: TcpStream,
    conn: u64,
    cmd_tx: &Sender<Command>,
    config: &ServerConfig,
    metrics: &Metrics,
    shutdown: &AtomicBool,
) {
    if stream.set_read_timeout(Some(config.poll_interval)).is_err()
        || stream.set_write_timeout(Some(config.read_timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let mut session = Session {
        conn,
        owns_round: false,
    };
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut tmp = [0u8; 8192];
    let mut last_frame = Instant::now();
    let mut frame_started: Option<Instant> = None;

    loop {
        // Drain complete frames already buffered.
        let decode_started = Instant::now();
        match parse_raw_frame(&buf) {
            FrameParse::Frame { payload, consumed } => {
                metrics.decode_us.observe(decode_started.elapsed());
                let after = handle_payload(
                    &payload,
                    &mut stream,
                    &mut session,
                    cmd_tx,
                    config,
                    metrics,
                    shutdown,
                );
                buf.drain(..consumed);
                last_frame = Instant::now();
                frame_started = if buf.is_empty() {
                    None
                } else {
                    Some(Instant::now())
                };
                match after {
                    After::Continue => continue,
                    After::Close => return,
                }
            }
            FrameParse::Bad { why } => {
                metrics.decode_errors.incr();
                metrics.protocol_errors.incr();
                // The byte stream is desynchronised — answer once,
                // typed, then hang up.
                let _ = send_response(
                    &mut stream,
                    0,
                    &Response::Error {
                        code: ErrorCode::BadFrame,
                        detail: why.to_string(),
                    },
                );
                return;
            }
            FrameParse::NeedMore => {}
        }

        if shutdown.load(Ordering::SeqCst) && !session.owns_round && buf.is_empty() {
            return;
        }

        match stream.read(&mut tmp) {
            Ok(0) => return,
            Ok(n) => {
                if frame_started.is_none() {
                    frame_started = Some(Instant::now());
                }
                buf.extend_from_slice(&tmp[..n]);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if let Some(started) = frame_started {
                    if started.elapsed() >= config.read_timeout {
                        metrics.decode_errors.incr();
                        metrics.protocol_errors.incr();
                        let _ = send_response(
                            &mut stream,
                            0,
                            &Response::Error {
                                code: ErrorCode::BadFrame,
                                detail: "frame read timed out".into(),
                            },
                        );
                        return;
                    }
                }
                if last_frame.elapsed() >= config.idle_timeout {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn handle_payload(
    payload: &[u8],
    stream: &mut TcpStream,
    session: &mut Session,
    cmd_tx: &Sender<Command>,
    config: &ServerConfig,
    metrics: &Metrics,
    shutdown: &AtomicBool,
) -> After {
    let (request_id, request) = match decode_request(payload) {
        Ok(decoded) => decoded,
        Err(why) => {
            // The frame passed its checksum, so the stream is still
            // synchronised: answer typed and keep the session.
            metrics.decode_errors.incr();
            metrics.protocol_errors.incr();
            return match send_response(
                stream,
                0,
                &Response::Error {
                    code: ErrorCode::BadFrame,
                    detail: why.to_string(),
                },
            ) {
                Ok(()) => After::Continue,
                Err(_) => After::Close,
            };
        }
    };
    metrics.requests.incr();

    // HELLO is validated here; everything else is the actor's business.
    if let Request::Hello { magic, version } = request {
        if magic != CLIENT_MAGIC || version != PROTOCOL_VERSION {
            metrics.protocol_errors.incr();
            let resp = Response::Error {
                code: ErrorCode::BadHello,
                detail: format!(
                    "magic={magic:#010x} version={version} (want {CLIENT_MAGIC:#010x} v{PROTOCOL_VERSION})"
                ),
            };
            return match send_response(stream, request_id, &resp) {
                Ok(()) => After::Continue,
                Err(_) => After::Close,
            };
        }
    }
    if shutdown.load(Ordering::SeqCst) && matches!(request, Request::Claim) {
        metrics.protocol_errors.incr();
        let resp = Response::Error {
            code: ErrorCode::ShuttingDown,
            detail: "server is draining".into(),
        };
        return match send_response(stream, request_id, &resp) {
            Ok(()) => After::Continue,
            Err(_) => After::Close,
        };
    }

    let (reply_tx, reply_rx) = mpsc::channel();
    let conn = session.conn;
    let command = match request {
        Request::Hello { .. } => Command::Hello { reply: reply_tx },
        Request::Claim => Command::Claim {
            conn,
            enqueued: Instant::now(),
            reply: reply_tx,
        },
        Request::Propose {
            user_capacity,
            num_events,
            dim,
            contexts,
        } => Command::Propose {
            conn,
            user_capacity,
            num_events,
            dim,
            contexts,
            reply: reply_tx,
        },
        Request::Feedback { accepts } => Command::Feedback {
            conn,
            accepts,
            reply: reply_tx,
        },
        Request::Release => Command::Release {
            conn,
            reply: reply_tx,
        },
        Request::Stats => Command::Stats { reply: reply_tx },
        Request::Shutdown => Command::Shutdown { reply: reply_tx },
    };
    if cmd_tx.send(command).is_err() {
        // Actor is gone (fatal store error during drain): tell the
        // client and hang up.
        let _ = send_response(
            stream,
            request_id,
            &Response::Error {
                code: ErrorCode::ShuttingDown,
                detail: "service actor stopped".into(),
            },
        );
        return After::Close;
    }
    let response = match reply_rx.recv_timeout(config.claim_wait_timeout) {
        Ok(resp) => resp,
        Err(_) => {
            // Either the claim outlived its patience budget or the
            // actor died mid-request. Closing sends Disconnect, which
            // reclaims anything granted to us after we stopped waiting.
            let _ = send_response(
                stream,
                request_id,
                &Response::Error {
                    code: ErrorCode::Internal,
                    detail: "request timed out inside the server".into(),
                },
            );
            return After::Close;
        }
    };
    match &response {
        Response::Claimed { .. } => session.owns_round = true,
        Response::FeedbackOk { .. } | Response::ReleaseOk => session.owns_round = false,
        _ => {}
    }
    match send_response(stream, request_id, &response) {
        Ok(()) => After::Continue,
        Err(_) => After::Close,
    }
}

fn send_response(stream: &mut TcpStream, request_id: u64, response: &Response) -> io::Result<()> {
    let payload = encode_response(request_id, response);
    write_raw_frame(stream, &payload)?;
    stream.flush()
}

//! The actor's service backend: a single-actor
//! [`DurableArrangementService`] or a sharded
//! [`ShardedArrangementService`], behind one delegating enum.
//!
//! The two services expose the same surface by design (the sharded one
//! is byte-identical to the single-actor one — see `fasea-shard`), so
//! the actor state machine is written once against [`BackendService`]
//! and the only sharding-aware code in this crate is the metrics drain
//! in [`BackendService::drain_shard_metrics`].

use std::path::PathBuf;

use fasea_core::{Arrangement, UserArrival};
use fasea_shard::ShardedArrangementService;
use fasea_sim::{ArrangementService, DurableArrangementService, ServiceError, ServiceHealth};
use fasea_store::{CommitNotifier, CommitObserver};

use crate::metrics::Metrics;

/// Either service the actor can own. Construct via the `From` impls
/// (so `Server::spawn` and `ServiceActor::new` accept both transparently).
pub enum BackendService {
    /// The unsharded durable service.
    Single(DurableArrangementService),
    /// The N-shard service with cross-shard two-phase commit.
    Sharded(ShardedArrangementService),
}

impl From<DurableArrangementService> for BackendService {
    fn from(svc: DurableArrangementService) -> Self {
        BackendService::Single(svc)
    }
}

impl From<ShardedArrangementService> for BackendService {
    fn from(svc: ShardedArrangementService) -> Self {
        BackendService::Sharded(svc)
    }
}

macro_rules! delegate {
    ($self:ident . $method:ident ( $($arg:expr),* )) => {
        match $self {
            BackendService::Single(s) => s.$method($($arg),*),
            BackendService::Sharded(s) => s.$method($($arg),*),
        }
    };
}

impl BackendService {
    /// Number of shards (1 for the single-actor backend).
    pub fn num_shards(&self) -> usize {
        match self {
            BackendService::Single(_) => 1,
            BackendService::Sharded(s) => s.num_shards(),
        }
    }

    /// Feeds any pending shard timing / queue-depth samples into the
    /// metrics registry. A no-op on the single-actor backend, so the
    /// three shard histograms stay empty there.
    pub fn drain_shard_metrics(&self, metrics: &Metrics) {
        let BackendService::Sharded(s) = self else {
            return;
        };
        if let Some(us) = s.take_route_us() {
            metrics.shard_route_us.observe_value(us);
        }
        if let Some(us) = s.take_commit_us() {
            metrics.cross_shard_commit_us.observe_value(us);
        }
        for depth in s.take_queue_depths().into_iter().flatten() {
            metrics.shard_queue_depth.observe_value(depth);
        }
    }

    /// See [`DurableArrangementService::propose`].
    pub fn propose(&mut self, user: &UserArrival) -> Result<Arrangement, ServiceError> {
        delegate!(self.propose(user))
    }

    /// See [`DurableArrangementService::propose_deferred`].
    pub fn propose_deferred(
        &mut self,
        user: &UserArrival,
    ) -> Result<(Arrangement, u64), ServiceError> {
        delegate!(self.propose_deferred(user))
    }

    /// See [`DurableArrangementService::feedback`].
    pub fn feedback(&mut self, accepted: &[bool]) -> Result<u32, ServiceError> {
        delegate!(self.feedback(accepted))
    }

    /// See [`DurableArrangementService::feedback_deferred`].
    pub fn feedback_deferred(&mut self, accepted: &[bool]) -> Result<(u32, u64), ServiceError> {
        delegate!(self.feedback_deferred(accepted))
    }

    /// See [`DurableArrangementService::lifecycle`] — an event capacity
    /// re-plan, fanned out to the owning shard on the sharded backend.
    pub fn lifecycle(&mut self, event: u32, capacity: u32) -> Result<u32, ServiceError> {
        delegate!(self.lifecycle(event, capacity))
    }

    /// See [`DurableArrangementService::sync`].
    pub fn sync(&mut self) -> Result<(), ServiceError> {
        delegate!(self.sync())
    }

    /// See [`DurableArrangementService::snapshot_async`].
    pub fn snapshot_async(&mut self) -> Result<(), ServiceError> {
        delegate!(self.snapshot_async())
    }

    /// See [`DurableArrangementService::durable_lsn`].
    pub fn durable_lsn(&self) -> u64 {
        delegate!(self.durable_lsn())
    }

    /// See [`DurableArrangementService::group_commit_enabled`].
    pub fn group_commit_enabled(&self) -> bool {
        delegate!(self.group_commit_enabled())
    }

    /// See [`DurableArrangementService::set_commit_observer`].
    pub fn set_commit_observer(&self, observer: Option<CommitObserver>) {
        delegate!(self.set_commit_observer(observer))
    }

    /// See [`DurableArrangementService::set_commit_notifier`].
    pub fn set_commit_notifier(&self, notifier: Option<CommitNotifier>) {
        delegate!(self.set_commit_notifier(notifier))
    }

    /// See [`DurableArrangementService::service`].
    pub fn service(&self) -> &ArrangementService {
        delegate!(self.service())
    }

    /// See [`DurableArrangementService::prefetch_scores`] — legal on
    /// both backends (sharded scoring stays on the coordinator), writes
    /// nothing to any WAL.
    pub fn prefetch_scores(&mut self, t: u64, user: &UserArrival) -> Result<(), ServiceError> {
        delegate!(self.prefetch_scores(t, user))
    }

    /// See [`DurableArrangementService::model_epoch`].
    pub fn model_epoch(&self) -> u64 {
        delegate!(self.model_epoch())
    }

    /// See [`DurableArrangementService::clear_prefetch`] — invalidates
    /// any speculative stash whose buffered proposal was dropped.
    pub fn clear_prefetch(&mut self) {
        delegate!(self.clear_prefetch())
    }

    /// Cumulative prefetch hit/recompute counters of the policy
    /// workspace (the actor drains deltas into its metrics).
    pub fn prefetch_stats(&self) -> fasea_bandit::PrefetchStats {
        self.service().policy().workspace().prefetch_stats()
    }

    /// Cumulative model-tier counters of the policy workspace —
    /// cohort-prior select hits and sketch-record promotions, published
    /// by the personalized policies (all-zero for global policies). The
    /// actor drains deltas into its metrics.
    pub fn model_tier_stats(&self) -> fasea_bandit::ModelTierStats {
        self.service().policy().workspace().model_tier_stats()
    }

    /// See [`DurableArrangementService::pending_arrangement`].
    pub fn pending_arrangement(&self) -> Option<&Arrangement> {
        delegate!(self.pending_arrangement())
    }

    /// See [`DurableArrangementService::rounds_completed`].
    pub fn rounds_completed(&self) -> u64 {
        delegate!(self.rounds_completed())
    }

    /// See [`DurableArrangementService::health`].
    pub fn health(&self) -> ServiceHealth {
        delegate!(self.health())
    }

    /// See [`DurableArrangementService::close`].
    pub fn close(self) -> Result<Option<PathBuf>, ServiceError> {
        delegate!(self.close())
    }
}

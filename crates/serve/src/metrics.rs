//! Lock-free serving metrics: named atomic counters plus fixed-bucket
//! latency histograms, cheap enough to update on every request and
//! snapshot without pausing the workers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::proto::WireHistogram;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive, microseconds) of the histogram buckets; the
/// implicit final bucket is unbounded.
const BUCKET_BOUNDS_US: [u64; 17] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    1_000_000,
];

const NUM_BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// A fixed-bucket latency histogram in microseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one duration.
    pub fn observe(&self, d: Duration) {
        self.observe_value(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one raw value against the same bucket bounds. Used for
    /// unit-less histograms (e.g. batch sizes); the wire summary reuses
    /// the microsecond field names regardless of unit.
    pub fn observe_value(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(NUM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bucket bound covering quantile `q` in `[0, 1]`. Returns
    /// `max_us` for the unbounded bucket (and for an empty histogram, 0).
    fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i < BUCKET_BOUNDS_US.len() {
                    BUCKET_BOUNDS_US[i]
                } else {
                    self.max_us.load(Ordering::Relaxed)
                };
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Summarises this histogram for the wire.
    pub fn snapshot(&self, name: &str) -> WireHistogram {
        WireHistogram {
            name: name.to_string(),
            count: self.count(),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            p50_us: self.quantile_us(0.50),
            p95_us: self.quantile_us(0.95),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

macro_rules! registry {
    (
        counters { $( $(#[$cmeta:meta])* $counter:ident ),+ $(,)? }
        histograms { $( $(#[$hmeta:meta])* $hist:ident ),+ $(,)? }
    ) => {
        /// The serving-layer metrics registry. One instance per server,
        /// shared by every worker thread and the service actor.
        #[derive(Debug, Default)]
        pub struct Metrics {
            $( $(#[$cmeta])* pub $counter: Counter, )+
            $( $(#[$hmeta])* pub $hist: Histogram, )+
        }

        impl Metrics {
            /// All counters as `(name, value)` pairs, in declaration order.
            pub fn wire_counters(&self) -> Vec<(String, u64)> {
                vec![ $( (stringify!($counter).to_string(), self.$counter.get()), )+ ]
            }

            /// All histogram summaries, in declaration order.
            pub fn wire_histograms(&self) -> Vec<WireHistogram> {
                vec![ $( self.$hist.snapshot(stringify!($hist)), )+ ]
            }
        }
    };
}

registry! {
    counters {
        /// TCP connections accepted.
        connections_opened,
        /// TCP connections closed (any reason).
        connections_closed,
        /// Requests decoded and dispatched.
        requests,
        /// `CLAIM` requests granted or queued.
        claims,
        /// Proposals durably logged.
        proposes,
        /// Feedback rounds completed.
        feedbacks,
        /// Rounds released un-proposed.
        releases,
        /// `STATS` requests served.
        stats_requests,
        /// Frames or payloads that failed to decode.
        decode_errors,
        /// Typed `ERROR` responses sent (any code).
        protocol_errors,
        /// Claims rejected because the wait queue was full.
        overloaded,
        /// Rounds re-granted after their owner disconnected.
        reassigned_rounds,
        /// Rounds whose speculatively prefetched score set was reused
        /// verbatim at propose time.
        prefetch_hit,
        /// Rounds whose prefetched score set was stale (model epoch
        /// moved) and was deterministically recomputed.
        prefetch_recompute,
        /// Optimistic admissions invalidated by an intervening model
        /// update — resolved in round order by re-scoring the loser.
        conflict_replays,
        /// Cold-user selections served through a materialized cohort
        /// prior (personalized policies with `--cohorts` only).
        cohort_hits,
        /// Promotions that reconstructed a user model from its rank-r
        /// sketch record (`--state sketched` only).
        sketch_promotions,
    }
    histograms {
        /// Service-side propose latency (validate + policy + WAL append).
        propose_us,
        /// Service-side feedback latency (update + WAL append).
        feedback_us,
        /// Frame decode + payload parse latency.
        decode_us,
        /// Time a `CLAIM` waited in the grant queue.
        queue_wait_us,
        /// Records per group-commit batch (unit-less; one observation
        /// per fsync, so `count` is the number of batch commits).
        fsync_batch_size,
        /// Queue-to-durable latency of the oldest record in each
        /// group-commit batch.
        commit_latency_us,
        /// Candidate fan-out (route + merge) latency across the shard
        /// actors; empty on a single-actor server.
        shard_route_us,
        /// Cross-shard two-phase commit latency (prepare fan-out through
        /// commit fan-out); empty on a single-actor server.
        cross_shard_commit_us,
        /// Peak per-shard request-queue depth sampled at each fan-out
        /// (unit-less; one observation per shard per drain).
        shard_queue_depth,
        /// Granted in-flight rounds at each grant (unit-less; depth 1
        /// means fully sequential admission).
        pipeline_depth,
    }
}

impl Metrics {
    /// One-line operational summary for the periodic server log.
    pub fn log_line(&self) -> String {
        format!(
            "conns={}/{} requests={} claims={} proposes={} feedbacks={} releases={} \
             errors={{decode={} protocol={} overloaded={}}} reassigned={} \
             propose_p95≤{}µs feedback_p95≤{}µs queue_p95≤{}µs",
            self.connections_opened.get(),
            self.connections_closed.get(),
            self.requests.get(),
            self.claims.get(),
            self.proposes.get(),
            self.feedbacks.get(),
            self.releases.get(),
            self.decode_errors.get(),
            self.protocol_errors.get(),
            self.overloaded.get(),
            self.reassigned_rounds.get(),
            self.propose_us.quantile_us(0.95),
            self.feedback_us.quantile_us(0.95),
            self.queue_wait_us.quantile_us(0.95),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [3u64, 3, 3, 3, 3, 3, 3, 3, 3, 700] {
            h.observe(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 10);
        // Nine of ten observations land in the ≤5µs bucket.
        assert_eq!(h.quantile_us(0.50), 5);
        assert_eq!(h.quantile_us(0.90), 5);
        // The p95 rank (10th observation) lands in the ≤1000µs bucket.
        assert_eq!(h.quantile_us(0.95), 1_000);
        let snap = h.snapshot("x");
        assert_eq!(snap.count, 10);
        assert_eq!(snap.sum_us, 9 * 3 + 700);
        assert_eq!(snap.max_us, 700);
    }

    #[test]
    fn histogram_overflow_bucket_reports_max() {
        let h = Histogram::default();
        h.observe(Duration::from_secs(3));
        assert_eq!(h.quantile_us(0.5), 3_000_000);
    }

    #[test]
    fn registry_exports_in_declaration_order() {
        let m = Metrics::default();
        m.requests.add(2);
        let counters = m.wire_counters();
        assert_eq!(counters[0].0, "connections_opened");
        assert!(counters.iter().any(|(n, v)| n == "requests" && *v == 2));
        assert!(counters.iter().any(|(n, _)| n == "prefetch_hit"));
        assert!(counters.iter().any(|(n, _)| n == "prefetch_recompute"));
        assert!(counters.iter().any(|(n, _)| n == "conflict_replays"));
        assert!(counters.iter().any(|(n, _)| n == "cohort_hits"));
        assert!(counters.iter().any(|(n, _)| n == "sketch_promotions"));
        let hists = m.wire_histograms();
        assert_eq!(hists[0].name, "propose_us");
        assert_eq!(hists.len(), 10);
        assert!(hists.iter().any(|h| h.name == "pipeline_depth"));
        assert!(hists.iter().any(|h| h.name == "fsync_batch_size"));
        assert!(hists.iter().any(|h| h.name == "commit_latency_us"));
        assert!(hists.iter().any(|h| h.name == "shard_route_us"));
        assert!(hists.iter().any(|h| h.name == "cross_shard_commit_us"));
        assert!(hists.iter().any(|h| h.name == "shard_queue_depth"));
        assert!(!m.log_line().is_empty());
    }

    #[test]
    fn observe_value_buckets_raw_values() {
        let h = Histogram::default();
        for batch in [1u64, 8, 8, 64] {
            h.observe_value(batch);
        }
        assert_eq!(h.count(), 4);
        let snap = h.snapshot("fsync_batch_size");
        assert_eq!(snap.sum_us, 81);
        assert_eq!(snap.max_us, 64);
        // Three of four observations are ≤ 10.
        assert_eq!(h.quantile_us(0.75), 10);
    }
}

//! A blocking FASEA protocol client with automatic reconnection.
//!
//! [`ServeClient`] speaks the framed wire protocol over one TCP
//! connection and re-handshakes transparently after transport failures
//! (the server survives client churn — an owned round is simply
//! re-granted to the next claimant — so reconnect-and-retry is safe for
//! `CLAIM`/`STATS`, and the loadgen drives its retry loop for the
//! rest).

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use fasea_store::{parse_raw_frame, write_raw_frame, FrameParse};

use crate::proto::{
    decode_response, encode_request, ErrorCode, Request, Response, WireStats, CLIENT_MAGIC,
    PROTOCOL_VERSION,
};

/// What [`ServeClient`] calls can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write, or clean EOF).
    Io(io::Error),
    /// The server answered with a typed `ERROR`.
    Protocol {
        /// The wire error code.
        code: ErrorCode,
        /// The server's human-readable detail.
        detail: String,
    },
    /// A frame arrived but its payload would not decode.
    Malformed(&'static str),
    /// The server answered with a verb this call cannot accept.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol { code, detail } => write!(f, "server error {code}: {detail}"),
            ClientError::Malformed(why) => write!(f, "malformed response: {why}"),
            ClientError::Unexpected(verb) => write!(f, "unexpected response verb {verb}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// `true` when reconnecting and retrying can help (transport-level
    /// failures only; typed protocol errors are the caller's problem).
    pub fn is_transport(&self) -> bool {
        matches!(self, ClientError::Io(_))
    }

    /// The typed code, if this is a protocol error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Protocol { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// The `HELLO_OK` handshake summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Service fingerprint (instance + policy).
    pub fingerprint: u64,
    /// Events in the served instance.
    pub num_events: u32,
    /// Context dimension.
    pub dim: u32,
    /// Rounds completed when the session opened.
    pub rounds_completed: u64,
    /// Whether a recovered proposal awaited feedback at handshake.
    pub has_pending: bool,
}

/// The result of a `CLAIM`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimedRound {
    /// The round index now owned by this session.
    pub t: u64,
    /// An already-logged proposal to answer directly (skip `PROPOSE`).
    pub pending: Option<Vec<u32>>,
}

/// Tunables for [`ServeClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-call read deadline. Must comfortably exceed the server's
    /// claim queue wait.
    pub read_timeout: Duration,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Reconnect attempts before giving up.
    pub reconnect_attempts: u32,
    /// Backoff between reconnect attempts (doubles each try).
    pub reconnect_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Duration::from_secs(60),
            connect_timeout: Duration::from_secs(5),
            reconnect_attempts: 10,
            reconnect_backoff: Duration::from_millis(100),
        }
    }
}

/// A blocking protocol client over one TCP connection.
pub struct ServeClient {
    addr: String,
    config: ClientConfig,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
    next_request_id: u64,
    info: Option<ServerInfo>,
}

impl ServeClient {
    /// Connects and handshakes. `addr` is kept for reconnects.
    ///
    /// # Errors
    /// Transport failures after the reconnect budget, or a typed
    /// handshake rejection.
    pub fn connect(addr: impl Into<String>, config: ClientConfig) -> Result<Self, ClientError> {
        let mut client = ServeClient {
            addr: addr.into(),
            config,
            stream: None,
            buf: Vec::new(),
            next_request_id: 1,
            info: None,
        };
        client.reconnect()?;
        Ok(client)
    }

    /// The handshake summary from the most recent (re)connect.
    pub fn info(&self) -> Option<ServerInfo> {
        self.info
    }

    /// Drops the current connection (the next call reconnects).
    pub fn disconnect(&mut self) {
        self.stream = None;
        self.buf.clear();
    }

    /// (Re)establishes the connection and re-handshakes, with
    /// exponential backoff across `reconnect_attempts` tries.
    ///
    /// # Errors
    /// The final attempt's failure.
    pub fn reconnect(&mut self) -> Result<ServerInfo, ClientError> {
        self.disconnect();
        let mut backoff = self.config.reconnect_backoff;
        let mut last: Option<ClientError> = None;
        for attempt in 0..self.config.reconnect_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(5));
            }
            match self.try_connect() {
                Ok(info) => return Ok(info),
                Err(e) if e.is_transport() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ClientError::Unexpected("no connect attempt ran")))
    }

    fn try_connect(&mut self) -> Result<ServerInfo, ClientError> {
        let mut resolved = self.addr.to_socket_addrs()?;
        let target = resolved
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "address did not resolve"))?;
        let stream = TcpStream::connect_timeout(&target, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.read_timeout))?;
        stream.set_nodelay(true)?;
        self.stream = Some(stream);
        self.buf.clear();
        match self.rpc(Request::Hello {
            magic: CLIENT_MAGIC,
            version: PROTOCOL_VERSION,
        })? {
            Response::HelloOk {
                fingerprint,
                num_events,
                dim,
                rounds_completed,
                has_pending,
            } => {
                let info = ServerInfo {
                    fingerprint,
                    num_events,
                    dim,
                    rounds_completed,
                    has_pending,
                };
                self.info = Some(info);
                Ok(info)
            }
            other => Err(unexpected(other)),
        }
    }

    /// Sends one request and waits for the matching response. A typed
    /// `ERROR` becomes [`ClientError::Protocol`]; transport failures
    /// drop the connection so the next call can reconnect.
    ///
    /// # Errors
    /// See [`ClientError`].
    pub fn rpc(&mut self, request: Request) -> Result<Response, ClientError> {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let payload = encode_request(request_id, &request);
        let result = self.rpc_inner(request_id, &payload);
        if matches!(
            result,
            Err(ClientError::Io(_)) | Err(ClientError::Malformed(_))
        ) {
            self.disconnect();
        }
        match result? {
            Response::Error { code, detail } => Err(ClientError::Protocol { code, detail }),
            resp => Ok(resp),
        }
    }

    fn rpc_inner(&mut self, request_id: u64, payload: &[u8]) -> Result<Response, ClientError> {
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "not connected"))?;
        write_raw_frame(&mut *stream, payload)?;
        stream.flush()?;
        let mut tmp = [0u8; 8192];
        loop {
            match parse_raw_frame(&self.buf) {
                FrameParse::Frame { payload, consumed } => {
                    self.buf.drain(..consumed);
                    let (id, response) =
                        decode_response(&payload).map_err(ClientError::Malformed)?;
                    if id != request_id {
                        // A stale reply (e.g. from before a timeout on a
                        // previous call) — skip it and keep reading.
                        continue;
                    }
                    return Ok(response);
                }
                FrameParse::Bad { why } => return Err(ClientError::Malformed(why)),
                FrameParse::NeedMore => {}
            }
            let n = stream.read(&mut tmp)?;
            if n == 0 {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.buf.extend_from_slice(&tmp[..n]);
        }
    }

    /// `CLAIM`: acquire the next round.
    ///
    /// # Errors
    /// Typed protocol errors (`Overloaded`, `ShuttingDown`, …) or
    /// transport failures.
    pub fn claim(&mut self) -> Result<ClaimedRound, ClientError> {
        match self.rpc(Request::Claim)? {
            Response::Claimed { t, pending } => Ok(ClaimedRound { t, pending }),
            other => Err(unexpected(other)),
        }
    }

    /// `PROPOSE`: submit this round's arrival and receive the
    /// arrangement.
    ///
    /// # Errors
    /// Typed protocol errors or transport failures.
    pub fn propose(
        &mut self,
        user_capacity: u32,
        num_events: u32,
        dim: u32,
        contexts: Vec<f64>,
    ) -> Result<(u64, Vec<u32>), ClientError> {
        match self.rpc(Request::Propose {
            user_capacity,
            num_events,
            dim,
            contexts,
        })? {
            Response::Proposed { t, arrangement } => Ok((t, arrangement)),
            other => Err(unexpected(other)),
        }
    }

    /// `FEEDBACK`: answer the pending proposal; returns `(t, reward)`.
    ///
    /// # Errors
    /// Typed protocol errors or transport failures.
    pub fn feedback(&mut self, accepts: &[bool]) -> Result<(u64, u32), ClientError> {
        match self.rpc(Request::Feedback {
            accepts: accepts.to_vec(),
        })? {
            Response::FeedbackOk { t, reward } => Ok((t, reward)),
            other => Err(unexpected(other)),
        }
    }

    /// `RELEASE`: give up an owned round without proposing.
    ///
    /// # Errors
    /// Typed protocol errors or transport failures.
    pub fn release(&mut self) -> Result<(), ClientError> {
        match self.rpc(Request::Release)? {
            Response::ReleaseOk => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// `STATS`: fetch the server's health + metrics snapshot.
    ///
    /// # Errors
    /// Typed protocol errors or transport failures.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.rpc(Request::Stats)? {
            Response::StatsOk(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// `SHUTDOWN`: ask the server to drain and stop.
    ///
    /// # Errors
    /// Typed protocol errors or transport failures.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.rpc(Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(response: Response) -> ClientError {
    ClientError::Unexpected(response.verb_name())
}

//! The FASEA wire protocol.
//!
//! Every message travels in the same frame the WAL uses on disk
//! (`fasea_store::write_raw_frame` / `parse_raw_frame`):
//!
//! ```text
//! len  u32   payload length in bytes
//! crc  u32   CRC-32 of the payload
//! payload    verb u8 | request_id u64 | body
//! ```
//!
//! (all integers little-endian, floats as IEEE-754 LE bytes — context
//! blocks cross the wire byte-identically, which is what preserves
//! common-random-number feedback between a networked run and an
//! in-process run of the same seed).
//!
//! ## Verbs
//!
//! | verb | direction | body |
//! |------|-----------|------|
//! | `HELLO` 0x01 | → | `magic u32, version u32` |
//! | `CLAIM` 0x02 | → | — |
//! | `PROPOSE` 0x03 | → | `user_capacity u32, num_events u32, dim u32, contexts f64×(n·d)` |
//! | `FEEDBACK` 0x04 | → | `len u32, accepts u8×len` |
//! | `RELEASE` 0x05 | → | — |
//! | `STATS` 0x06 | → | — |
//! | `SHUTDOWN` 0x07 | → | — |
//! | `HELLO_OK` 0x81 | ← | `fingerprint u64, num_events u32, dim u32, rounds u64, has_pending u8` |
//! | `CLAIMED` 0x82 | ← | `t u64, has_pending u8 [, arr_len u32, arrangement u32×len]` |
//! | `PROPOSED` 0x83 | ← | `t u64, arr_len u32, arrangement u32×len` |
//! | `FEEDBACK_OK` 0x84 | ← | `t u64, reward u32` |
//! | `RELEASE_OK` 0x85 | ← | — |
//! | `STATS_OK` 0x86 | ← | see [`WireStats`] |
//! | `SHUTDOWN_OK` 0x87 | ← | — |
//! | `ERROR` 0xEE | ← | `code u16, msg_len u32, msg utf8×len` |
//!
//! The FASEA protocol is strictly sequential (Definition 3): exactly
//! one round is in flight at a time. A session acquires the next round
//! with `CLAIM`; the server grants rounds first-come-first-served and
//! parks excess claimants in a bounded queue (overflow is answered
//! with a typed [`ErrorCode::Overloaded`] instead of unbounded
//! buffering). The `CLAIMED` grant carries the round index `t` — the
//! client derives the arrival for `t` and proposes — plus the pending
//! arrangement when the server recovered (or inherited) a round whose
//! proposal is already irrevocably logged; the claimant then skips
//! `PROPOSE` and answers `FEEDBACK` directly.

use std::fmt;

/// Protocol version spoken by this build.
pub const PROTOCOL_VERSION: u32 = 1;

/// Magic carried by `HELLO` ("FSEA").
pub const CLIENT_MAGIC: u32 = 0x4653_4541;

/// Hard cap on a decoded context block (`num_events × dim` cells); a
/// larger request is rejected as malformed rather than allocated.
pub const MAX_CONTEXT_CELLS: usize = 1 << 21;

const VERB_HELLO: u8 = 0x01;
const VERB_CLAIM: u8 = 0x02;
const VERB_PROPOSE: u8 = 0x03;
const VERB_FEEDBACK: u8 = 0x04;
const VERB_RELEASE: u8 = 0x05;
const VERB_STATS: u8 = 0x06;
const VERB_SHUTDOWN: u8 = 0x07;
const VERB_HELLO_OK: u8 = 0x81;
const VERB_CLAIMED: u8 = 0x82;
const VERB_PROPOSED: u8 = 0x83;
const VERB_FEEDBACK_OK: u8 = 0x84;
const VERB_RELEASE_OK: u8 = 0x85;
const VERB_STATS_OK: u8 = 0x86;
const VERB_SHUTDOWN_OK: u8 = 0x87;
const VERB_ERROR: u8 = 0xEE;

/// Typed protocol error codes carried by `ERROR` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The request frame or payload was malformed.
    BadFrame = 1,
    /// `HELLO` carried the wrong magic or an unsupported version.
    BadHello = 2,
    /// The request verb is unknown to this server.
    UnknownVerb = 3,
    /// `PROPOSE`/`FEEDBACK`/`RELEASE` from a session that does not hold
    /// the current round.
    NotRoundOwner = 4,
    /// A proposal already awaits feedback (`ServiceError::FeedbackPending`).
    FeedbackPending = 5,
    /// No proposal awaits feedback (`ServiceError::NoPendingProposal`).
    NoPendingProposal = 6,
    /// Feedback length does not match the pending arrangement.
    FeedbackLengthMismatch = 7,
    /// The context block does not match the instance shape.
    ContextShapeMismatch = 8,
    /// The wrapped policy produced an infeasible arrangement.
    PolicyInfeasible = 9,
    /// The durable store failed; the server is restarting or dying.
    StoreFailure = 10,
    /// The claim queue is full — back off and retry.
    Overloaded = 11,
    /// The server is draining for shutdown.
    ShuttingDown = 12,
    /// Anything else.
    Internal = 13,
}

impl ErrorCode {
    /// Decodes a wire error code.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadHello,
            3 => ErrorCode::UnknownVerb,
            4 => ErrorCode::NotRoundOwner,
            5 => ErrorCode::FeedbackPending,
            6 => ErrorCode::NoPendingProposal,
            7 => ErrorCode::FeedbackLengthMismatch,
            8 => ErrorCode::ContextShapeMismatch,
            9 => ErrorCode::PolicyInfeasible,
            10 => ErrorCode::StoreFailure,
            11 => ErrorCode::Overloaded,
            12 => ErrorCode::ShuttingDown,
            13 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::BadFrame => "BadFrame",
            ErrorCode::BadHello => "BadHello",
            ErrorCode::UnknownVerb => "UnknownVerb",
            ErrorCode::NotRoundOwner => "NotRoundOwner",
            ErrorCode::FeedbackPending => "FeedbackPending",
            ErrorCode::NoPendingProposal => "NoPendingProposal",
            ErrorCode::FeedbackLengthMismatch => "FeedbackLengthMismatch",
            ErrorCode::ContextShapeMismatch => "ContextShapeMismatch",
            ErrorCode::PolicyInfeasible => "PolicyInfeasible",
            ErrorCode::StoreFailure => "StoreFailure",
            ErrorCode::Overloaded => "Overloaded",
            ErrorCode::ShuttingDown => "ShuttingDown",
            ErrorCode::Internal => "Internal",
        };
        f.write_str(s)
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Session handshake; the reply describes the served instance.
    Hello {
        /// Must be [`CLIENT_MAGIC`].
        magic: u32,
        /// Must be [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Ask for exclusive ownership of the next round.
    Claim,
    /// Propose an arrangement for the claimed round.
    Propose {
        /// The arriving user's capacity `c_u`.
        user_capacity: u32,
        /// Rows in the context block.
        num_events: u32,
        /// Context dimension `d`.
        dim: u32,
        /// Row-major revealed contexts (`num_events × dim`).
        contexts: Vec<f64>,
    },
    /// Answer the pending proposal of the claimed round.
    Feedback {
        /// Accept/reject per arranged slot.
        accepts: Vec<bool>,
    },
    /// Give up a claimed round without proposing.
    Release,
    /// Fetch the server's health + metrics snapshot.
    Stats,
    /// Ask the server to drain and shut down gracefully.
    Shutdown,
}

impl Request {
    /// Short name for diagnostics and metrics labels.
    pub fn verb_name(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "HELLO",
            Request::Claim => "CLAIM",
            Request::Propose { .. } => "PROPOSE",
            Request::Feedback { .. } => "FEEDBACK",
            Request::Release => "RELEASE",
            Request::Stats => "STATS",
            Request::Shutdown => "SHUTDOWN",
        }
    }
}

/// One latency histogram summary inside [`WireStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireHistogram {
    /// Metric name ("propose_us", …).
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations in microseconds.
    pub sum_us: u64,
    /// Approximate median (bucket upper bound), microseconds.
    pub p50_us: u64,
    /// Approximate 95th percentile (bucket upper bound), microseconds.
    pub p95_us: u64,
    /// Largest single observation, microseconds.
    pub max_us: u64,
}

/// The `STATS_OK` body: service health plus the metrics registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireStats {
    /// Service fingerprint (instance + policy).
    pub fingerprint: u64,
    /// Rounds completed.
    pub rounds_completed: u64,
    /// Total slots arranged.
    pub total_arranged: u64,
    /// Total slots accepted.
    pub total_rewards: u64,
    /// Events with remaining capacity.
    pub available_events: u32,
    /// `true` if a proposal awaits feedback.
    pub has_pending: bool,
    /// Next WAL sequence number.
    pub next_seq: u64,
    /// Named atomic counters, in registry order.
    pub counters: Vec<(String, u64)>,
    /// Latency histogram summaries, in registry order.
    pub histograms: Vec<WireHistogram>,
}

impl WireStats {
    /// Accept ratio over completed rounds.
    pub fn accept_ratio(&self) -> f64 {
        if self.total_arranged == 0 {
            0.0
        } else {
            self.total_rewards as f64 / self.total_arranged as f64
        }
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Multi-line human-readable rendering (used by `fasea-exp` and the
    /// `network_service` example).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "service: fingerprint={:#018x} rounds={} arranged={} accepted={} \
             accept_ratio={:.3} available_events={} pending={} next_seq={}",
            self.fingerprint,
            self.rounds_completed,
            self.total_arranged,
            self.total_rewards,
            self.accept_ratio(),
            self.available_events,
            self.has_pending,
            self.next_seq,
        );
        let mut line = String::from("counters:");
        for (name, value) in &self.counters {
            let _ = write!(line, " {name}={value}");
        }
        let _ = writeln!(out, "{line}");
        for h in &self.histograms {
            let _ = writeln!(
                out,
                "hist {}: count={} mean={:.1}µs p50≤{}µs p95≤{}µs max={}µs",
                h.name,
                h.count,
                if h.count == 0 {
                    0.0
                } else {
                    h.sum_us as f64 / h.count as f64
                },
                h.p50_us,
                h.p95_us,
                h.max_us,
            );
        }
        out
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted; describes the served instance.
    HelloOk {
        /// Service fingerprint (clients cross-check their workload).
        fingerprint: u64,
        /// Events `|V|` in the served instance.
        num_events: u32,
        /// Context dimension `d`.
        dim: u32,
        /// Rounds completed so far.
        rounds_completed: u64,
        /// `true` if a recovered proposal awaits feedback.
        has_pending: bool,
    },
    /// The session now owns round `t`. When `pending` carries an
    /// arrangement, the proposal for `t` is already logged (crash
    /// recovery or an abandoned session) — skip `PROPOSE` and answer
    /// `FEEDBACK`.
    Claimed {
        /// The owned round index.
        t: u64,
        /// The already-proposed arrangement, if any.
        pending: Option<Vec<u32>>,
    },
    /// The proposal for round `t`, validated and durably logged.
    Proposed {
        /// Round index.
        t: u64,
        /// Arranged event indices.
        arrangement: Vec<u32>,
    },
    /// Feedback recorded; round `t` is complete.
    FeedbackOk {
        /// The completed round index.
        t: u64,
        /// Accepted slots (the round reward).
        reward: u32,
    },
    /// The claimed round was released un-proposed.
    ReleaseOk,
    /// Health + metrics snapshot.
    StatsOk(WireStats),
    /// The server is draining; this session should disconnect.
    ShutdownOk,
    /// A typed protocol error; the session stays usable unless the
    /// transport itself is desynchronised.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

impl Response {
    /// Short name for diagnostics.
    pub fn verb_name(&self) -> &'static str {
        match self {
            Response::HelloOk { .. } => "HELLO_OK",
            Response::Claimed { .. } => "CLAIMED",
            Response::Proposed { .. } => "PROPOSED",
            Response::FeedbackOk { .. } => "FEEDBACK_OK",
            Response::ReleaseOk => "RELEASE_OK",
            Response::StatsOk(_) => "STATS_OK",
            Response::ShutdownOk => "SHUTDOWN_OK",
            Response::Error { .. } => "ERROR",
        }
    }
}

/// Why a payload failed to decode. Carried into
/// [`ErrorCode::BadFrame`] responses.
pub type ProtoViolation = &'static str;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialises one request payload (`verb | request_id | body`).
pub fn encode_request(request_id: u64, request: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match request {
        Request::Hello { magic, version } => {
            out.push(VERB_HELLO);
            put_u64(&mut out, request_id);
            put_u32(&mut out, *magic);
            put_u32(&mut out, *version);
        }
        Request::Claim => {
            out.push(VERB_CLAIM);
            put_u64(&mut out, request_id);
        }
        Request::Propose {
            user_capacity,
            num_events,
            dim,
            contexts,
        } => {
            out.push(VERB_PROPOSE);
            put_u64(&mut out, request_id);
            put_u32(&mut out, *user_capacity);
            put_u32(&mut out, *num_events);
            put_u32(&mut out, *dim);
            for v in contexts {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Request::Feedback { accepts } => {
            out.push(VERB_FEEDBACK);
            put_u64(&mut out, request_id);
            put_u32(&mut out, accepts.len() as u32);
            out.extend(accepts.iter().map(|&b| b as u8));
        }
        Request::Release => {
            out.push(VERB_RELEASE);
            put_u64(&mut out, request_id);
        }
        Request::Stats => {
            out.push(VERB_STATS);
            put_u64(&mut out, request_id);
        }
        Request::Shutdown => {
            out.push(VERB_SHUTDOWN);
            put_u64(&mut out, request_id);
        }
    }
    out
}

/// Serialises one response payload (`verb | request_id | body`).
pub fn encode_response(request_id: u64, response: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match response {
        Response::HelloOk {
            fingerprint,
            num_events,
            dim,
            rounds_completed,
            has_pending,
        } => {
            out.push(VERB_HELLO_OK);
            put_u64(&mut out, request_id);
            put_u64(&mut out, *fingerprint);
            put_u32(&mut out, *num_events);
            put_u32(&mut out, *dim);
            put_u64(&mut out, *rounds_completed);
            out.push(*has_pending as u8);
        }
        Response::Claimed { t, pending } => {
            out.push(VERB_CLAIMED);
            put_u64(&mut out, request_id);
            put_u64(&mut out, *t);
            match pending {
                None => out.push(0),
                Some(arrangement) => {
                    out.push(1);
                    put_u32(&mut out, arrangement.len() as u32);
                    for v in arrangement {
                        put_u32(&mut out, *v);
                    }
                }
            }
        }
        Response::Proposed { t, arrangement } => {
            out.push(VERB_PROPOSED);
            put_u64(&mut out, request_id);
            put_u64(&mut out, *t);
            put_u32(&mut out, arrangement.len() as u32);
            for v in arrangement {
                put_u32(&mut out, *v);
            }
        }
        Response::FeedbackOk { t, reward } => {
            out.push(VERB_FEEDBACK_OK);
            put_u64(&mut out, request_id);
            put_u64(&mut out, *t);
            put_u32(&mut out, *reward);
        }
        Response::ReleaseOk => {
            out.push(VERB_RELEASE_OK);
            put_u64(&mut out, request_id);
        }
        Response::StatsOk(stats) => {
            out.push(VERB_STATS_OK);
            put_u64(&mut out, request_id);
            put_u64(&mut out, stats.fingerprint);
            put_u64(&mut out, stats.rounds_completed);
            put_u64(&mut out, stats.total_arranged);
            put_u64(&mut out, stats.total_rewards);
            put_u32(&mut out, stats.available_events);
            out.push(stats.has_pending as u8);
            put_u64(&mut out, stats.next_seq);
            put_u32(&mut out, stats.counters.len() as u32);
            for (name, value) in &stats.counters {
                out.push(name.len() as u8);
                out.extend_from_slice(name.as_bytes());
                put_u64(&mut out, *value);
            }
            put_u32(&mut out, stats.histograms.len() as u32);
            for h in &stats.histograms {
                out.push(h.name.len() as u8);
                out.extend_from_slice(h.name.as_bytes());
                put_u64(&mut out, h.count);
                put_u64(&mut out, h.sum_us);
                put_u64(&mut out, h.p50_us);
                put_u64(&mut out, h.p95_us);
                put_u64(&mut out, h.max_us);
            }
        }
        Response::ShutdownOk => {
            out.push(VERB_SHUTDOWN_OK);
            put_u64(&mut out, request_id);
        }
        Response::Error { code, detail } => {
            out.push(VERB_ERROR);
            put_u64(&mut out, request_id);
            put_u16(&mut out, *code as u16);
            put_u32(&mut out, detail.len() as u32);
            out.extend_from_slice(detail.as_bytes());
        }
    }
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoViolation> {
        if self.at + n > self.buf.len() {
            return Err("payload truncated");
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ProtoViolation> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ProtoViolation> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ProtoViolation> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ProtoViolation> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn flag(&mut self) -> Result<bool, ProtoViolation> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err("flag byte is not a bool"),
        }
    }
    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, ProtoViolation> {
        let raw = self.take(4 * n)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
    fn name(&mut self) -> Result<String, ProtoViolation> {
        let len = self.u8()? as usize;
        let raw = self.take(len)?;
        std::str::from_utf8(raw)
            .map(|s| s.to_string())
            .map_err(|_| "name is not utf-8")
    }
    fn done(&self) -> Result<(), ProtoViolation> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err("trailing payload bytes")
        }
    }
}

/// Decodes one request payload produced by [`encode_request`].
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), ProtoViolation> {
    let mut c = Cursor::new(payload);
    let verb = c.u8()?;
    let request_id = c.u64()?;
    let request = match verb {
        VERB_HELLO => Request::Hello {
            magic: c.u32()?,
            version: c.u32()?,
        },
        VERB_CLAIM => Request::Claim,
        VERB_PROPOSE => {
            let user_capacity = c.u32()?;
            let num_events = c.u32()?;
            let dim = c.u32()?;
            let cells = (num_events as usize)
                .checked_mul(dim as usize)
                .filter(|&n| n <= MAX_CONTEXT_CELLS)
                .ok_or("context shape implausible")?;
            let raw = c.take(8 * cells)?;
            let contexts = raw
                .chunks_exact(8)
                .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
                .collect();
            Request::Propose {
                user_capacity,
                num_events,
                dim,
                contexts,
            }
        }
        VERB_FEEDBACK => {
            let len = c.u32()? as usize;
            let raw = c.take(len)?;
            if raw.iter().any(|&b| b > 1) {
                return Err("feedback byte is not a bool");
            }
            Request::Feedback {
                accepts: raw.iter().map(|&b| b == 1).collect(),
            }
        }
        VERB_RELEASE => Request::Release,
        VERB_STATS => Request::Stats,
        VERB_SHUTDOWN => Request::Shutdown,
        _ => return Err("unknown request verb"),
    };
    c.done()?;
    Ok((request_id, request))
}

/// Decodes one response payload produced by [`encode_response`].
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), ProtoViolation> {
    let mut c = Cursor::new(payload);
    let verb = c.u8()?;
    let request_id = c.u64()?;
    let response = match verb {
        VERB_HELLO_OK => Response::HelloOk {
            fingerprint: c.u64()?,
            num_events: c.u32()?,
            dim: c.u32()?,
            rounds_completed: c.u64()?,
            has_pending: c.flag()?,
        },
        VERB_CLAIMED => {
            let t = c.u64()?;
            let pending = if c.flag()? {
                let len = c.u32()? as usize;
                Some(c.u32s(len)?)
            } else {
                None
            };
            Response::Claimed { t, pending }
        }
        VERB_PROPOSED => {
            let t = c.u64()?;
            let len = c.u32()? as usize;
            Response::Proposed {
                t,
                arrangement: c.u32s(len)?,
            }
        }
        VERB_FEEDBACK_OK => Response::FeedbackOk {
            t: c.u64()?,
            reward: c.u32()?,
        },
        VERB_RELEASE_OK => Response::ReleaseOk,
        VERB_STATS_OK => {
            let fingerprint = c.u64()?;
            let rounds_completed = c.u64()?;
            let total_arranged = c.u64()?;
            let total_rewards = c.u64()?;
            let available_events = c.u32()?;
            let has_pending = c.flag()?;
            let next_seq = c.u64()?;
            let n_counters = c.u32()? as usize;
            if n_counters > 4096 {
                return Err("counter list implausible");
            }
            let mut counters = Vec::with_capacity(n_counters);
            for _ in 0..n_counters {
                let name = c.name()?;
                let value = c.u64()?;
                counters.push((name, value));
            }
            let n_hists = c.u32()? as usize;
            if n_hists > 4096 {
                return Err("histogram list implausible");
            }
            let mut histograms = Vec::with_capacity(n_hists);
            for _ in 0..n_hists {
                histograms.push(WireHistogram {
                    name: c.name()?,
                    count: c.u64()?,
                    sum_us: c.u64()?,
                    p50_us: c.u64()?,
                    p95_us: c.u64()?,
                    max_us: c.u64()?,
                });
            }
            Response::StatsOk(WireStats {
                fingerprint,
                rounds_completed,
                total_arranged,
                total_rewards,
                available_events,
                has_pending,
                next_seq,
                counters,
                histograms,
            })
        }
        VERB_SHUTDOWN_OK => Response::ShutdownOk,
        VERB_ERROR => {
            let code = ErrorCode::from_u16(c.u16()?).ok_or("unknown error code")?;
            let len = c.u32()? as usize;
            let raw = c.take(len)?;
            let detail = std::str::from_utf8(raw)
                .map_err(|_| "error detail is not utf-8")?
                .to_string();
            Response::Error { code, detail }
        }
        _ => return Err("unknown response verb"),
    };
    c.done()?;
    Ok((request_id, response))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> WireStats {
        WireStats {
            fingerprint: 0xDEAD_BEEF_0123_4567,
            rounds_completed: 42,
            total_arranged: 99,
            total_rewards: 60,
            available_events: 7,
            has_pending: true,
            next_seq: 85,
            counters: vec![("requests".into(), 1234), ("overloaded".into(), 3)],
            histograms: vec![WireHistogram {
                name: "propose_us".into(),
                count: 42,
                sum_us: 4200,
                p50_us: 100,
                p95_us: 250,
                max_us: 400,
            }],
        }
    }

    #[test]
    fn request_round_trip_all_verbs() {
        let requests = [
            Request::Hello {
                magic: CLIENT_MAGIC,
                version: PROTOCOL_VERSION,
            },
            Request::Claim,
            Request::Propose {
                user_capacity: 3,
                num_events: 2,
                dim: 2,
                contexts: vec![0.25, -0.5, 0.75, 1.0],
            },
            Request::Feedback {
                accepts: vec![true, false, true],
            },
            Request::Release,
            Request::Stats,
            Request::Shutdown,
        ];
        for (i, req) in requests.iter().enumerate() {
            let payload = encode_request(100 + i as u64, req);
            let (id, decoded) = decode_request(&payload).unwrap();
            assert_eq!(id, 100 + i as u64);
            assert_eq!(&decoded, req);
        }
    }

    #[test]
    fn response_round_trip_all_verbs() {
        let responses = [
            Response::HelloOk {
                fingerprint: 7,
                num_events: 10,
                dim: 4,
                rounds_completed: 3,
                has_pending: false,
            },
            Response::Claimed {
                t: 9,
                pending: None,
            },
            Response::Claimed {
                t: 9,
                pending: Some(vec![4, 1]),
            },
            Response::Proposed {
                t: 9,
                arrangement: vec![0, 2, 5],
            },
            Response::FeedbackOk { t: 9, reward: 2 },
            Response::ReleaseOk,
            Response::StatsOk(sample_stats()),
            Response::ShutdownOk,
            Response::Error {
                code: ErrorCode::Overloaded,
                detail: "queue full".into(),
            },
        ];
        for (i, resp) in responses.iter().enumerate() {
            let payload = encode_response(i as u64, resp);
            let (id, decoded) = decode_response(&payload).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(&decoded, resp);
        }
    }

    #[test]
    fn malformed_payloads_rejected() {
        // Unknown verb.
        assert!(decode_request(&[0x55; 9]).is_err());
        assert!(decode_response(&[0x55; 9]).is_err());
        // Truncated.
        let payload = encode_request(0, &Request::Claim);
        assert!(decode_request(&payload[..payload.len() - 1]).is_err());
        // Trailing garbage.
        let mut payload = encode_request(0, &Request::Claim);
        payload.push(0);
        assert!(decode_request(&payload).is_err());
        // Non-bool feedback byte.
        let mut payload = encode_request(
            0,
            &Request::Feedback {
                accepts: vec![true],
            },
        );
        *payload.last_mut().unwrap() = 2;
        assert!(decode_request(&payload).is_err());
        // Implausible context shape (would overflow / over-allocate).
        let mut payload = encode_request(
            0,
            &Request::Propose {
                user_capacity: 1,
                num_events: 1,
                dim: 1,
                contexts: vec![0.0],
            },
        );
        // Patch num_events to u32::MAX (offset: verb 1 + id 8 + cap 4).
        payload[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&payload).is_err());
        // Unknown error code.
        let mut payload = encode_response(
            0,
            &Response::Error {
                code: ErrorCode::Internal,
                detail: String::new(),
            },
        );
        payload[9..11].copy_from_slice(&999u16.to_le_bytes());
        assert!(decode_response(&payload).is_err());
    }

    #[test]
    fn error_codes_round_trip() {
        for v in 1..=13u16 {
            let code = ErrorCode::from_u16(v).unwrap();
            assert_eq!(code as u16, v);
            assert!(!code.to_string().is_empty());
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(14), None);
    }

    #[test]
    fn stats_render_and_lookup() {
        let stats = sample_stats();
        assert_eq!(stats.counter("requests"), Some(1234));
        assert_eq!(stats.counter("nope"), None);
        assert!((stats.accept_ratio() - 60.0 / 99.0).abs() < 1e-12);
        let text = stats.render();
        assert!(text.contains("rounds=42"));
        assert!(text.contains("propose_us"));
    }
}

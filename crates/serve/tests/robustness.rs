//! Fuzz-ish robustness: hostile bytes on the wire must produce a typed
//! protocol error or a clean close — never a panic, and never corrupted
//! service state.
//!
//! Attack classes (mirroring the store's fault-injection harness, but
//! aimed at the socket instead of the log): truncated frames,
//! bit-flipped frames, oversized length prefixes, pure garbage, and
//! CRC-valid frames whose payloads are undecodable. After every attack
//! the same server must still complete a clean round, and its round
//! counter must only ever advance by the rounds *we* completed.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use fasea_bandit::LinUcb;
use fasea_core::ProblemInstance;
use fasea_serve::{
    decode_request, decode_response, encode_request, encode_response, ClientConfig, ErrorCode,
    Request, Response, ServeClient, Server, ServerConfig, ServerHandle,
};
use fasea_sim::{DurableArrangementService, DurableOptions};
use fasea_store::{parse_raw_frame, write_raw_frame, FrameParse, FsyncPolicy};

const DIM: usize = 3;

/// Scoring threads the robustness server runs with: the attacks must
/// not disturb a *parallel* scoring engine either, and shutdown must
/// join its workers (`SCORE_THREADS - 1` of them; the caller thread is
/// the remaining lane).
const SCORE_THREADS: usize = 4;

/// Waits (bounded) for the score-pool workers to pass through their
/// startup preamble; returns the observed live count.
fn await_live_score_workers(want: usize) -> usize {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let live = fasea_bandit::live_score_workers();
        if live == want || std::time::Instant::now() > deadline {
            return live;
        }
        std::thread::yield_now();
    }
}

fn start_server(tag: &str) -> (ServerHandle, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("fasea-serve-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let svc = DurableArrangementService::open(
        &dir,
        ProblemInstance::basic(6, DIM),
        Box::new(LinUcb::new(DIM, 1.0, 2.0)),
        DurableOptions::new()
            .with_fsync(FsyncPolicy::Never)
            .with_score_threads(SCORE_THREADS),
    )
    .unwrap();
    let config = ServerConfig {
        read_timeout: Duration::from_millis(300),
        idle_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(10),
        stats_interval: None,
        ..ServerConfig::default()
    };
    let handle = Server::spawn(svc, "127.0.0.1:0", config).unwrap();
    (handle, dir)
}

fn raw_connect(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    stream
}

/// Reads frames until one decodes as a response; `None` means the
/// server closed the connection cleanly instead of answering.
fn read_response(stream: &mut TcpStream) -> Option<Response> {
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    loop {
        match parse_raw_frame(&buf) {
            FrameParse::Frame { payload, consumed } => {
                buf.drain(..consumed);
                let (_, response) = decode_response(&payload).expect("server sent valid frame");
                return Some(response);
            }
            FrameParse::Bad { why } => panic!("server sent a corrupt frame: {why}"),
            FrameParse::NeedMore => {}
        }
        match stream.read(&mut tmp) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) => panic!("read from server failed: {e}"),
        }
    }
}

fn expect_error(stream: &mut TcpStream, want: ErrorCode) {
    match read_response(stream) {
        Some(Response::Error { code, .. }) => assert_eq!(code, want),
        Some(other) => panic!("wanted {want} error, got {other:?}"),
        None => panic!("wanted {want} error, server closed instead"),
    }
}

/// Completes one clean claim→propose→feedback round and returns the
/// round index the server assigned.
fn run_clean_round(handle: &ServerHandle) -> u64 {
    let mut client =
        ServeClient::connect(handle.local_addr().to_string(), ClientConfig::default()).unwrap();
    let claimed = client.claim().unwrap();
    let arrangement = match claimed.pending {
        Some(pending) => pending,
        None => {
            client
                .propose(2, 6, DIM as u32, vec![0.4; 6 * DIM])
                .unwrap()
                .1
        }
    };
    let accepts = vec![true; arrangement.len()];
    let (t, _) = client.feedback(&accepts).unwrap();
    assert_eq!(t, claimed.t);
    t
}

fn rounds_completed(handle: &ServerHandle) -> u64 {
    let mut client =
        ServeClient::connect(handle.local_addr().to_string(), ClientConfig::default()).unwrap();
    client.stats().unwrap().rounds_completed
}

/// Deterministic xorshift for reproducible "random" garbage.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn hostile_streams_get_typed_errors_or_clean_close() {
    let (handle, dir) = start_server("hostile");

    // The server's score pool is alive: SCORE_THREADS - 1 workers (the
    // actor thread itself is the pool's remaining scoring lane).
    assert_eq!(
        await_live_score_workers(SCORE_THREADS - 1),
        SCORE_THREADS - 1,
        "score pool workers did not come up"
    );

    // 1. Pure garbage: an implausible length prefix.
    {
        let mut s = raw_connect(&handle);
        s.write_all(&[0xFF; 64]).unwrap();
        expect_error(&mut s, ErrorCode::BadFrame);
        assert_eq!(read_response(&mut s), None, "connection must close");
    }

    // 2. Oversized length field (larger than MAX_PAYLOAD).
    {
        let mut s = raw_connect(&handle);
        let mut msg = ((64u32 << 20).to_le_bytes()).to_vec();
        msg.extend_from_slice(&[0u8; 32]);
        s.write_all(&msg).unwrap();
        expect_error(&mut s, ErrorCode::BadFrame);
    }

    // 3. Bit-flipped frames: each flip must yield BadFrame (checksum
    //    catches it) or, if the flip lands in the length prefix, either
    //    BadFrame or a mid-frame timeout — never a panic or a bogus
    //    success.
    {
        let good = {
            let mut framed = Vec::new();
            write_raw_frame(&mut framed, &encode_request(1, &Request::Claim)).unwrap();
            framed
        };
        let mut rng = XorShift(0x5EED);
        for _ in 0..24 {
            let mut corrupted = good.clone();
            let bit = (rng.next() as usize) % (corrupted.len() * 8);
            corrupted[bit / 8] ^= 1 << (bit % 8);
            if corrupted == good {
                continue;
            }
            let mut s = raw_connect(&handle);
            s.write_all(&corrupted).unwrap();
            match read_response(&mut s) {
                Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::BadFrame),
                Some(other) => panic!("corrupt frame produced {other:?}"),
                None => {} // clean close (e.g. shrunken length → stall → timeout close)
            }
        }
    }

    // 4. Truncated frame then abrupt client death: server must not care.
    {
        let good = {
            let mut framed = Vec::new();
            write_raw_frame(&mut framed, &encode_request(1, &Request::Stats)).unwrap();
            framed
        };
        let mut s = raw_connect(&handle);
        s.write_all(&good[..good.len() / 2]).unwrap();
        drop(s); // vanish mid-frame
    }

    // 5. CRC-valid frame, undecodable payload (unknown verb): typed
    //    error AND the session survives to speak proper protocol.
    {
        let mut s = raw_connect(&handle);
        let mut framed = Vec::new();
        write_raw_frame(&mut framed, &[0x42u8, 1, 2, 3]).unwrap();
        s.write_all(&framed).unwrap();
        expect_error(&mut s, ErrorCode::BadFrame);
        let mut hello = Vec::new();
        write_raw_frame(
            &mut hello,
            &encode_request(
                9,
                &Request::Hello {
                    magic: fasea_serve::CLIENT_MAGIC,
                    version: fasea_serve::PROTOCOL_VERSION,
                },
            ),
        )
        .unwrap();
        s.write_all(&hello).unwrap();
        match read_response(&mut s) {
            Some(Response::HelloOk { .. }) => {}
            other => panic!("session should survive a decodable-frame error: {other:?}"),
        }
    }

    // 6. Bad handshake values: typed BadHello.
    {
        let mut s = raw_connect(&handle);
        let mut framed = Vec::new();
        write_raw_frame(
            &mut framed,
            &encode_request(
                1,
                &Request::Hello {
                    magic: 0xDEAD_BEEF,
                    version: 99,
                },
            ),
        )
        .unwrap();
        s.write_all(&framed).unwrap();
        expect_error(&mut s, ErrorCode::BadHello);
    }

    // 7. Protocol-state abuse: feedback without owning a round.
    {
        let mut client =
            ServeClient::connect(handle.local_addr().to_string(), ClientConfig::default()).unwrap();
        let err = client.feedback(&[true]).unwrap_err();
        assert_eq!(err.code(), Some(ErrorCode::NotRoundOwner));
    }

    // None of the above advanced the round counter; a clean round still
    // works and lands at t = 0.
    assert_eq!(rounds_completed(&handle), 0);
    assert_eq!(run_clean_round(&handle), 0);
    assert_eq!(rounds_completed(&handle), 1);

    handle.initiate_shutdown();
    let report = handle.join();
    assert!(report.close.error.is_none());
    assert_eq!(report.close.rounds_completed, 1);
    // Graceful drain joins the score-pool workers: closing the durable
    // service drops the pool, and `join` must not return while scoring
    // threads are still alive.
    assert_eq!(
        fasea_bandit::live_score_workers(),
        0,
        "drain left score pool workers running"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A group-commit server must serve rounds with deferred acks, surface
/// the commit histograms through `STATS`, run its periodic background
/// snapshots, and — on graceful drain — join the commit syncer and
/// snapshotter threads (this is the only test in this binary that
/// creates them, so the process-wide liveness counters are ours).
#[test]
fn group_commit_server_defers_acks_and_drains_cleanly() {
    let dir = std::env::temp_dir().join(format!("fasea-serve-robust-gc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let svc = DurableArrangementService::open(
        &dir,
        ProblemInstance::basic(6, DIM),
        Box::new(LinUcb::new(DIM, 1.0, 2.0)),
        DurableOptions::new()
            .with_fsync(FsyncPolicy::Always)
            .with_group_commit(true),
    )
    .unwrap();
    let config = ServerConfig {
        read_timeout: Duration::from_millis(300),
        idle_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(10),
        stats_interval: None,
        snapshot_every_rounds: Some(3),
        ..ServerConfig::default()
    };
    let handle = Server::spawn(svc, "127.0.0.1:0", config).unwrap();
    assert!(
        fasea_sim::live_snapshotters() >= 1,
        "group-commit server should have spawned its snapshotter"
    );
    assert!(
        fasea_store::live_commit_syncers() >= 1,
        "group-commit server should have spawned its commit syncer"
    );

    const ROUNDS: u64 = 8;
    for t in 0..ROUNDS {
        assert_eq!(run_clean_round(&handle), t);
    }

    // The commit histograms are visible through STATS and have seen
    // every logged record (2 per round, plus snapshot markers).
    let stats = {
        let mut client =
            ServeClient::connect(handle.local_addr().to_string(), ClientConfig::default()).unwrap();
        client.stats().unwrap()
    };
    assert_eq!(stats.rounds_completed, ROUNDS);
    let batch = stats
        .histograms
        .iter()
        .find(|h| h.name == "fsync_batch_size")
        .expect("STATS must carry the fsync_batch_size histogram");
    assert!(batch.count > 0, "no group-commit batches were observed");
    assert!(
        batch.sum_us >= 2 * ROUNDS,
        "batches covered {} records, want at least {}",
        batch.sum_us,
        2 * ROUNDS
    );
    let latency = stats
        .histograms
        .iter()
        .find(|h| h.name == "commit_latency_us")
        .expect("STATS must carry the commit_latency_us histogram");
    assert_eq!(
        latency.count, batch.count,
        "one latency observation per batch"
    );

    handle.initiate_shutdown();
    let report = handle.join();
    assert!(report.close.error.is_none(), "{:?}", report.close.error);
    assert_eq!(report.close.rounds_completed, ROUNDS);
    assert!(report.close.snapshot.is_some());
    // Graceful drain joined the pipeline threads.
    assert_eq!(
        fasea_store::live_commit_syncers(),
        0,
        "drain left the commit syncer running"
    );
    assert_eq!(
        fasea_sim::live_snapshotters(),
        0,
        "drain left the snapshotter running"
    );

    // Every acked round survived: reopening replays to the same count.
    let reopened = DurableArrangementService::open(
        &dir,
        ProblemInstance::basic(6, DIM),
        Box::new(LinUcb::new(DIM, 1.0, 2.0)),
        DurableOptions::new()
            .with_fsync(FsyncPolicy::Always)
            .with_group_commit(true),
    )
    .unwrap();
    assert_eq!(reopened.rounds_completed(), ROUNDS);
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Decoder-level fuzzing, no sockets: random mutations of valid
/// payloads must decode to the original, a different valid message, or
/// a typed violation — never panic. (Response payloads too: the client
/// decodes untrusted server bytes.)
#[test]
fn decoder_survives_bit_flips_and_garbage() {
    let requests = [
        encode_request(
            1,
            &Request::Hello {
                magic: fasea_serve::CLIENT_MAGIC,
                version: 1,
            },
        ),
        encode_request(2, &Request::Claim),
        encode_request(
            3,
            &Request::Propose {
                user_capacity: 2,
                num_events: 3,
                dim: 2,
                contexts: vec![0.1; 6],
            },
        ),
        encode_request(
            4,
            &Request::Feedback {
                accepts: vec![true, false],
            },
        ),
    ];
    let responses = [
        encode_response(
            1,
            &Response::Claimed {
                t: 7,
                pending: Some(vec![2, 0]),
            },
        ),
        encode_response(
            2,
            &Response::Error {
                code: ErrorCode::Overloaded,
                detail: "q".into(),
            },
        ),
    ];
    let mut rng = XorShift(0xFA5E_A5EE_D000_0001);
    for payload in &requests {
        for _ in 0..500 {
            let mut mutated = payload.clone();
            for _ in 0..=(rng.next() % 3) {
                let bit = (rng.next() as usize) % (mutated.len() * 8);
                mutated[bit / 8] ^= 1 << (bit % 8);
            }
            let _ = decode_request(&mutated); // must not panic
            let truncated = &mutated[..(rng.next() as usize) % (mutated.len() + 1)];
            let _ = decode_request(truncated);
        }
    }
    for payload in &responses {
        for _ in 0..500 {
            let mut mutated = payload.clone();
            let bit = (rng.next() as usize) % (mutated.len() * 8);
            mutated[bit / 8] ^= 1 << (bit % 8);
            let _ = decode_response(&mutated);
        }
    }
    // Pure garbage of many lengths.
    for len in 0..64 {
        let junk: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let _ = decode_request(&junk);
        let _ = decode_response(&junk);
    }
}

//! Golden wire-format fixtures: byte-exact expected encodings for every
//! protocol verb, in both directions, plus one fully framed message.
//!
//! These bytes are the protocol's compatibility contract. If an edit to
//! `proto.rs` changes any fixture, that edit is a wire-format break:
//! either revert it or bump `PROTOCOL_VERSION` and regenerate the
//! fixtures deliberately.

use fasea_serve::proto::{
    decode_request, decode_response, encode_request, encode_response, ErrorCode, Request, Response,
    WireHistogram, WireStats, CLIENT_MAGIC, PROTOCOL_VERSION,
};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2));
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

fn check_request(request_id: u64, request: &Request, golden: &str) {
    let encoded = encode_request(request_id, request);
    assert_eq!(
        hex(&encoded),
        golden,
        "encoding drifted for request {}",
        request.verb_name()
    );
    let (id, decoded) = decode_request(&unhex(golden)).expect("golden request must decode");
    assert_eq!(id, request_id);
    assert_eq!(&decoded, request);
}

fn check_response(request_id: u64, response: &Response, golden: &str) {
    let encoded = encode_response(request_id, response);
    assert_eq!(
        hex(&encoded),
        golden,
        "encoding drifted for response {}",
        response.verb_name()
    );
    let (id, decoded) = decode_response(&unhex(golden)).expect("golden response must decode");
    assert_eq!(id, request_id);
    assert_eq!(&decoded, response);
}

#[test]
fn request_fixtures() {
    check_request(
        1,
        &Request::Hello {
            magic: CLIENT_MAGIC,
            version: PROTOCOL_VERSION,
        },
        // verb 01 | id 1 | magic "FSEA" LE | version 1
        "0101000000000000004145534601000000",
    );
    check_request(2, &Request::Claim, "020200000000000000");
    check_request(
        3,
        &Request::Propose {
            user_capacity: 2,
            num_events: 2,
            dim: 2,
            contexts: vec![0.5, -1.0, 0.25, 2.0],
        },
        // verb 03 | id | cap 2 | n 2 | d 2 | 4 × f64 LE
        "030300000000000000020000000200000002000000000000000000e03f000000000000f0bf000000000000d03f0000000000000040",
    );
    check_request(
        4,
        &Request::Feedback {
            accepts: vec![true, false, true],
        },
        // verb 04 | id | len 3 | 01 00 01
        "04040000000000000003000000010001",
    );
    check_request(5, &Request::Release, "050500000000000000");
    check_request(6, &Request::Stats, "060600000000000000");
    check_request(7, &Request::Shutdown, "070700000000000000");
}

#[test]
fn response_fixtures() {
    check_response(
        1,
        &Response::HelloOk {
            fingerprint: 0x1122_3344_5566_7788,
            num_events: 2,
            dim: 2,
            rounds_completed: 9,
            has_pending: true,
        },
        "81010000000000000088776655443322110200000002000000090000000000000001",
    );
    check_response(
        2,
        &Response::Claimed {
            t: 9,
            pending: None,
        },
        "820200000000000000090000000000000000",
    );
    check_response(
        2,
        &Response::Claimed {
            t: 9,
            pending: Some(vec![1, 0]),
        },
        "820200000000000000090000000000000001020000000100000000000000",
    );
    check_response(
        3,
        &Response::Proposed {
            t: 9,
            arrangement: vec![0, 1],
        },
        "8303000000000000000900000000000000020000000000000001000000",
    );
    check_response(
        4,
        &Response::FeedbackOk { t: 9, reward: 1 },
        "840400000000000000090000000000000001000000",
    );
    check_response(5, &Response::ReleaseOk, "850500000000000000");
    check_response(
        6,
        &Response::StatsOk(WireStats {
            fingerprint: 0xABCD,
            rounds_completed: 3,
            total_arranged: 5,
            total_rewards: 2,
            available_events: 2,
            has_pending: false,
            next_seq: 6,
            counters: vec![("requests".into(), 7)],
            histograms: vec![WireHistogram {
                name: "propose_us".into(),
                count: 3,
                sum_us: 30,
                p50_us: 10,
                p95_us: 10,
                max_us: 12,
            }],
        }),
        "860600000000000000cdab000000000000030000000000000005000000000000000200000000000000\
         0200000000060000000000000001000000087265717565737473070000000000000001000000\
         0a70726f706f73655f757303000000000000001e000000000000000a000000000000000a00000000\
         0000000c00000000000000",
    );
    check_response(7, &Response::ShutdownOk, "870700000000000000");
    check_response(
        8,
        &Response::Error {
            code: ErrorCode::Overloaded,
            detail: "queue full".into(),
        },
        // verb ee | id | code 11 (Overloaded) | len 10 | "queue full"
        "ee08000000000000000b000a00000071756575652066756c6c",
    );
}

/// The full wire framing (the WAL's `len | crc | payload` convention)
/// around one payload, byte for byte.
#[test]
fn framed_message_fixture() {
    let payload = encode_request(2, &Request::Claim);
    let mut framed = Vec::new();
    fasea_store::write_raw_frame(&mut framed, &payload).unwrap();
    assert_eq!(hex(&framed), "09000000553bda8a020200000000000000");
    match fasea_store::parse_raw_frame(&framed) {
        fasea_store::FrameParse::Frame {
            payload: parsed,
            consumed,
        } => {
            assert_eq!(consumed, framed.len());
            assert_eq!(parsed, payload);
        }
        other => panic!("framed fixture failed to parse: {other:?}"),
    }
}

//! Thompson Sampling — the paper's Algorithm 1, extending the
//! linear-payoff TS of Agrawal & Goyal to the contextual combinatorial
//! setting.

use crate::{Policy, RidgeEstimator, ScoreWorkspace, SelectionView};
use fasea_core::{Arrangement, ContextMatrix, Feedback};
use fasea_stats::sample_gaussian_with_precision_factor;

/// Thompson Sampling (Algorithm 1).
///
/// Per round:
///
/// 1. `q ← R √(9 d ln(t/δ))` (line 5; `R = 1` under FASEA because
///    rewards lie in `[xᵀθ − 1, xᵀθ + 1]`),
/// 2. `θ̂_t ← Y⁻¹ b` (line 6),
/// 3. sample `θ̃_t ∼ N(θ̂_t, q² Y⁻¹)` (line 7) — implemented as
///    `θ̂ + q·L⁻ᵀ z` from a Cholesky factor `Y = L Lᵀ`,
/// 4. score every event with `x_{t,v}ᵀ θ̃_t` and run Oracle-Greedy.
///
/// The paper's headline negative result lives here: because all events
/// share one `θ`, the per-round sampling noise perturbs *every* event
/// score coherently and the arrangement chases the noise — Figure 2's
/// fluctuating Kendall correlation. The effect grows with `d` (Figure 4)
/// since `q ∝ √d` and a `d`-dimensional sample carries more noise.
#[derive(Debug, Clone)]
pub struct ThompsonSampling {
    estimator: RidgeEstimator,
    delta: f64,
    r_sub_gaussian: f64,
    rng: fasea_stats::Rng,
    ws: ScoreWorkspace,
}

impl ThompsonSampling {
    /// Creates TS with ridge strength `lambda`, confidence parameter
    /// `delta` (paper default δ = 0.1), sub-Gaussian scale `R = 1`, and
    /// a policy-private RNG seed.
    ///
    /// # Panics
    /// Panics if `delta ∉ (0, 1)`.
    pub fn new(dim: usize, lambda: f64, delta: f64, seed: u64) -> Self {
        Self::with_r(dim, lambda, delta, 1.0, seed)
    }

    /// Full constructor exposing `R` (the paper fixes `R = 1` under
    /// FASEA; other values support the basic-bandit ablations).
    ///
    /// # Panics
    /// Panics if `delta ∉ (0, 1)` or `R < 0`.
    pub fn with_r(dim: usize, lambda: f64, delta: f64, r: f64, seed: u64) -> Self {
        assert!(
            delta > 0.0 && delta < 1.0,
            "ThompsonSampling: delta must be in (0, 1)"
        );
        assert!(r >= 0.0, "ThompsonSampling: R must be non-negative");
        ThompsonSampling {
            estimator: RidgeEstimator::new(dim, lambda),
            delta,
            r_sub_gaussian: r,
            rng: fasea_stats::rng_from_seed(seed),
            ws: ScoreWorkspace::new(),
        }
    }

    /// Confidence parameter δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The sampling scale `q = R √(9 d ln(t/δ))` at (1-based) time `t`.
    pub fn sampling_scale(&self, t_one_based: u64) -> f64 {
        let d = self.estimator.dim() as f64;
        let t = t_one_based.max(1) as f64;
        self.r_sub_gaussian * (9.0 * d * (t / self.delta).ln()).sqrt()
    }

    /// Read access to the estimator (diagnostics/tests).
    pub fn estimator(&self) -> &RidgeEstimator {
        &self.estimator
    }
}

impl Policy for ThompsonSampling {
    fn name(&self) -> &'static str {
        "TS"
    }

    fn score_into(&mut self, view: &SelectionView<'_>, ws: &mut ScoreWorkspace) {
        let n = view.num_events();
        // TS's posterior sample is inherently allocating (Cholesky of Y
        // plus the sampled θ̃); the zero-alloc bar applies to the
        // deterministic-score policies only. RNG draw order (d Gaussians
        // per round) is identical to the pre-batched path.
        let q = self.sampling_scale(view.t + 1);
        let theta_hat = self.estimator.theta_hat().clone();
        let chol = self
            .estimator
            .gram_cholesky()
            .expect("ThompsonSampling: Y must stay SPD");
        let theta_tilde =
            sample_gaussian_with_precision_factor(&theta_hat, q, &chol, &mut self.rng);
        // The posterior draw above consumed its d Gaussians serially on
        // this thread; only the deterministic dot scan fans out.
        let pool = ws.score_pool().cloned();
        let scores = ws.scores_mut(n);
        match pool {
            Some(pool) if pool.threads() > 1 => {
                crate::score_pool::dot_scores_pooled(
                    &pool,
                    view.contexts,
                    theta_tilde.as_slice(),
                    scores,
                );
            }
            _ => {
                for (v, s) in scores.iter_mut().enumerate() {
                    let x = view.contexts.context(fasea_core::EventId(v));
                    *s = fasea_linalg::dot_slices(x, theta_tilde.as_slice());
                }
            }
        }
    }

    fn workspace(&self) -> &ScoreWorkspace {
        &self.ws
    }

    fn workspace_mut(&mut self) -> &mut ScoreWorkspace {
        &mut self.ws
    }

    fn observe(
        &mut self,
        _t: u64,
        contexts: &ContextMatrix,
        arrangement: &Arrangement,
        feedback: &Feedback,
    ) {
        for (v, accepted) in feedback.zip(arrangement) {
            self.estimator
                .observe(contexts.context(v), if accepted { 1.0 } else { 0.0 })
                .expect("ThompsonSampling: estimator update failed");
        }
    }

    fn state_bytes(&self) -> usize {
        // Estimator + workspace + the RNG state (StdRng is a ChaCha12 core).
        self.estimator.state_bytes()
            + self.ws.state_bytes()
            + std::mem::size_of::<fasea_stats::Rng>()
    }

    fn save_state(&self) -> Vec<u8> {
        // framed estimator | rng state (32 bytes). The RNG position is
        // part of durable state: recovery must re-draw exactly the
        // posterior samples the uninterrupted run would have drawn.
        let mut out = Vec::new();
        crate::snapshot::write_estimator_framed(&mut out, &self.estimator);
        out.extend_from_slice(&fasea_stats::rng_state(&self.rng));
        out
    }

    fn restore_state(&mut self, blob: &[u8]) -> Result<(), crate::SnapshotError> {
        let mut at = 0usize;
        let est = crate::snapshot::read_estimator_framed(blob, &mut at)?;
        crate::snapshot::check_estimator_shape(&est, &self.estimator)?;
        let rng = crate::snapshot::read_array::<32>(blob, &mut at)?;
        if at != blob.len() {
            return Err(crate::SnapshotError::Corrupt("trailing policy-state bytes"));
        }
        self.estimator = est;
        self.rng = fasea_stats::rng_from_state(rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_core::{ConflictGraph, EventId};

    fn make_view<'a>(
        ctx: &'a ContextMatrix,
        g: &'a ConflictGraph,
        rem: &'a [u32],
        cu: u32,
        t: u64,
    ) -> SelectionView<'a> {
        SelectionView {
            t,
            user_capacity: cu,
            contexts: ctx,
            conflicts: g,
            remaining: rem,
        }
    }

    #[test]
    fn sampling_scale_formula() {
        let ts = ThompsonSampling::new(20, 1.0, 0.1, 0);
        // q = 1 * sqrt(9 * 20 * ln(100/0.1))
        let expect = (9.0 * 20.0 * (100.0f64 / 0.1).ln()).sqrt();
        assert!((ts.sampling_scale(100) - expect).abs() < 1e-12);
        // R scales linearly.
        let ts2 = ThompsonSampling::with_r(20, 1.0, 0.1, 2.0, 0);
        assert!((ts2.sampling_scale(100) - 2.0 * expect).abs() < 1e-12);
    }

    #[test]
    fn scale_grows_with_dimension() {
        let t5 = ThompsonSampling::new(5, 1.0, 0.1, 0);
        let t20 = ThompsonSampling::new(20, 1.0, 0.1, 0);
        assert!(t20.sampling_scale(10) > t5.sampling_scale(10));
        assert!((t20.sampling_scale(10) / t5.sampling_scale(10) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_delta_means_more_exploration() {
        let a = ThompsonSampling::new(5, 1.0, 0.05, 0);
        let b = ThompsonSampling::new(5, 1.0, 0.2, 0);
        assert!(a.sampling_scale(10) > b.sampling_scale(10));
    }

    #[test]
    fn selections_are_noisy_across_rounds() {
        // Unlike Exploit, TS with fixed contexts and no feedback must
        // rotate arrangements — the sample changes every round.
        let mut ts = ThompsonSampling::new(3, 1.0, 0.1, 7);
        let ctx = ContextMatrix::from_rows(
            4,
            3,
            vec![0.5, 0.1, 0.0, 0.1, 0.5, 0.0, 0.0, 0.1, 0.5, 0.3, 0.3, 0.3],
        );
        let g = ConflictGraph::new(4);
        let rem = [100u32; 4];
        let mut seen = std::collections::HashSet::new();
        for t in 0..40 {
            let a = ts.select(&make_view(&ctx, &g, &rem, 1, t));
            seen.insert(a.events()[0]);
        }
        assert!(seen.len() >= 2, "TS never rotated: {seen:?}");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let ctx = ContextMatrix::from_rows(3, 2, vec![0.4, 0.1, 0.1, 0.4, 0.3, 0.3]);
        let g = ConflictGraph::new(3);
        let rem = [10u32; 3];
        let mut a = ThompsonSampling::new(2, 1.0, 0.1, 99);
        let mut b = ThompsonSampling::new(2, 1.0, 0.1, 99);
        for t in 0..20 {
            let sa = a.select(&make_view(&ctx, &g, &rem, 2, t));
            let sb = b.select(&make_view(&ctx, &g, &rem, 2, t));
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn learns_under_strong_signal() {
        // Even TS should converge when one event is always accepted and
        // the others never, in low dimension (d=1 is where the paper
        // finds TS competitive).
        let mut ts = ThompsonSampling::new(1, 1.0, 0.1, 3);
        let ctx = ContextMatrix::from_rows(2, 1, vec![1.0, -1.0]);
        let g = ConflictGraph::new(2);
        let rem = [10_000u32; 2];
        for t in 0..500 {
            let a = ts.select(&make_view(&ctx, &g, &rem, 1, t));
            let fb: Vec<bool> = a.iter().map(|v| v == EventId(0)).collect();
            ts.observe(t, &ctx, &a, &Feedback::new(fb));
        }
        // After 500 rounds the point estimate must be decisively positive.
        let mut est = ts.estimator.clone();
        assert!(est.point_estimate(&[1.0]) > 0.3);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn rejects_bad_delta() {
        let _ = ThompsonSampling::new(2, 1.0, 1.5, 0);
    }

    #[test]
    fn feasibility_respected() {
        let mut ts = ThompsonSampling::new(2, 1.0, 0.1, 0);
        let ctx = ContextMatrix::from_rows(3, 2, vec![0.9, 0.0, 0.8, 0.1, 0.7, 0.2]);
        let g = ConflictGraph::complete(3);
        let rem = [1u32, 0, 1];
        let a = ts.select(&make_view(&ctx, &g, &rem, 3, 5));
        assert!(a.len() <= 1); // complete conflicts
        if let Some(&v) = a.events().first() {
            assert!(rem[v.index()] > 0);
        }
    }

    #[test]
    fn name_and_params() {
        let ts = ThompsonSampling::new(2, 1.0, 0.2, 0);
        assert_eq!(ts.name(), "TS");
        assert_eq!(ts.delta(), 0.2);
        assert!(ts.last_scores().is_none());
        assert!(ts.state_bytes() > 0);
    }
}

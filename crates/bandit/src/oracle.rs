//! Oracle-Greedy (Algorithm 2) and an exhaustive reference oracle.

use crate::score_pool::{ScorePool, ShardWriter, SCORE_CHUNK};
use fasea_core::{Arrangement, ConflictGraph, EventId};

/// Algorithm 2 of the paper: visit events in non-increasing order of
/// estimated reward `r̂_{t,v}`; stop once `|A_t| = c_u`; add each visited
/// event iff it is non-full and conflicts with nothing already arranged.
///
/// Two paper-faithful subtleties:
///
/// * **Negative scores are arranged too.** The paper argues (Section 3)
///   that events with `r̂ ≤ 0` are only reached when nothing better fits,
///   their true reward may still be positive, and including them can
///   only gain — so there is no positivity filter here.
/// * **Ties break towards the lower event id**, making the oracle fully
///   deterministic given the scores (the paper's C++ `sort` is also
///   stable in effect because scores there are continuous).
///
/// Complexity: `O(|V| log |V|)` sort + `O(c_u |V| / 64)` masked conflict
/// checks, matching the paper's `|V|(log|V| + c_u)` analysis.
///
/// See [`crate::GreedyOracle`] for an example through the trait (the
/// paper's Example 3). This allocating form is crate-internal; the
/// public entry point is the [`crate::Oracle`] trait.
///
/// # Panics
/// Panics if `scores.len()`, the conflict graph and `remaining` disagree
/// on `|V|`.
#[cfg(test)]
pub(crate) fn greedy(
    scores: &[f64],
    conflicts: &ConflictGraph,
    remaining: &[u32],
    user_capacity: u32,
) -> Arrangement {
    let mut order = Vec::new();
    let mut mask = Vec::new();
    let mut arrangement = Arrangement::empty();
    greedy_into(
        scores,
        conflicts,
        remaining,
        user_capacity,
        &mut order,
        &mut mask,
        &mut arrangement,
    );
    arrangement
}

/// The allocation-free Oracle-Greedy core — Algorithm 2 into
/// caller-owned buffers; what the batched selection path uses through
/// [`crate::GreedyOracle::arrange_into`].
///
/// `order` and `mask` are scratch (their contents on entry are ignored;
/// [`crate::ScoreWorkspace`] owns them on the policy path) and `out` is
/// cleared then filled with the arrangement. Once the three buffers have
/// reached the instance size, repeat calls allocate nothing. The
/// arrangement produced is identical to [`greedy`]'s.
///
/// # Panics
/// Panics if `scores.len()`, the conflict graph and `remaining` disagree
/// on `|V|`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn greedy_into(
    scores: &[f64],
    conflicts: &ConflictGraph,
    remaining: &[u32],
    user_capacity: u32,
    order: &mut Vec<u32>,
    mask: &mut Vec<u64>,
    out: &mut Arrangement,
) {
    let n = scores.len();
    assert_eq!(n, conflicts.num_events(), "oracle_greedy: |V| mismatch");
    assert_eq!(n, remaining.len(), "oracle_greedy: capacity slice mismatch");
    out.clear();
    if user_capacity == 0 || n == 0 {
        return;
    }
    // Rank events by score, descending; ties by index ascending. The
    // index tiebreak makes this a total order with every pair
    // distinct, so the greedy scan only ever needs a *prefix* of the
    // full ranking: a single bounded-insertion pass keeps the top `k`
    // candidates sorted (one comparison per event, an O(k) shift only
    // when an event beats the current k-th best), and ranking more is
    // needed only when conflicts/capacity exhaust the prefix before
    // the arrangement fills. At |V| = 10k this replaces an O(n log n)
    // full sort — formerly the dominant per-round cost — with an O(n)
    // scan, and it is what makes the batched round's latency budget.
    // Everything stays in-place on the reused buffers, so the path
    // remains allocation-free once `order` has reached its steady
    // capacity.
    //
    // (With NaN scores no consistent order exists: `ranks_before`
    // falls back to the index for incomparable pairs — the same
    // pairwise fallback the sort comparator uses — but, as with the
    // old full sort, the overall ranking under NaN is unspecified.
    // Arrangements from NaN scores are not meaningful either way.)
    //
    // Enough slack that one pass suffices unless conflicts are dense
    // around the top of the ranking.
    let mut k = (user_capacity as usize).saturating_mul(4).max(32).min(n);
    loop {
        if k < n && k <= FULL_SORT_CUTOFF {
            // Bounded-insertion top-k: `order` holds the best `k` seen
            // so far, sorted best-first.
            order.clear();
            for v in 0..n as u32 {
                if order.len() == k {
                    if !ranks_before(scores, v, order[k - 1]) {
                        continue;
                    }
                    order.pop();
                }
                let pos = order.partition_point(|&o| ranks_before(scores, o, v));
                order.insert(pos, v);
            }
        } else {
            k = n;
            full_sort(scores, n, order);
        }

        greedy_scan(order, conflicts, remaining, user_capacity, mask, out);
        if out.len() >= user_capacity as usize || k == n {
            return;
        }
        // The prefix ran dry before the arrangement filled: rank a
        // larger prefix and redo the (cheap) greedy scan from scratch.
        k = k.saturating_mul(4).min(n);
    }
}

/// Past this prefix size the O(k) insertion shifts stop paying for
/// themselves and one full sort is cheaper.
const FULL_SORT_CUTOFF: usize = 2048;

/// The oracle's total visiting order: score descending, index ascending
/// on ties (or on NaN-incomparable pairs — see the comment in
/// [`greedy_into`]).
#[inline]
fn ranks_before(scores: &[f64], a: u32, b: u32) -> bool {
    match scores[a as usize].partial_cmp(&scores[b as usize]) {
        Some(std::cmp::Ordering::Greater) => true,
        Some(std::cmp::Ordering::Less) => false,
        _ => a < b,
    }
}

/// Ranks all `n` events into `order` under the same total order as
/// [`ranks_before`] (for finite scores).
fn full_sort(scores: &[f64], n: usize, order: &mut Vec<u32>) {
    order.clear();
    order.extend(0..n as u32);
    order.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
}

/// The Algorithm 2 greedy pass over a ranked candidate prefix: visit in
/// order, skip full or conflicting events, stop at `c_u`. Shared by the
/// serial and pooled oracles so their scans are the same code.
fn greedy_scan(
    order: &[u32],
    conflicts: &ConflictGraph,
    remaining: &[u32],
    user_capacity: u32,
    mask: &mut Vec<u64>,
    out: &mut Arrangement,
) {
    out.clear();
    mask.clear();
    mask.resize(conflicts.mask_words(), 0);
    for &vi in order.iter() {
        if out.len() >= user_capacity as usize {
            break;
        }
        let v = EventId(vi as usize);
        if remaining[vi as usize] == 0 {
            continue;
        }
        if conflicts.conflicts_with_mask(v, mask) {
            continue;
        }
        conflicts.mark_mask(v, mask);
        out.push(v);
    }
}

/// [`greedy_into`] with the candidate ranking sharded over a
/// [`ScorePool`] — **bit-identical arrangements** to the serial oracle
/// for finite scores. Reached through [`crate::GreedyOracle`] when the
/// oracle workspace carries a multi-thread pool.
///
/// Each pool chunk runs the same bounded-insertion top-k the serial
/// path uses, restricted to its own `SCORE_CHUNK`-sized event range,
/// into its own fixed-size slot of `shard_order` (so shards never
/// contend). The caller then merges serially: concatenate every
/// shard's candidates, sort them under the *same* total order
/// ([`ranks_before`]: score descending, index ascending), truncate to
/// `k`.
///
/// Why the merge equals the serial top-k: the index tiebreak makes the
/// ranking a strict total order, so the global top-`k` is a unique set;
/// every global top-`k` member is also in the top-`k` of its own shard
/// (it beats everything it beats globally), hence the union of shard
/// candidates contains the global top-`k`, and sorting + truncating
/// recovers exactly it, in exactly the serial visiting order. The
/// retry-on-conflict widening (×4, then the serial full-sort fallback
/// past [`FULL_SORT_CUTOFF`]) and the greedy scan itself are the same
/// code as the serial oracle.
///
/// With NaN scores no total order exists and the shard decomposition —
/// like the serial bounded-insertion pass itself — has unspecified
/// ranking; arrangements from NaN scores are not meaningful on either
/// path.
///
/// `shard_order` / `shard_counts` are reused scratch owned by
/// [`crate::ScoreWorkspace`]; once grown to the instance size the call
/// allocates nothing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn greedy_pooled_into(
    scores: &[f64],
    conflicts: &ConflictGraph,
    remaining: &[u32],
    user_capacity: u32,
    order: &mut Vec<u32>,
    mask: &mut Vec<u64>,
    shard_order: &mut Vec<u32>,
    shard_counts: &mut Vec<u32>,
    pool: &ScorePool,
    out: &mut Arrangement,
) {
    let n = scores.len();
    assert_eq!(n, conflicts.num_events(), "oracle_greedy: |V| mismatch");
    assert_eq!(n, remaining.len(), "oracle_greedy: capacity slice mismatch");
    out.clear();
    if user_capacity == 0 || n == 0 {
        return;
    }
    let num_chunks = n.div_ceil(SCORE_CHUNK);
    let mut k = (user_capacity as usize).saturating_mul(4).max(32).min(n);
    loop {
        if k < n && k <= FULL_SORT_CUTOFF {
            // Parallel per-shard bounded top-k into disjoint fixed
            // slots, then a serial same-order merge.
            shard_order.resize(num_chunks * k, 0);
            shard_counts.resize(num_chunks, 0);
            {
                let order_writer = ShardWriter::new(shard_order);
                let count_writer = ShardWriter::new(shard_counts);
                pool.run(n, SCORE_CHUNK, &|c, range| {
                    // SAFETY: chunk indices are claimed exactly once,
                    // so slot `c` and count `c` are touched by exactly
                    // one worker.
                    let slot = unsafe { order_writer.slice(c * k..(c + 1) * k) };
                    let count = unsafe { count_writer.slice(c..c + 1) };
                    let mut len = 0usize;
                    for v in range.start as u32..range.end as u32 {
                        if len == k {
                            if !ranks_before(scores, v, slot[k - 1]) {
                                continue;
                            }
                            len -= 1;
                        }
                        let pos = slot[..len].partition_point(|&o| ranks_before(scores, o, v));
                        slot.copy_within(pos..len, pos + 1);
                        slot[pos] = v;
                        len += 1;
                    }
                    count[0] = len as u32;
                });
            }
            order.clear();
            for c in 0..num_chunks {
                let live = shard_counts[c] as usize;
                order.extend_from_slice(&shard_order[c * k..c * k + live]);
            }
            order.sort_unstable_by(|&a, &b| {
                scores[b as usize]
                    .partial_cmp(&scores[a as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            order.truncate(k);
        } else {
            // Full ranking: the serial fallback (rare; only when the
            // widened prefix outgrew the cutoff without filling `c_u`).
            k = n;
            full_sort(scores, n, order);
        }

        greedy_scan(order, conflicts, remaining, user_capacity, mask, out);
        if out.len() >= user_capacity as usize || k == n {
            return;
        }
        k = k.saturating_mul(4).min(n);
    }
}

/// Bounded-insertion top-`k` over an arbitrary *subset* of events: the
/// at most `min(k, members.len())` best-ranked members under the
/// oracle's total order (score descending, index ascending on ties),
/// appended to `out` best-first. This is the per-shard half of the
/// gathered ranking ([`crate::GreedyOracle`]'s `arrange_gathered`): a
/// shard actor runs it over the event ids it owns and ships the result
/// to the coordinator.
///
/// The same bounded-insertion scan as the serial and pooled oracles —
/// one comparison per member, an O(k) shift only when a member beats
/// the current k-th best — so a shard's pass is O(|members|) for the
/// k values the oracle asks for. (This per-shard primitive is a public
/// free function by design: it is the half of the gathered ranking that
/// runs *on* the shard actors, below the [`crate::Oracle`] seam.)
///
/// # Panics
/// Debug-panics if a member id is out of range for `scores`.
pub fn subset_top_k(scores: &[f64], members: &[u32], k: usize, out: &mut Vec<u32>) {
    out.clear();
    if k == 0 {
        return;
    }
    for &v in members {
        debug_assert!((v as usize) < scores.len(), "subset_top_k: id out of range");
        if out.len() == k {
            if !ranks_before(scores, v, out[k - 1]) {
                continue;
            }
            out.pop();
        }
        let pos = out.partition_point(|&o| ranks_before(scores, o, v));
        out.insert(pos, v);
    }
}

/// [`greedy_into`] with the candidate ranking gathered from
/// *external* per-shard top-k passes — **identical arrangements** to
/// the serial oracle for finite scores.
///
/// `gather` is called with the prefix size `k` and must append every
/// shard's [`subset_top_k`] candidates for that `k` to the supplied
/// buffer (order across shards is irrelevant — the merge re-sorts).
/// The merge is the same as [`greedy_pooled_into`]'s: sort the
/// union under the oracle's total order ([`ranks_before`]: score
/// descending, index ascending), truncate to `k`, greedy-scan. The
/// correctness argument is identical — the index tiebreak makes the
/// ranking a strict total order, every global top-`k` member is in its
/// own shard's top-`k`, so the union contains the global top-`k` and
/// sort + truncate recovers exactly the serial visiting prefix.
///
/// Retry-on-conflict widening (×4) re-invokes `gather` with the larger
/// `k`; past [`FULL_SORT_CUTOFF`] (or at `k = n`) the coordinator falls
/// back to its local full sort and the shards are not consulted — the
/// same fallback the serial and pooled paths take.
///
/// # Panics
/// Panics if `scores.len()`, the conflict graph and `remaining`
/// disagree on `|V|`, or if `gather` appends an out-of-range id.
#[allow(clippy::too_many_arguments)]
pub(crate) fn greedy_dist_into(
    scores: &[f64],
    conflicts: &ConflictGraph,
    remaining: &[u32],
    user_capacity: u32,
    order: &mut Vec<u32>,
    mask: &mut Vec<u64>,
    out: &mut Arrangement,
    gather: &mut dyn FnMut(usize, &mut Vec<u32>),
) {
    let n = scores.len();
    assert_eq!(n, conflicts.num_events(), "oracle_greedy: |V| mismatch");
    assert_eq!(n, remaining.len(), "oracle_greedy: capacity slice mismatch");
    out.clear();
    if user_capacity == 0 || n == 0 {
        return;
    }
    let mut k = (user_capacity as usize).saturating_mul(4).max(32).min(n);
    loop {
        if k < n && k <= FULL_SORT_CUTOFF {
            order.clear();
            gather(k, order);
            assert!(
                order.iter().all(|&v| (v as usize) < n),
                "oracle_greedy_dist: gathered id out of range"
            );
            order.sort_unstable_by(|&a, &b| {
                scores[b as usize]
                    .partial_cmp(&scores[a as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            order.truncate(k);
        } else {
            k = n;
            full_sort(scores, n, order);
        }

        greedy_scan(order, conflicts, remaining, user_capacity, mask, out);
        if out.len() >= user_capacity as usize || k == n {
            return;
        }
        k = k.saturating_mul(4).min(n);
    }
}

/// Bounded-insertion top-`k` over the **non-full** events under the
/// oracle's total order ([`ranks_before`]) — the candidate
/// neighbourhood [`crate::TabuOracle`] explores. `out` holds at most
/// `k` ids, best-first.
pub(crate) fn ranked_prefix(scores: &[f64], remaining: &[u32], k: usize, out: &mut Vec<u32>) {
    debug_assert_eq!(scores.len(), remaining.len(), "ranked_prefix: |V| mismatch");
    out.clear();
    if k == 0 {
        return;
    }
    for v in 0..scores.len() as u32 {
        if remaining[v as usize] == 0 {
            continue;
        }
        if out.len() == k {
            if !ranks_before(scores, v, out[k - 1]) {
                continue;
            }
            out.pop();
        }
        let pos = out.partition_point(|&o| ranks_before(scores, o, v));
        out.insert(pos, v);
    }
}

/// Sum of the **positive** scores of an arrangement — the quantity
/// Theorem 1's `1/c_u` approximation guarantee speaks about
/// (`Σ_{v∈A_t | r̂>0} r̂_{t,v}`).
pub fn positive_score_sum(arrangement: &Arrangement, scores: &[f64]) -> f64 {
    arrangement
        .iter()
        .map(|v| scores[v.index()])
        .filter(|&s| s > 0.0)
        .sum()
}

/// Exhaustive oracle: the feasible arrangement maximising the sum of
/// positive scores, found by branch-and-bound over subsets. Exponential —
/// strictly a test/verification tool for `|V| ≤ ~20`; the experiment
/// harness never calls it.
///
/// # Panics
/// Panics on slice-length mismatch or `|V| > 25` (guard against
/// accidental exponential blow-up).
pub fn oracle_exhaustive(
    scores: &[f64],
    conflicts: &ConflictGraph,
    remaining: &[u32],
    user_capacity: u32,
) -> Arrangement {
    let n = scores.len();
    assert_eq!(n, conflicts.num_events(), "oracle_exhaustive: |V| mismatch");
    assert_eq!(n, remaining.len(), "oracle_exhaustive: capacity mismatch");
    assert!(n <= 25, "oracle_exhaustive is a test-only tool (|V| ≤ 25)");

    // Only events with positive score and free capacity can improve the
    // objective.
    let candidates: Vec<usize> = (0..n)
        .filter(|&v| scores[v] > 0.0 && remaining[v] > 0)
        .collect();

    let mut best_set: Vec<usize> = Vec::new();
    let mut best_score = 0.0f64;
    let mut current: Vec<usize> = Vec::new();

    // A plain recursive closure would need unstable recursion; the
    // argument list mirrors the search state and stays local to this
    // test-oriented solver.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        idx: usize,
        current_score: f64,
        candidates: &[usize],
        scores: &[f64],
        conflicts: &ConflictGraph,
        cap: usize,
        current: &mut Vec<usize>,
        best_set: &mut Vec<usize>,
        best_score: &mut f64,
    ) {
        if current_score > *best_score {
            *best_score = current_score;
            best_set.clone_from(current);
        }
        if idx == candidates.len() || current.len() == cap {
            return;
        }
        // Bound: even taking every remaining candidate cannot help?
        let rest: f64 = candidates[idx..].iter().map(|&v| scores[v]).sum();
        if current_score + rest <= *best_score {
            return;
        }
        let v = candidates[idx];
        // Branch 1: include v if feasible.
        if !current
            .iter()
            .any(|&w| conflicts.are_conflicting(EventId(v), EventId(w)))
        {
            current.push(v);
            recurse(
                idx + 1,
                current_score + scores[v],
                candidates,
                scores,
                conflicts,
                cap,
                current,
                best_set,
                best_score,
            );
            current.pop();
        }
        // Branch 2: skip v.
        recurse(
            idx + 1,
            current_score,
            candidates,
            scores,
            conflicts,
            cap,
            current,
            best_set,
            best_score,
        );
    }

    recurse(
        0,
        0.0,
        &candidates,
        scores,
        conflicts,
        user_capacity as usize,
        &mut current,
        &mut best_set,
        &mut best_score,
    );
    best_set.sort_unstable();
    Arrangement::new(best_set.into_iter().map(EventId).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(a: &Arrangement) -> Vec<usize> {
        let mut v: Vec<usize> = a.iter().map(|e| e.index()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn greedy_picks_top_scores_without_conflicts() {
        let g = ConflictGraph::new(4);
        let a = greedy(&[0.1, 0.9, 0.5, 0.7], &g, &[1; 4], 2);
        assert_eq!(a.events(), &[EventId(1), EventId(3)]);
    }

    #[test]
    fn greedy_respects_conflicts() {
        // Paper's running example: v1 conflicts v2 (0-based: 0 and 1).
        let g = ConflictGraph::from_pairs(4, &[(0, 1)]);
        // Example 3 (UCB round 1): scores 1.10, 0.49, 0.82, 2.00, c_u = 2
        // => v4 then v1 are arranged.
        let a = greedy(&[1.10, 0.49, 0.82, 2.00], &g, &[1; 4], 2);
        assert_eq!(a.events(), &[EventId(3), EventId(0)]);
    }

    #[test]
    fn greedy_paper_example_ts_round1() {
        // Example 2 (TS round 1): estimated rewards −3.94, −0.30, 1.74,
        // −13.07, conflicts {v1,v2}, c_u = 2 => v3 then v2.
        let g = ConflictGraph::from_pairs(4, &[(0, 1)]);
        let a = greedy(&[-3.94, -0.30, 1.74, -13.07], &g, &[1; 4], 2);
        assert_eq!(a.events(), &[EventId(2), EventId(1)]);
    }

    #[test]
    fn greedy_includes_negative_scores_when_room_remains() {
        let g = ConflictGraph::new(3);
        let a = greedy(&[-0.5, -0.1, -0.9], &g, &[1; 3], 2);
        // Visits in order v2(−0.1), v1(−0.5): both arranged.
        assert_eq!(a.events(), &[EventId(1), EventId(0)]);
    }

    #[test]
    fn greedy_skips_full_events() {
        let g = ConflictGraph::new(3);
        let a = greedy(&[0.9, 0.5, 0.1], &g, &[0, 1, 1], 2);
        assert_eq!(a.events(), &[EventId(1), EventId(2)]);
    }

    #[test]
    fn greedy_stops_at_user_capacity() {
        let g = ConflictGraph::new(5);
        let a = greedy(&[0.5; 5], &g, &[1; 5], 3);
        assert_eq!(a.len(), 3);
        // Tie-break towards lower ids.
        assert_eq!(a.events(), &[EventId(0), EventId(1), EventId(2)]);
    }

    #[test]
    fn greedy_zero_capacity_user() {
        let g = ConflictGraph::new(3);
        assert!(greedy(&[1.0, 1.0, 1.0], &g, &[1; 3], 0).is_empty());
    }

    #[test]
    fn greedy_complete_conflicts_arranges_single_event() {
        let g = ConflictGraph::complete(6);
        let a = greedy(&[0.1, 0.2, 0.9, 0.3, 0.4, 0.5], &g, &[1; 6], 4);
        assert_eq!(a.events(), &[EventId(2)]);
    }

    #[test]
    fn greedy_is_deterministic() {
        let g = ConflictGraph::from_pairs(6, &[(0, 1), (2, 3)]);
        let scores = [0.3, 0.3, 0.3, 0.3, 0.3, 0.3];
        let a1 = greedy(&scores, &g, &[1; 6], 3);
        let a2 = greedy(&scores, &g, &[1; 6], 3);
        assert_eq!(a1, a2);
    }

    #[test]
    fn exhaustive_beats_or_matches_greedy() {
        let g = ConflictGraph::from_pairs(5, &[(0, 1), (1, 2), (3, 4)]);
        let scores = [0.5, 0.9, 0.5, 0.2, 0.3];
        let greedy = greedy(&scores, &g, &[1; 5], 2);
        let best = oracle_exhaustive(&scores, &g, &[1; 5], 2);
        assert!(positive_score_sum(&best, &scores) >= positive_score_sum(&greedy, &scores) - 1e-12);
        // Greedy takes v2 (0.9, blocking v1 and v3) then v5 (0.3) = 1.2;
        // the optimum {v2, v5} = 1.2 coincides here — check the exact set.
        assert_eq!(ids(&best), vec![1, 4]);
        assert!((positive_score_sum(&best, &scores) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn theorem1_bound_on_adversarial_instance() {
        // Star conflict: centre scores slightly higher, blocking c_u leaves.
        let g = ConflictGraph::from_pairs(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let scores = [0.51, 0.5, 0.5, 0.5, 0.5];
        let cu = 4u32;
        let greedy = greedy(&scores, &g, &[1; 5], cu);
        let best = oracle_exhaustive(&scores, &g, &[1; 5], cu);
        let gs = positive_score_sum(&greedy, &scores);
        let bs = positive_score_sum(&best, &scores);
        assert_eq!(ids(&greedy), vec![0]); // trapped at the centre
        assert_eq!(ids(&best), vec![1, 2, 3, 4]);
        assert!(
            gs >= bs / cu as f64 - 1e-12,
            "Theorem 1 violated: {gs} < {bs}/{cu}"
        );
    }

    #[test]
    fn exhaustive_respects_capacity_and_conflicts() {
        let g = ConflictGraph::from_pairs(4, &[(0, 1)]);
        let best = oracle_exhaustive(&[1.0, 1.0, 1.0, 1.0], &g, &[1, 1, 0, 1], 2);
        // v2 is full; {v0 or v1} + v3.
        assert_eq!(best.len(), 2);
        assert!(ids(&best).contains(&3));
    }

    #[test]
    fn positive_score_sum_ignores_negatives() {
        let a = Arrangement::new(vec![EventId(0), EventId(1), EventId(2)]);
        assert!((positive_score_sum(&a, &[0.5, -0.2, 0.3]) - 0.8).abs() < 1e-15);
    }

    #[test]
    fn empty_instance() {
        let g = ConflictGraph::new(0);
        assert!(greedy(&[], &g, &[], 3).is_empty());
        assert!(oracle_exhaustive(&[], &g, &[], 3).is_empty());
    }

    #[test]
    fn into_retries_when_top_k_prefix_runs_dry() {
        // The 150 highest-scored events are all full, so the initial
        // top-k prefix (k = max(32, 4·cu)) yields nothing usable and
        // the ranking must grow — through one ×4 retry and into the
        // full-sort fallback — before the arrangement can fill.
        let n = 200usize;
        let scores: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
        let mut remaining = vec![0u32; n];
        for r in remaining.iter_mut().skip(150) {
            *r = 10;
        }
        let g = ConflictGraph::new(n);
        let cu = 5u32;
        let mut order = Vec::new();
        let mut mask = Vec::new();
        let mut out = Arrangement::empty();
        greedy_into(&scores, &g, &remaining, cu, &mut order, &mut mask, &mut out);
        let expected: Vec<usize> = (150..155).collect();
        assert_eq!(ids(&out), expected);
        assert_eq!(out, greedy(&scores, &g, &remaining, cu));
    }

    /// Drives both oracle forms over the same instance and asserts
    /// equal arrangements.
    fn assert_pooled_matches_serial(
        scores: &[f64],
        conflicts: &ConflictGraph,
        remaining: &[u32],
        cu: u32,
        pool: &ScorePool,
    ) {
        let serial = greedy(scores, conflicts, remaining, cu);
        let mut order = Vec::new();
        let mut mask = Vec::new();
        let mut shard_order = Vec::new();
        let mut shard_counts = Vec::new();
        let mut out = Arrangement::empty();
        greedy_pooled_into(
            scores,
            conflicts,
            remaining,
            cu,
            &mut order,
            &mut mask,
            &mut shard_order,
            &mut shard_counts,
            pool,
            &mut out,
        );
        assert_eq!(out, serial, "pooled oracle diverged (cu={cu})");
    }

    #[test]
    fn pooled_matches_serial_across_shapes() {
        let pool = ScorePool::new(3);
        // Multi-chunk with a ragged tail, pseudo-random scores, some
        // duplicate values (tiebreak exercised), sparse conflicts.
        let n = 2 * SCORE_CHUNK + 77;
        let scores: Vec<f64> = (0..n)
            .map(|i| (((i as u64).wrapping_mul(2654435761) >> 7) % 1000) as f64 / 10.0)
            .collect();
        let pairs: Vec<(usize, usize)> = (0..n / 10).map(|i| (i, i + n / 2)).collect();
        let g = ConflictGraph::from_pairs(n, &pairs);
        let remaining: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        for cu in [0u32, 1, 5, 64] {
            assert_pooled_matches_serial(&scores, &g, &remaining, cu, &pool);
        }
    }

    #[test]
    fn pooled_matches_serial_small_and_empty() {
        let pool = ScorePool::new(4);
        let g = ConflictGraph::from_pairs(4, &[(0, 1)]);
        assert_pooled_matches_serial(&[1.10, 0.49, 0.82, 2.00], &g, &[1; 4], 2, &pool);
        let g0 = ConflictGraph::new(0);
        assert_pooled_matches_serial(&[], &g0, &[], 3, &pool);
    }

    #[test]
    fn pooled_matches_serial_through_retry_widening() {
        // The dry-prefix instances that force the ×4 widening and the
        // full-sort fallback, pushed past one chunk.
        let pool = ScorePool::new(2);
        let n = SCORE_CHUNK + 300;
        let scores: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
        // All but the tail full: the first prefixes are dry.
        let mut remaining = vec![0u32; n];
        for r in remaining.iter_mut().skip(n - 50) {
            *r = 10;
        }
        let g = ConflictGraph::new(n);
        assert_pooled_matches_serial(&scores, &g, &remaining, 5, &pool);
    }

    /// Drives the dist oracle over `shards` disjoint member lists
    /// (simulated in-process) and asserts the serial arrangement.
    fn assert_dist_matches_serial(
        scores: &[f64],
        conflicts: &ConflictGraph,
        remaining: &[u32],
        cu: u32,
        shards: usize,
    ) {
        let n = scores.len();
        // Round-robin membership: deliberately *not* component-aligned —
        // the merge theorem needs only disjoint covering subsets.
        let members: Vec<Vec<u32>> = (0..shards)
            .map(|s| {
                (0..n as u32)
                    .filter(|v| (*v as usize) % shards == s)
                    .collect()
            })
            .collect();
        let serial = greedy(scores, conflicts, remaining, cu);
        let mut order = Vec::new();
        let mut mask = Vec::new();
        let mut out = Arrangement::empty();
        let mut scratch = Vec::new();
        greedy_dist_into(
            scores,
            conflicts,
            remaining,
            cu,
            &mut order,
            &mut mask,
            &mut out,
            &mut |k, order| {
                for m in &members {
                    subset_top_k(scores, m, k, &mut scratch);
                    order.extend_from_slice(&scratch);
                }
            },
        );
        assert_eq!(
            out, serial,
            "dist oracle diverged (cu={cu}, shards={shards})"
        );
    }

    #[test]
    fn dist_matches_serial_across_shapes() {
        let n = 500usize;
        let scores: Vec<f64> = (0..n)
            .map(|i| (((i as u64).wrapping_mul(2654435761) >> 7) % 100) as f64 / 10.0)
            .collect();
        let pairs: Vec<(usize, usize)> = (0..n / 10).map(|i| (i, i + n / 2)).collect();
        let g = ConflictGraph::from_pairs(n, &pairs);
        let remaining: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        for shards in [1usize, 2, 4, 7] {
            for cu in [0u32, 1, 5, 64] {
                assert_dist_matches_serial(&scores, &g, &remaining, cu, shards);
            }
        }
    }

    #[test]
    fn dist_matches_serial_through_retry_widening() {
        // Dry-prefix instance: only the 50 worst-scored events have
        // capacity, forcing the ×4 widening and the local full-sort
        // fallback past the cutoff.
        let n = 300usize;
        let scores: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
        let mut remaining = vec![0u32; n];
        for r in remaining.iter_mut().skip(n - 50) {
            *r = 10;
        }
        let g = ConflictGraph::new(n);
        assert_dist_matches_serial(&scores, &g, &remaining, 5, 3);
    }

    #[test]
    fn subset_top_k_ranks_like_the_oracle() {
        let scores = [0.5, 0.9, 0.9, 0.1, 0.7];
        let mut out = Vec::new();
        subset_top_k(&scores, &[0, 1, 2, 3, 4], 3, &mut out);
        // Tie between 1 and 2 breaks to the lower id.
        assert_eq!(out, vec![1, 2, 4]);
        subset_top_k(&scores, &[3, 0], 8, &mut out);
        assert_eq!(out, vec![0, 3]);
        subset_top_k(&scores, &[3, 0], 0, &mut out);
        assert!(out.is_empty());
        subset_top_k(&scores, &[], 2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn into_retries_when_conflicts_exhaust_prefix() {
        // Same dry-prefix shape driven by conflicts instead of
        // capacity: the top-scored event conflicts with the next 60,
        // so after arranging it the rest of the first prefix is dead.
        let n = 100usize;
        let scores: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
        let pairs: Vec<(usize, usize)> = (1..=60).map(|v| (0, v)).collect();
        let g = ConflictGraph::from_pairs(n, &pairs);
        let remaining = vec![1u32; n];
        let cu = 4u32;
        let mut order = Vec::new();
        let mut mask = Vec::new();
        let mut out = Arrangement::empty();
        greedy_into(&scores, &g, &remaining, cu, &mut order, &mut mask, &mut out);
        // Event 0 first, then the best non-conflicting ones: 61, 62, 63.
        assert_eq!(ids(&out), vec![0, 61, 62, 63]);
        assert_eq!(out, greedy(&scores, &g, &remaining, cu));
    }
}

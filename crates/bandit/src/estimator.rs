//! Shared ridge-regression estimator (lines 1–2, 6, 13–14 of the
//! paper's algorithms).

use fasea_linalg::{Cholesky, LinalgError, ShermanMorrisonInverse, Vector};

/// Rounds between full `Y⁻¹` re-factorisations. The Sherman–Morrison
/// recursion is numerically benign (`Y` only grows in the PSD order),
/// but over the paper's `T = 100 000` rounds a periodic refresh keeps
/// the maintained inverse at factorisation accuracy essentially for free
/// (one `O(d³)` solve every few thousand `O(d²)` updates).
const REFRESH_INTERVAL: u64 = 4096;

/// The regularised least-squares state every learning policy maintains:
///
/// * `Y = λ I + Σ x xᵀ` over all observed (arranged) contexts,
/// * `b = Σ r x` over observed rewards,
/// * `θ̂ = Y⁻¹ b` — the ridge estimate (line 6 of Algorithms 1/3/4).
///
/// `Y⁻¹` is maintained incrementally, so per-observation cost is `O(d²)`
/// and `θ̂` recomputation is `O(d²)` (one mat-vec), against the paper's
/// `O(d³)` per-round inversion accounting.
///
/// # Example
///
/// ```
/// use fasea_bandit::RidgeEstimator;
///
/// let mut est = RidgeEstimator::new(2, 1.0); // d = 2, λ = 1
/// // Noiseless rewards from θ = [0.8, 0.0].
/// for _ in 0..100 {
///     est.observe(&[1.0, 0.0], 0.8).unwrap();
///     est.observe(&[0.0, 1.0], 0.0).unwrap();
/// }
/// let theta = est.theta_hat();
/// assert!((theta[0] - 0.8).abs() < 0.01);
/// assert!(theta[1].abs() < 0.01);
/// // Confidence shrinks along observed directions.
/// assert!(est.confidence_width(&[1.0, 0.0]) < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct RidgeEstimator {
    sm: ShermanMorrisonInverse,
    b: Vector,
    theta_hat: Vector,
    theta_stale: bool,
    theta_recomputes: u64,
}

impl RidgeEstimator {
    /// Creates the estimator with `Y = λI`, `b = 0`.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `lambda <= 0`.
    pub fn new(dim: usize, lambda: f64) -> Self {
        RidgeEstimator {
            sm: ShermanMorrisonInverse::new(dim, lambda),
            b: Vector::zeros(dim),
            theta_hat: Vector::zeros(dim),
            theta_stale: false, // Y⁻¹b = 0 initially, already correct.
            theta_recomputes: 0,
        }
    }

    /// Context dimension `d`.
    pub fn dim(&self) -> usize {
        self.sm.dim()
    }

    /// Regularisation strength λ.
    pub fn lambda(&self) -> f64 {
        self.sm.lambda()
    }

    /// Number of (context, reward) observations absorbed.
    pub fn observations(&self) -> u64 {
        self.sm.update_count()
    }

    /// Absorbs one observation: `Y += x xᵀ`, `b += r·x`.
    ///
    /// # Errors
    /// Propagates [`LinalgError`] on dimension mismatch or non-finite
    /// input.
    pub fn observe(&mut self, x: &[f64], reward: f64) -> Result<(), LinalgError> {
        if x.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch(self.dim(), x.len()));
        }
        if !reward.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        self.sm.rank1_update(x)?;
        for (bi, &xi) in self.b.iter_mut().zip(x) {
            *bi += reward * xi;
        }
        self.theta_stale = true;
        if self.sm.update_count().is_multiple_of(REFRESH_INTERVAL) {
            self.sm.refresh()?;
        }
        Ok(())
    }

    /// The ridge estimate `θ̂ = Y⁻¹ b`, recomputed lazily after updates:
    /// repeat `select` rounds between observations reuse the cached
    /// vector (see [`RidgeEstimator::theta_recomputes`]).
    pub fn theta_hat(&mut self) -> &Vector {
        self.ensure_theta();
        &self.theta_hat
    }

    /// Borrows `θ̂` (refreshing the cache if stale) **and** the maintained
    /// inverse in one call — the batched scoring path needs both at once
    /// and must not clone `θ̂` per round.
    pub fn theta_and_inverse(&mut self) -> (&Vector, &ShermanMorrisonInverse) {
        self.ensure_theta();
        (&self.theta_hat, &self.sm)
    }

    /// How many times `θ̂` has actually been recomputed from `Y⁻¹b`. The
    /// regression tests pin this to the number of observe→select
    /// transitions — scoring rounds alone must not grow it.
    pub fn theta_recomputes(&self) -> u64 {
        self.theta_recomputes
    }

    fn ensure_theta(&mut self) {
        if self.theta_stale {
            self.sm.solve_into(&self.b, self.theta_hat.as_mut_slice());
            self.theta_stale = false;
            self.theta_recomputes += 1;
        }
    }

    /// Point estimate of an event's expected reward, `xᵀ θ̂`.
    pub fn point_estimate(&mut self, x: &[f64]) -> f64 {
        self.ensure_theta();
        fasea_linalg::dot_slices(x, &self.theta_hat)
    }

    /// UCB confidence width `√(xᵀ Y⁻¹ x)` (Algorithm 3, line 8, without
    /// the `α` multiplier). Scalar form; the batched path uses
    /// [`ShermanMorrisonInverse::widths_into`] on the whole context block.
    pub fn confidence_width(&self, x: &[f64]) -> f64 {
        self.sm.inv_quadratic_form(x).max(0.0).sqrt()
    }

    /// Batched confidence widths over a row-major `n × d` context block —
    /// `out[v] = √(max(x_vᵀ Y⁻¹ x_v, 0))`, bit-identical per row to
    /// [`RidgeEstimator::confidence_width`].
    ///
    /// # Panics
    /// Panics on a block/output shape mismatch.
    pub fn widths_into(&self, xs: &[f64], out: &mut [f64]) {
        self.sm.widths_into(xs, self.dim(), out);
    }

    /// A Cholesky factor of the current `Y`, for TS posterior sampling.
    ///
    /// # Errors
    /// Propagates factorisation failure (cannot happen while `Y ⪰ λI`).
    pub fn gram_cholesky(&self) -> Result<Cholesky, LinalgError> {
        // Y accumulates symmetric updates; symmetrise defensively on a
        // copy to guard the factorisation against round-off asymmetry.
        let mut y = self.sm.y().clone();
        y.symmetrize()?;
        Cholesky::factor(&y)
    }

    /// Borrows the maintained `Y⁻¹` (used by tests and diagnostics).
    pub fn y_inv(&self) -> &fasea_linalg::Matrix {
        self.sm.y_inv()
    }

    /// Borrows the Gram matrix `Y` (snapshot serialisation).
    pub fn gram_matrix(&self) -> &fasea_linalg::Matrix {
        self.sm.y()
    }

    /// Borrows the reward-weighted context sum `b` (snapshot
    /// serialisation).
    pub fn b_vector(&self) -> &Vector {
        &self.b
    }

    /// Rebuilds an estimator from saved parts (snapshot restore): the
    /// inverse is re-derived from `y` by factorisation.
    ///
    /// # Errors
    /// Propagates factorisation failure when `y` is not SPD, or a
    /// dimension mismatch between `y` and `b`.
    pub fn from_parts(
        lambda: f64,
        y: fasea_linalg::Matrix,
        b: Vector,
        observations: u64,
    ) -> Result<Self, LinalgError> {
        if y.rows() != b.dim() {
            return Err(LinalgError::DimensionMismatch(y.rows(), b.dim()));
        }
        let sm = ShermanMorrisonInverse::from_state(y, lambda, observations)?;
        let dim = sm.dim();
        let mut est = RidgeEstimator {
            sm,
            b,
            theta_hat: Vector::zeros(dim),
            theta_stale: true,
            theta_recomputes: 0,
        };
        // Eagerly validate by computing θ̂ once.
        let _ = est.theta_hat();
        Ok(est)
    }

    /// Approximate state size in bytes: `Y`, `Y⁻¹` (d² each), `b`, `θ̂`
    /// and the update scratch vector (d each).
    pub fn state_bytes(&self) -> usize {
        let d = self.dim();
        (2 * d * d + 3 * d) * std::mem::size_of::<f64>()
    }

    /// Whether `θ̂` is stale relative to `(Y⁻¹, b)` — i.e. an `observe`
    /// has happened since the last `θ̂` read. Exposed so the exact-state
    /// codec of the personalized model store can preserve the flag: a
    /// demoted-then-restored estimator must recompute (or not) `θ̂` at
    /// exactly the same access its never-demoted twin would.
    pub fn is_theta_stale(&self) -> bool {
        self.theta_stale
    }

    /// Borrows the cached `θ̂` **without** refreshing it — possibly stale
    /// (pair with [`RidgeEstimator::is_theta_stale`]). The exact-state
    /// codec serialises these bits verbatim; every scoring path keeps
    /// using [`RidgeEstimator::theta_hat`].
    pub fn theta_hat_cached(&self) -> &Vector {
        &self.theta_hat
    }

    /// Rebuilds an estimator from a **bit-exact** state export: unlike
    /// [`RidgeEstimator::from_parts`], the maintained inverse and the
    /// cached `θ̂` are restored verbatim rather than re-derived, so a
    /// spilled-and-faulted-back estimator is indistinguishable — to the
    /// last mantissa bit — from one that never left memory. This is the
    /// restore half of the `fasea-models` residency contract.
    ///
    /// # Errors
    /// Propagates shape/finiteness mismatches between the parts; the
    /// inverse itself is trusted (callers must only feed back parts
    /// previously read off a live estimator).
    #[allow(clippy::too_many_arguments)]
    pub fn from_exact_parts(
        lambda: f64,
        y: fasea_linalg::Matrix,
        y_inv: fasea_linalg::Matrix,
        b: Vector,
        theta_hat: Vector,
        theta_stale: bool,
        observations: u64,
        theta_recomputes: u64,
    ) -> Result<Self, LinalgError> {
        let sm = ShermanMorrisonInverse::from_raw_parts(y, y_inv, lambda, observations)?;
        if sm.dim() != b.dim() {
            return Err(LinalgError::DimensionMismatch(sm.dim(), b.dim()));
        }
        if sm.dim() != theta_hat.dim() {
            return Err(LinalgError::DimensionMismatch(sm.dim(), theta_hat.dim()));
        }
        if !b.is_finite() || !theta_hat.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        Ok(RidgeEstimator {
            sm,
            b,
            theta_hat,
            theta_stale,
            theta_recomputes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_estimator_predicts_zero() {
        let mut e = RidgeEstimator::new(4, 1.0);
        assert_eq!(e.theta_hat().as_slice(), &[0.0; 4]);
        assert_eq!(e.point_estimate(&[1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(e.observations(), 0);
    }

    #[test]
    fn one_observation_closed_form() {
        // d=1, λ=1: after observing (x=1, r=1), Y=2, b=1 => θ̂ = 0.5.
        let mut e = RidgeEstimator::new(1, 1.0);
        e.observe(&[1.0], 1.0).unwrap();
        assert!((e.theta_hat()[0] - 0.5).abs() < 1e-14);
        assert_eq!(e.observations(), 1);
    }

    #[test]
    fn converges_to_true_theta() {
        // Noiseless linear rewards: θ̂ → θ as observations accumulate.
        let theta = [0.3, -0.2, 0.5];
        let mut e = RidgeEstimator::new(3, 1.0);
        let mut state = 12345u64;
        for _ in 0..5000 {
            let x: Vec<f64> = (0..3)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
                .collect();
            let r: f64 = x.iter().zip(&theta).map(|(a, b)| a * b).sum();
            e.observe(&x, r).unwrap();
        }
        let hat = e.theta_hat();
        for i in 0..3 {
            assert!((hat[i] - theta[i]).abs() < 1e-2, "dim {i}: {}", hat[i]);
        }
    }

    #[test]
    fn confidence_width_shrinks_with_observations() {
        let mut e = RidgeEstimator::new(2, 1.0);
        let x = [0.6, 0.8];
        let w0 = e.confidence_width(&x);
        assert!((w0 - 1.0).abs() < 1e-12); // √(‖x‖²/λ) = ‖x‖ = 1
        e.observe(&x, 1.0).unwrap();
        let w1 = e.confidence_width(&x);
        assert!(w1 < w0);
        for _ in 0..100 {
            e.observe(&x, 1.0).unwrap();
        }
        assert!(e.confidence_width(&x) < 0.1);
    }

    #[test]
    fn unseen_direction_keeps_wide_confidence() {
        let mut e = RidgeEstimator::new(2, 1.0);
        for _ in 0..100 {
            e.observe(&[1.0, 0.0], 0.5).unwrap();
        }
        // Orthogonal direction was never observed: width stays at √(1/λ).
        let w = e.confidence_width(&[0.0, 1.0]);
        assert!((w - 1.0).abs() < 1e-9, "w={w}");
    }

    #[test]
    fn gram_cholesky_factors_current_y() {
        let mut e = RidgeEstimator::new(3, 2.0);
        e.observe(&[0.1, 0.2, 0.3], 1.0).unwrap();
        e.observe(&[0.5, -0.1, 0.0], 0.0).unwrap();
        let ch = e.gram_cholesky().unwrap();
        let l = ch.factor_l();
        let recon = l.matmul(&l.transposed());
        // Y = 2I + x1 x1ᵀ + x2 x2ᵀ.
        let mut y = fasea_linalg::Matrix::scaled_identity(3, 2.0);
        y.add_outer(&Vector::from([0.1, 0.2, 0.3]), 1.0);
        y.add_outer(&Vector::from([0.5, -0.1, 0.0]), 1.0);
        assert!(recon.max_abs_diff(&y) < 1e-12);
    }

    #[test]
    fn rejects_bad_observations() {
        let mut e = RidgeEstimator::new(2, 1.0);
        assert!(e.observe(&[1.0], 1.0).is_err());
        assert!(e.observe(&[1.0, 2.0], f64::NAN).is_err());
        assert!(e.observe(&[f64::INFINITY, 0.0], 1.0).is_err());
        assert_eq!(e.observations(), 0);
    }

    #[test]
    fn refresh_interval_survives_long_runs() {
        let mut e = RidgeEstimator::new(2, 1.0);
        for i in 0..(2 * super::REFRESH_INTERVAL + 10) {
            let x = [((i % 7) as f64) / 7.0, ((i % 5) as f64) / 5.0];
            e.observe(&x, (i % 2) as f64).unwrap();
        }
        // After the periodic refresh the inverse must stay finite and
        // symmetric at factorisation accuracy.
        let y_inv = e.y_inv();
        assert!(y_inv.is_finite());
        assert!(y_inv.is_symmetric(1e-8));
    }

    #[test]
    fn theta_hat_matches_closed_form() {
        // θ̂ must equal (λI + Σ x xᵀ)⁻¹ Σ r·x computed independently via
        // a fresh Cholesky factorisation.
        use fasea_linalg::{Cholesky, Matrix};
        let lambda = 0.7;
        let d = 4;
        let observations: Vec<(Vec<f64>, f64)> = (0..25)
            .map(|k| {
                let x: Vec<f64> = (0..d)
                    .map(|i| ((k * 3 + i * 7) % 11) as f64 / 11.0 - 0.4)
                    .collect();
                (x, (k % 3) as f64 / 2.0)
            })
            .collect();

        let mut e = RidgeEstimator::new(d, lambda);
        for (x, r) in &observations {
            e.observe(x, *r).unwrap();
        }

        let mut y = Matrix::scaled_identity(d, lambda);
        let mut b = Vector::zeros(d);
        for (x, r) in &observations {
            let xv = Vector::from(x.as_slice());
            y.add_outer(&xv, 1.0);
            b.axpy(*r, &xv);
        }
        let expect = Cholesky::factor(&y).unwrap().solve(&b);
        let got = e.theta_hat();
        for i in 0..d {
            assert!(
                (got[i] - expect[i]).abs() < 1e-10,
                "dim {i}: {} vs {}",
                got[i],
                expect[i]
            );
        }
    }

    #[test]
    fn theta_recomputed_only_after_observe() {
        let mut e = RidgeEstimator::new(3, 1.0);
        assert_eq!(e.theta_recomputes(), 0);
        // Reads without fresh data must reuse the cache.
        let _ = e.theta_hat();
        let _ = e.point_estimate(&[1.0, 0.0, 0.0]);
        let _ = e.theta_and_inverse();
        assert_eq!(e.theta_recomputes(), 0);
        e.observe(&[1.0, 0.0, 0.0], 1.0).unwrap();
        let _ = e.theta_hat();
        let _ = e.theta_hat();
        let _ = e.theta_and_inverse();
        assert_eq!(e.theta_recomputes(), 1, "one recompute per observe batch");
        e.observe(&[0.0, 1.0, 0.0], 0.0).unwrap();
        e.observe(&[0.0, 0.0, 1.0], 1.0).unwrap();
        let _ = e.theta_and_inverse();
        assert_eq!(e.theta_recomputes(), 2);
    }

    #[test]
    fn theta_and_inverse_matches_parts() {
        let mut e = RidgeEstimator::new(2, 1.0);
        e.observe(&[0.6, 0.8], 1.0).unwrap();
        let theta = e.theta_hat().clone();
        let (th, sm) = e.theta_and_inverse();
        assert_eq!(th.as_slice(), theta.as_slice());
        assert_eq!(sm.update_count(), 1);
    }

    #[test]
    fn batched_widths_match_scalar() {
        let mut e = RidgeEstimator::new(3, 0.5);
        for i in 0..40 {
            let x = [
                ((i * 7) % 11) as f64 / 11.0,
                ((i * 3) % 5) as f64 / 5.0 - 0.4,
                ((i * 13) % 17) as f64 / 17.0,
            ];
            e.observe(&x, (i % 2) as f64).unwrap();
        }
        let rows: Vec<f64> = (0..15).map(|k| ((k * 5) % 9) as f64 / 9.0 - 0.3).collect();
        let mut batched = vec![0.0; 5];
        e.widths_into(&rows, &mut batched);
        for (v, chunk) in rows.chunks_exact(3).enumerate() {
            assert_eq!(
                batched[v],
                e.confidence_width(chunk),
                "width mismatch at row {v}"
            );
        }
    }

    #[test]
    fn state_bytes_scales_quadratically() {
        let e5 = RidgeEstimator::new(5, 1.0);
        let e10 = RidgeEstimator::new(10, 1.0);
        assert!(e10.state_bytes() > 3 * e5.state_bytes());
    }

    #[test]
    fn state_bytes_matches_actual_buffer_sizes() {
        // The accounting the EstimatorStore budgets against must equal
        // the real float payload: Y + Y⁻¹ (d² each), b + θ̂ + the update
        // scratch vector (d each), 8 bytes per entry.
        for d in [1usize, 3, 8, 20] {
            let mut e = RidgeEstimator::new(d, 1.0);
            for k in 0..5 {
                let x: Vec<f64> = (0..d).map(|i| ((k + i) % 3) as f64 * 0.2).collect();
                e.observe(&x, 1.0).unwrap();
            }
            let floats = e.gram_matrix().as_slice().len()
                + e.y_inv().as_slice().len()
                + e.b_vector().dim()
                + e.theta_hat_cached().dim()
                + d; // the ShermanMorrison scratch vector
            assert_eq!(
                e.state_bytes(),
                floats * std::mem::size_of::<f64>(),
                "state_bytes drifted from the real buffers at d={d}"
            );
        }
    }

    #[test]
    fn exact_parts_restore_preserves_stale_flag_and_counters() {
        let mut e = RidgeEstimator::new(3, 1.0);
        e.observe(&[0.4, 0.1, -0.2], 1.0).unwrap();
        let _ = e.theta_hat();
        e.observe(&[0.0, 0.3, 0.2], 0.0).unwrap(); // leave θ̂ stale
        assert!(e.is_theta_stale());
        let r = RidgeEstimator::from_exact_parts(
            e.lambda(),
            e.gram_matrix().clone(),
            e.y_inv().clone(),
            e.b_vector().clone(),
            e.theta_hat_cached().clone(),
            e.is_theta_stale(),
            e.observations(),
            e.theta_recomputes(),
        )
        .unwrap();
        assert!(r.is_theta_stale());
        assert_eq!(r.theta_recomputes(), e.theta_recomputes());
        assert_eq!(r.observations(), 2);
        // The stale cached θ̂ carries the pre-second-observe bits.
        assert_eq!(
            r.theta_hat_cached().as_slice(),
            e.theta_hat_cached().as_slice()
        );
    }

    #[test]
    fn exact_parts_rejects_mismatched_shapes() {
        let e = RidgeEstimator::new(3, 1.0);
        let bad = RidgeEstimator::from_exact_parts(
            1.0,
            e.gram_matrix().clone(),
            e.y_inv().clone(),
            Vector::zeros(2), // wrong b
            Vector::zeros(3),
            false,
            0,
            0,
        );
        assert!(bad.is_err());
        let bad = RidgeEstimator::from_exact_parts(
            1.0,
            e.gram_matrix().clone(),
            fasea_linalg::Matrix::identity(4), // wrong inverse shape
            Vector::zeros(3),
            Vector::zeros(3),
            false,
            0,
            0,
        );
        assert!(bad.is_err());
    }
}

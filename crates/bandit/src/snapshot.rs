//! Binary snapshots of learner state.
//!
//! A production arrangement service cannot afford to relearn `θ` from
//! scratch on every restart — the paper's own real-data experiment shows
//! learning takes hundreds of rounds. This module serialises the shared
//! [`RidgeEstimator`] state (λ, `Y`, `b`) to a small self-describing
//! binary blob and restores it exactly (`Y⁻¹` is re-derived by
//! factorisation rather than trusted from disk, so a snapshot can never
//! smuggle in an inconsistent inverse).
//!
//! Format (little-endian):
//!
//! ```text
//! magic  "FASEAEST"           8 bytes
//! version u32                 4 bytes
//! dim     u32                 4 bytes
//! lambda  f64                 8 bytes
//! count   u64                 8 bytes   (observation count)
//! Y       dim*dim f64         row-major
//! b       dim f64
//! ```
//!
//! No serde: the format is 5 fixed fields and two float arrays, and a
//! hand-rolled codec keeps the workspace inside the sanctioned
//! dependency set.

use crate::RidgeEstimator;
use fasea_linalg::{Matrix, Vector};

/// Magic prefix identifying an estimator snapshot.
pub const MAGIC: &[u8; 8] = b"FASEAEST";
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors from snapshot decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob does not start with [`MAGIC`].
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The blob is shorter than its header promises.
    Truncated,
    /// Header fields are inconsistent (zero dim, non-finite λ, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a FASEA estimator snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot is corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serialises an estimator's state.
pub fn save_estimator(estimator: &RidgeEstimator) -> Vec<u8> {
    let d = estimator.dim();
    let mut out = Vec::with_capacity(32 + 8 * (d * d + d));
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(d as u32).to_le_bytes());
    out.extend_from_slice(&estimator.lambda().to_le_bytes());
    out.extend_from_slice(&estimator.observations().to_le_bytes());
    for &v in estimator.gram_matrix().as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &v in estimator.b_vector().as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Restores an estimator from a snapshot blob.
///
/// # Errors
/// Any structural problem with the blob; the restored `Y` must also be
/// SPD (it is re-factorised to rebuild `Y⁻¹`).
pub fn restore_estimator(blob: &[u8]) -> Result<RidgeEstimator, SnapshotError> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Result<&[u8], SnapshotError> {
        if *at + n > blob.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &blob[*at..*at + n];
        *at += n;
        Ok(s)
    };

    if take(&mut at, 8)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let dim = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap()) as usize;
    if dim == 0 || dim > 1 << 16 {
        return Err(SnapshotError::Corrupt("implausible dimension"));
    }
    let lambda = f64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
    if !(lambda > 0.0 && lambda.is_finite()) {
        return Err(SnapshotError::Corrupt("lambda must be positive and finite"));
    }
    let count = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());

    let read_f64s = |at: &mut usize, n: usize| -> Result<Vec<f64>, SnapshotError> {
        let raw = take(at, 8 * n)?;
        let vals: Vec<f64> = raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if vals.iter().any(|v| !v.is_finite()) {
            return Err(SnapshotError::Corrupt("non-finite state values"));
        }
        Ok(vals)
    };
    let y_data = read_f64s(&mut at, dim * dim)?;
    let b_data = read_f64s(&mut at, dim)?;
    if at != blob.len() {
        return Err(SnapshotError::Corrupt("trailing bytes"));
    }

    let y = Matrix::from_rows(dim, dim, y_data);
    let b = Vector::from(b_data);
    RidgeEstimator::from_parts(lambda, y, b, count)
        .map_err(|_| SnapshotError::Corrupt("Gram matrix is not positive definite"))
}

/// Appends a length-prefixed estimator snapshot (helper for composite
/// policy-state blobs that carry more than the estimator).
pub(crate) fn write_estimator_framed(out: &mut Vec<u8>, estimator: &RidgeEstimator) {
    let blob = save_estimator(estimator);
    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
    out.extend_from_slice(&blob);
}

/// Reads a length-prefixed estimator snapshot written by
/// [`write_estimator_framed`], advancing `at`.
pub(crate) fn read_estimator_framed(
    blob: &[u8],
    at: &mut usize,
) -> Result<RidgeEstimator, SnapshotError> {
    let len_end = at.checked_add(4).ok_or(SnapshotError::Truncated)?;
    if len_end > blob.len() {
        return Err(SnapshotError::Truncated);
    }
    let len = u32::from_le_bytes(blob[*at..len_end].try_into().unwrap()) as usize;
    *at = len_end;
    let end = at.checked_add(len).ok_or(SnapshotError::Truncated)?;
    if end > blob.len() {
        return Err(SnapshotError::Truncated);
    }
    let est = restore_estimator(&blob[*at..end])?;
    *at = end;
    Ok(est)
}

/// Reads a fixed-size byte array, advancing `at`.
pub(crate) fn read_array<const N: usize>(
    blob: &[u8],
    at: &mut usize,
) -> Result<[u8; N], SnapshotError> {
    let end = at.checked_add(N).ok_or(SnapshotError::Truncated)?;
    if end > blob.len() {
        return Err(SnapshotError::Truncated);
    }
    let arr = blob[*at..end].try_into().unwrap();
    *at = end;
    Ok(arr)
}

/// Verifies a restored estimator matches the constructed one's
/// parameters — a blob from a differently-configured policy must be
/// rejected, not spliced in.
pub(crate) fn check_estimator_shape(
    restored: &RidgeEstimator,
    expected: &RidgeEstimator,
) -> Result<(), SnapshotError> {
    if restored.dim() != expected.dim() || restored.lambda() != expected.lambda() {
        return Err(SnapshotError::Corrupt(
            "restored estimator has different dimension or lambda",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_estimator() -> RidgeEstimator {
        let mut e = RidgeEstimator::new(5, 0.5);
        for k in 0..200 {
            let x: Vec<f64> = (0..5)
                .map(|i| ((k * 7 + i * 3) % 11) as f64 / 11.0 - 0.3)
                .collect();
            e.observe(&x, (k % 2) as f64).unwrap();
        }
        e
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let mut original = trained_estimator();
        let blob = save_estimator(&original);
        let mut restored = restore_estimator(&blob).unwrap();
        assert_eq!(restored.dim(), original.dim());
        assert_eq!(restored.lambda(), original.lambda());
        assert_eq!(restored.observations(), original.observations());
        for k in 0..20 {
            let x: Vec<f64> = (0..5).map(|i| ((k + i) % 7) as f64 / 7.0).collect();
            let a = original.point_estimate(&x);
            let b = restored.point_estimate(&x);
            assert!((a - b).abs() < 1e-10, "prediction drift: {a} vs {b}");
            let wa = original.confidence_width(&x);
            let wb = restored.confidence_width(&x);
            assert!((wa - wb).abs() < 1e-10, "width drift: {wa} vs {wb}");
        }
    }

    #[test]
    fn restored_estimator_keeps_learning() {
        let original = trained_estimator();
        let blob = save_estimator(&original);
        let mut restored = restore_estimator(&blob).unwrap();
        restored.observe(&[0.1, 0.2, 0.3, 0.1, 0.0], 1.0).unwrap();
        assert_eq!(restored.observations(), original.observations() + 1);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut blob = save_estimator(&trained_estimator());
        blob[0] = b'X';
        assert!(matches!(
            restore_estimator(&blob),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut blob = save_estimator(&trained_estimator());
        blob[8] = 99;
        assert!(matches!(
            restore_estimator(&blob),
            Err(SnapshotError::BadVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let blob = save_estimator(&trained_estimator());
        for cut in [0, 7, 12, 20, 40, blob.len() - 1] {
            assert!(
                restore_estimator(&blob[..cut]).is_err(),
                "accepted truncation at {cut}"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut blob = save_estimator(&trained_estimator());
        blob.push(0);
        assert!(matches!(
            restore_estimator(&blob),
            Err(SnapshotError::Corrupt("trailing bytes"))
        ));
    }

    #[test]
    fn rejects_non_finite_state() {
        let mut blob = save_estimator(&trained_estimator());
        // Overwrite the first Y entry with NaN.
        let y_off = 8 + 4 + 4 + 8 + 8;
        blob[y_off..y_off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(
            restore_estimator(&blob),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_indefinite_gram_matrix() {
        // Hand-craft a blob whose Y is not SPD.
        let mut blob = Vec::new();
        blob.extend_from_slice(MAGIC);
        blob.extend_from_slice(&VERSION.to_le_bytes());
        blob.extend_from_slice(&2u32.to_le_bytes());
        blob.extend_from_slice(&1.0f64.to_le_bytes());
        blob.extend_from_slice(&0u64.to_le_bytes());
        for v in [1.0f64, 2.0, 2.0, 1.0] {
            blob.extend_from_slice(&v.to_le_bytes());
        }
        for v in [0.0f64, 0.0] {
            blob.extend_from_slice(&v.to_le_bytes());
        }
        assert!(matches!(
            restore_estimator(&blob),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(SnapshotError::BadMagic.to_string().contains("snapshot"));
        assert!(SnapshotError::Truncated.to_string().contains("truncated"));
    }

    #[test]
    fn policy_state_round_trip_for_every_policy() {
        use crate::{EpsilonGreedy, Exploit, LinUcb, Policy, RandomPolicy, ThompsonSampling};
        use fasea_core::{Arrangement, ConflictGraph, ContextMatrix, EventId, Feedback};

        let d = 3;
        let fresh: Vec<(Box<dyn Policy>, Box<dyn Policy>)> = vec![
            (
                Box::new(LinUcb::new(d, 1.0, 2.0)),
                Box::new(LinUcb::new(d, 1.0, 2.0)),
            ),
            (
                Box::new(ThompsonSampling::new(d, 1.0, 0.1, 7)),
                Box::new(ThompsonSampling::new(d, 1.0, 0.1, 999)),
            ),
            (
                Box::new(EpsilonGreedy::new(d, 1.0, 0.3, 7)),
                Box::new(EpsilonGreedy::new(d, 1.0, 0.3, 999)),
            ),
            (
                Box::new(Exploit::new(d, 1.0)),
                Box::new(Exploit::new(d, 1.0)),
            ),
            (
                Box::new(RandomPolicy::new(7)),
                Box::new(RandomPolicy::new(999)),
            ),
        ];
        let contexts = ContextMatrix::from_fn(4, d, |v, j| ((v * 3 + j) % 5) as f64 * 0.2 - 0.3);
        let conflicts = ConflictGraph::new(4);
        let remaining = [9u32; 4];
        for (mut original, mut restored) in fresh {
            // Train the original for a few rounds so it has real state.
            for t in 0..12u64 {
                let view = crate::SelectionView {
                    t,
                    user_capacity: 2,
                    contexts: &contexts,
                    conflicts: &conflicts,
                    remaining: &remaining,
                };
                let a = original.select(&view);
                let fb = Feedback::new(a.iter().map(|v| v == EventId(0)).collect());
                original.observe(t, &contexts, &a, &fb);
            }
            let blob = original.save_state();
            restored.restore_state(&blob).unwrap();
            // Identical state ⇒ identical next decision and identical
            // follow-up blob (RNG position included).
            let view = crate::SelectionView {
                t: 12,
                user_capacity: 2,
                contexts: &contexts,
                conflicts: &conflicts,
                remaining: &remaining,
            };
            let a1: Arrangement = original.select(&view);
            let a2: Arrangement = restored.select(&view);
            assert_eq!(a1.events(), a2.events(), "{} diverged", original.name());
            assert_eq!(
                original.save_state(),
                restored.save_state(),
                "{} state drifted after one round",
                original.name()
            );
        }
    }

    #[test]
    fn policy_restore_rejects_mismatched_shapes() {
        use crate::{LinUcb, Policy, RandomPolicy, StaticScorePolicy};
        // Different dimension.
        let donor = LinUcb::new(4, 1.0, 2.0);
        let mut target = LinUcb::new(3, 1.0, 2.0);
        assert!(target.restore_state(&donor.save_state()).is_err());
        // Different lambda.
        let donor = LinUcb::new(3, 0.5, 2.0);
        assert!(target.restore_state(&donor.save_state()).is_err());
        // Garbage into an RNG-only policy.
        let mut r = RandomPolicy::new(1);
        assert!(r.restore_state(&[1, 2, 3]).is_err());
        // Stateless policy accepts only the empty blob.
        let mut s = StaticScorePolicy::new("s", vec![1.0, 2.0]);
        assert!(s.restore_state(&[]).is_ok());
        assert!(s.restore_state(&[0]).is_err());
    }
}

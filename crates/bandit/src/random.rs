//! Random — the paper's uninformed baseline.

use crate::{Policy, ScoreWorkspace, SelectionView};
use fasea_core::{Arrangement, ContextMatrix, Feedback};
use rand::Rng as _;

/// The Random baseline: "visits each `v ∈ V` in a random order and the
/// rest is the same as lines 3–5 of Oracle-Greedy" (Section 5.1). It
/// ignores contexts and feedback entirely.
///
/// The random visiting order is realised as i.i.d. uniform priorities
/// fed to Oracle-Greedy; the priorities double as `last_scores`, which
/// is why Random's Kendall correlation with the ground truth hovers
/// around zero in the Figure 2 reproduction.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: fasea_stats::Rng,
    ws: ScoreWorkspace,
}

impl RandomPolicy {
    /// Creates the baseline with a policy-private RNG seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: fasea_stats::rng_from_seed(seed),
            ws: ScoreWorkspace::new(),
        }
    }
}

impl Policy for RandomPolicy {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn score_into(&mut self, view: &SelectionView<'_>, ws: &mut ScoreWorkspace) {
        let scores = ws.scores_mut(view.num_events());
        // One uniform priority per event, in event order — the RNG
        // stream matches the pre-batched path exactly.
        for s in scores.iter_mut() {
            *s = self.rng.gen::<f64>();
        }
    }

    fn workspace(&self) -> &ScoreWorkspace {
        &self.ws
    }

    fn workspace_mut(&mut self) -> &mut ScoreWorkspace {
        &mut self.ws
    }

    fn observe(&mut self, _: u64, _: &ContextMatrix, _: &Arrangement, _: &Feedback) {
        // Feedback-oblivious by definition.
    }

    fn state_bytes(&self) -> usize {
        self.ws.state_bytes() + std::mem::size_of::<fasea_stats::Rng>()
    }

    fn save_state(&self) -> Vec<u8> {
        fasea_stats::rng_state(&self.rng).to_vec()
    }

    fn restore_state(&mut self, blob: &[u8]) -> Result<(), crate::SnapshotError> {
        let state: [u8; 32] = blob
            .try_into()
            .map_err(|_| crate::SnapshotError::Corrupt("RNG state must be 32 bytes"))?;
        self.rng = fasea_stats::rng_from_state(state);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_core::{ConflictGraph, EventId};

    #[test]
    fn fills_user_capacity_when_possible() {
        let mut p = RandomPolicy::new(1);
        let ctx = ContextMatrix::zeros(10, 2);
        let g = ConflictGraph::new(10);
        let rem = [1u32; 10];
        let view = SelectionView {
            t: 0,
            user_capacity: 4,
            contexts: &ctx,
            conflicts: &g,
            remaining: &rem,
        };
        let a = p.select(&view);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn selections_vary_across_rounds() {
        let mut p = RandomPolicy::new(2);
        let ctx = ContextMatrix::zeros(20, 1);
        let g = ConflictGraph::new(20);
        let rem = [10u32; 20];
        let mut seen = std::collections::HashSet::new();
        for t in 0..50 {
            let view = SelectionView {
                t,
                user_capacity: 1,
                contexts: &ctx,
                conflicts: &g,
                remaining: &rem,
            };
            seen.insert(p.select(&view).events()[0]);
        }
        assert!(seen.len() > 5, "not random enough: {}", seen.len());
    }

    #[test]
    fn approximately_uniform_over_events() {
        let mut p = RandomPolicy::new(3);
        let n = 10usize;
        let ctx = ContextMatrix::zeros(n, 1);
        let g = ConflictGraph::new(n);
        let rem = [u32::MAX; 10];
        let mut counts = vec![0u32; n];
        let rounds = 20_000;
        for t in 0..rounds {
            let view = SelectionView {
                t,
                user_capacity: 1,
                contexts: &ctx,
                conflicts: &g,
                remaining: &rem,
            };
            counts[p.select(&view).events()[0].index()] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            let frac = c as f64 / rounds as f64;
            assert!((frac - 0.1).abs() < 0.02, "event {v}: {frac}");
        }
    }

    #[test]
    fn respects_conflicts_and_capacity() {
        let mut p = RandomPolicy::new(4);
        let ctx = ContextMatrix::zeros(4, 1);
        let g = ConflictGraph::complete(4);
        let rem = [1u32, 0, 1, 1];
        for t in 0..20 {
            let view = SelectionView {
                t,
                user_capacity: 3,
                contexts: &ctx,
                conflicts: &g,
                remaining: &rem,
            };
            let a = p.select(&view);
            assert!(a.len() <= 1);
            assert!(!a.contains(EventId(1)));
        }
    }

    #[test]
    fn observe_is_noop_and_scores_exposed() {
        let mut p = RandomPolicy::new(5);
        assert!(p.last_scores().is_none());
        let ctx = ContextMatrix::zeros(3, 1);
        let g = ConflictGraph::new(3);
        let rem = [1u32; 3];
        let view = SelectionView {
            t: 0,
            user_capacity: 1,
            contexts: &ctx,
            conflicts: &g,
            remaining: &rem,
        };
        let a = p.select(&view);
        p.observe(0, &ctx, &a, &Feedback::new(vec![true]));
        assert_eq!(p.last_scores().unwrap().len(), 3);
        assert_eq!(p.name(), "Random");
    }
}

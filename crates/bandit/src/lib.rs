//! # fasea-bandit
//!
//! Contextual combinatorial bandit policies for the FASEA problem —
//! the algorithmic contribution of the paper.
//!
//! | Paper | Here |
//! |---|---|
//! | Algorithm 1 (TS) | [`ThompsonSampling`] |
//! | Algorithm 2 (Oracle-Greedy) | [`GreedyOracle`] |
//! | Algorithm 3 (UCB) | [`LinUcb`] |
//! | Algorithm 4 (eGreedy) | [`EpsilonGreedy`] |
//! | Exploit heuristic (α=0 / ε=0) | [`Exploit`] |
//! | Random baseline | [`RandomPolicy`] |
//! | OPT / "Full Knowledge" reference | [`Opt`] |
//! | OnlineGreedy-GEACC \[39\] comparator | [`StaticScorePolicy`] |
//!
//! All learning policies share the [`RidgeEstimator`]: the Gram matrix
//! `Y = λI + Σ x xᵀ` with incrementally maintained inverse, the
//! reward-weighted sum `b = Σ r x`, and the ridge estimate `θ̂ = Y⁻¹ b`
//! (line "θ̂_t ← Y⁻¹ b" of every algorithm in the paper).
//!
//! Every policy implements [`Policy`]: `select` proposes an arrangement
//! for the current user, `observe` consumes the user's feedback, and
//! `last_scores` exposes the per-event scores the most recent selection
//! used (the experiment harness ranks these against the ground truth for
//! the paper's Figure 2 Kendall-τ analysis).
//!
//! ## Quick example
//!
//! ```
//! use fasea_bandit::{LinUcb, Policy, SelectionView};
//! use fasea_core::{ConflictGraph, ContextMatrix, EventId};
//!
//! let mut ucb = LinUcb::new(3, 1.0, 2.0); // d=3, λ=1, α=2
//! let contexts = ContextMatrix::from_rows(2, 3, vec![
//!     0.5, 0.1, 0.0,
//!     0.0, 0.7, 0.1,
//! ]);
//! let conflicts = ConflictGraph::new(2);
//! let remaining = [10u32, 10];
//! let view = SelectionView {
//!     t: 0,
//!     user_capacity: 1,
//!     contexts: &contexts,
//!     conflicts: &conflicts,
//!     remaining: &remaining,
//! };
//! let arrangement = ucb.select(&view);
//! assert_eq!(arrangement.len(), 1);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod diagnostics;
mod egreedy;
mod estimator;
mod exploit;
mod opt;
mod oracle;
mod oracle_api;
mod policy;
mod random;
mod score_pool;
mod snapshot;
mod static_score;
mod ts;
mod ucb;
mod workspace;

pub use diagnostics::EllipticalPotential;
pub use egreedy::EpsilonGreedy;
pub use estimator::RidgeEstimator;
pub use exploit::Exploit;
pub use opt::Opt;
pub use oracle::{oracle_exhaustive, positive_score_sum, subset_top_k};
pub use oracle_api::{
    GreedyOracle, Oracle, OracleKind, OracleOptions, OracleWorkspace, TabuFitness, TabuOracle,
};
pub use policy::{Policy, SelectionView};
pub use random::RandomPolicy;
pub use score_pool::{live_score_workers, ScorePool, SCORE_CHUNK};
pub use snapshot::{restore_estimator, save_estimator, SnapshotError, MAGIC as SNAPSHOT_MAGIC};
pub use static_score::StaticScorePolicy;
pub use ts::ThompsonSampling;
pub use ucb::LinUcb;
pub use workspace::{Arranger, ModelTierStats, PrefetchStats, ScoreWorkspace};

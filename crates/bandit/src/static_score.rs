//! Static-score policies: the OnlineGreedy-GEACC comparator.

use crate::{Policy, ScoreWorkspace, SelectionView};
use fasea_core::{Arrangement, ContextMatrix, Feedback};

/// A feedback-oblivious policy that greedily arranges on a **fixed**
/// per-event score vector under the usual capacity/conflict constraints.
///
/// This is how the paper's real-dataset comparator *OnlineGreedy-GEACC*
/// (She et al., TKDE'16, reference \[39\]) behaves under FASEA's lens:
/// its interestingness values are computed once from event tags and the
/// user's preferred tags, and "since OnlineGreedy-GEACC does not change
/// its strategy based on the observed feedbacks, it keeps making the
/// same arrangement even running in multiple rounds" (Section 5.2).
/// `fasea-datagen` computes the tag-overlap interestingness scores and
/// wraps them in this policy under the display name `"Online"`.
#[derive(Debug, Clone)]
pub struct StaticScorePolicy {
    name: &'static str,
    scores: Vec<f64>,
    ws: ScoreWorkspace,
}

impl StaticScorePolicy {
    /// Creates the policy from fixed per-event scores.
    ///
    /// # Panics
    /// Panics if `scores` is empty or contains non-finite values.
    pub fn new(name: &'static str, scores: Vec<f64>) -> Self {
        assert!(
            !scores.is_empty(),
            "StaticScorePolicy: scores must be non-empty"
        );
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "StaticScorePolicy: scores must be finite"
        );
        StaticScorePolicy {
            name,
            scores,
            ws: ScoreWorkspace::new(),
        }
    }

    /// The fixed scores.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }
}

impl Policy for StaticScorePolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    // Fixed score table, no RNG — safe to prefetch speculatively.
    fn scoring_is_deterministic(&self) -> bool {
        true
    }

    fn score_into(&mut self, view: &SelectionView<'_>, ws: &mut ScoreWorkspace) {
        let n = view.num_events();
        assert_eq!(
            self.scores.len(),
            n,
            "StaticScorePolicy: score vector does not match |V|"
        );
        let pool = ws.score_pool().cloned();
        let out = ws.scores_mut(n);
        match pool {
            Some(pool) if pool.threads() > 1 => {
                // A chunked memcpy — bit-equal trivially; parallelised
                // so the pooled path is exercised uniformly across
                // policies.
                let src = &self.scores;
                let scores_w = crate::score_pool::ShardWriter::new(out);
                pool.run(n, crate::SCORE_CHUNK, &|_c, range| {
                    // SAFETY: pool chunk ranges are disjoint.
                    let s = unsafe { scores_w.slice(range.clone()) };
                    s.copy_from_slice(&src[range]);
                });
            }
            _ => out.copy_from_slice(&self.scores),
        }
    }

    fn workspace(&self) -> &ScoreWorkspace {
        &self.ws
    }

    fn workspace_mut(&mut self) -> &mut ScoreWorkspace {
        &mut self.ws
    }

    fn observe(&mut self, _: u64, _: &ContextMatrix, _: &Arrangement, _: &Feedback) {
        // Feedback-oblivious by construction.
    }

    fn state_bytes(&self) -> usize {
        self.scores.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_core::{ConflictGraph, EventId};

    #[test]
    fn repeats_the_same_arrangement_every_round() {
        let mut p = StaticScorePolicy::new("Online", vec![0.3, 0.9, 0.1, 0.7]);
        let ctx = ContextMatrix::zeros(4, 1);
        let g = ConflictGraph::new(4);
        let rem = [100u32; 4];
        let view = SelectionView {
            t: 0,
            user_capacity: 2,
            contexts: &ctx,
            conflicts: &g,
            remaining: &rem,
        };
        let first = p.select(&view);
        assert_eq!(first.events(), &[EventId(1), EventId(3)]);
        for t in 1..20 {
            let view = SelectionView { t, ..view };
            let a = p.select(&view);
            p.observe(t, &ctx, &a, &Feedback::new(vec![false, false]));
            assert_eq!(a, first);
        }
    }

    #[test]
    fn adapts_only_to_capacity_exhaustion() {
        let mut p = StaticScorePolicy::new("Online", vec![0.9, 0.5]);
        let ctx = ContextMatrix::zeros(2, 1);
        let g = ConflictGraph::new(2);
        let view_full = SelectionView {
            t: 0,
            user_capacity: 1,
            contexts: &ctx,
            conflicts: &g,
            remaining: &[1, 1],
        };
        assert_eq!(p.select(&view_full).events(), &[EventId(0)]);
        // Once event 0 is full, the next-best event takes its place.
        let view_depleted = SelectionView {
            remaining: &[0, 1],
            ..view_full
        };
        assert_eq!(p.select(&view_depleted).events(), &[EventId(1)]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_scores() {
        let _ = StaticScorePolicy::new("Online", vec![]);
    }

    #[test]
    #[should_panic(expected = "does not match |V|")]
    fn rejects_mismatched_instance() {
        let mut p = StaticScorePolicy::new("Online", vec![0.5]);
        let ctx = ContextMatrix::zeros(2, 1);
        let g = ConflictGraph::new(2);
        let view = SelectionView {
            t: 0,
            user_capacity: 1,
            contexts: &ctx,
            conflicts: &g,
            remaining: &[1, 1],
        };
        let _ = p.select(&view);
    }

    #[test]
    fn accessors() {
        let p = StaticScorePolicy::new("Online", vec![0.1, 0.2]);
        assert_eq!(p.name(), "Online");
        assert_eq!(p.scores(), &[0.1, 0.2]);
        assert_eq!(p.state_bytes(), 16);
        assert!(p.last_scores().is_none());
    }
}

//! OPT — the clairvoyant reference strategy.

use crate::{Policy, ScoreWorkspace, SelectionView};
use fasea_core::{Arrangement, ContextMatrix, Feedback, LinearPayoffModel};

/// The reference strategy the paper measures regret against: it knows the
/// true `θ` and "uses Oracle-Greedy to select events greedily based on
/// the true expected rewards of the events" (Section 5.1).
///
/// OPT runs against its **own** capacity state in the simulator — it
/// consumes events like any other strategy, which is why its cumulative
/// reward flattens once it exhausts all capacities (the paper observes
/// this at `t = 65 664` under the default setting) and every learner's
/// total regret then drops.
#[derive(Debug, Clone)]
pub struct Opt {
    model: LinearPayoffModel,
    ws: ScoreWorkspace,
}

impl Opt {
    /// Creates OPT from the ground-truth payoff model.
    pub fn new(model: LinearPayoffModel) -> Self {
        Opt {
            model,
            ws: ScoreWorkspace::new(),
        }
    }

    /// The ground truth it plays with.
    pub fn model(&self) -> &LinearPayoffModel {
        &self.model
    }
}

impl Policy for Opt {
    fn name(&self) -> &'static str {
        "OPT"
    }

    // Scores are the model's expected rewards — deterministic in the
    // contexts, no RNG — safe to prefetch speculatively.
    fn scoring_is_deterministic(&self) -> bool {
        true
    }

    fn score_into(&mut self, view: &SelectionView<'_>, ws: &mut ScoreWorkspace) {
        let n = view.num_events();
        let pool = ws.score_pool().cloned();
        let scores = ws.scores_mut(n);
        let model = &self.model;
        match pool {
            Some(pool) if pool.threads() > 1 => {
                // Per-event arithmetic untouched — bit-equal by
                // construction.
                let contexts = view.contexts;
                let scores_w = crate::score_pool::ShardWriter::new(scores);
                pool.run(n, crate::SCORE_CHUNK, &|_c, range| {
                    // SAFETY: pool chunk ranges are disjoint.
                    let s = unsafe { scores_w.slice(range.clone()) };
                    for (off, v) in range.enumerate() {
                        s[off] = model.expected_reward(contexts, fasea_core::EventId(v));
                    }
                });
            }
            _ => {
                for (v, s) in scores.iter_mut().enumerate() {
                    *s = model.expected_reward(view.contexts, fasea_core::EventId(v));
                }
            }
        }
    }

    fn workspace(&self) -> &ScoreWorkspace {
        &self.ws
    }

    fn workspace_mut(&mut self) -> &mut ScoreWorkspace {
        &mut self.ws
    }

    fn observe(&mut self, _: u64, _: &ContextMatrix, _: &Arrangement, _: &Feedback) {
        // Clairvoyant: nothing to learn.
    }

    fn state_bytes(&self) -> usize {
        self.model.dim() * std::mem::size_of::<f64>() + self.ws.state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_core::{ConflictGraph, EventId};
    use fasea_linalg::Vector;

    #[test]
    fn picks_true_best_events() {
        let model = LinearPayoffModel::new(Vector::from([1.0, 0.0]));
        let mut opt = Opt::new(model);
        let ctx = ContextMatrix::from_rows(3, 2, vec![0.2, 0.9, 0.8, 0.0, 0.5, 0.5]);
        let g = ConflictGraph::new(3);
        let rem = [1u32; 3];
        let view = SelectionView {
            t: 0,
            user_capacity: 2,
            contexts: &ctx,
            conflicts: &g,
            remaining: &rem,
        };
        let a = opt.select(&view);
        // True rewards: 0.2, 0.8, 0.5 => events 1 then 2.
        assert_eq!(a.events(), &[EventId(1), EventId(2)]);
        let s = opt.last_scores().unwrap();
        assert!((s[1] - 0.8).abs() < 1e-15);
    }

    #[test]
    fn scores_equal_true_expected_rewards() {
        let model = LinearPayoffModel::new(Vector::from([0.5, -0.5]));
        let mut opt = Opt::new(model.clone());
        let ctx = ContextMatrix::from_rows(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let g = ConflictGraph::new(2);
        let rem = [1u32; 2];
        let view = SelectionView {
            t: 3,
            user_capacity: 1,
            contexts: &ctx,
            conflicts: &g,
            remaining: &rem,
        };
        let _ = opt.select(&view);
        let s = opt.last_scores().unwrap();
        assert_eq!(s[0], model.expected_reward(&ctx, EventId(0)));
        assert_eq!(s[1], model.expected_reward(&ctx, EventId(1)));
        assert_eq!(opt.name(), "OPT");
    }
}

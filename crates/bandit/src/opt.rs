//! OPT — the clairvoyant reference strategy.

use crate::{oracle_greedy, Policy, SelectionView};
use fasea_core::{Arrangement, ContextMatrix, Feedback, LinearPayoffModel};

/// The reference strategy the paper measures regret against: it knows the
/// true `θ` and "uses Oracle-Greedy to select events greedily based on
/// the true expected rewards of the events" (Section 5.1).
///
/// OPT runs against its **own** capacity state in the simulator — it
/// consumes events like any other strategy, which is why its cumulative
/// reward flattens once it exhausts all capacities (the paper observes
/// this at `t = 65 664` under the default setting) and every learner's
/// total regret then drops.
#[derive(Debug, Clone)]
pub struct Opt {
    model: LinearPayoffModel,
    scores: Vec<f64>,
    selected_once: bool,
}

impl Opt {
    /// Creates OPT from the ground-truth payoff model.
    pub fn new(model: LinearPayoffModel) -> Self {
        Opt {
            model,
            scores: Vec::new(),
            selected_once: false,
        }
    }

    /// The ground truth it plays with.
    pub fn model(&self) -> &LinearPayoffModel {
        &self.model
    }
}

impl Policy for Opt {
    fn name(&self) -> &'static str {
        "OPT"
    }

    fn select(&mut self, view: &SelectionView<'_>) -> Arrangement {
        let n = view.num_events();
        self.scores.resize(n, 0.0);
        for v in 0..n {
            self.scores[v] = self
                .model
                .expected_reward(view.contexts, fasea_core::EventId(v));
        }
        self.selected_once = true;
        oracle_greedy(
            &self.scores,
            view.conflicts,
            view.remaining,
            view.user_capacity,
        )
    }

    fn observe(&mut self, _: u64, _: &ContextMatrix, _: &Arrangement, _: &Feedback) {
        // Clairvoyant: nothing to learn.
    }

    fn last_scores(&self) -> Option<&[f64]> {
        if self.selected_once {
            Some(&self.scores)
        } else {
            None
        }
    }

    fn state_bytes(&self) -> usize {
        (self.model.dim() + self.scores.len()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_core::{ConflictGraph, EventId};
    use fasea_linalg::Vector;

    #[test]
    fn picks_true_best_events() {
        let model = LinearPayoffModel::new(Vector::from([1.0, 0.0]));
        let mut opt = Opt::new(model);
        let ctx = ContextMatrix::from_rows(3, 2, vec![0.2, 0.9, 0.8, 0.0, 0.5, 0.5]);
        let g = ConflictGraph::new(3);
        let rem = [1u32; 3];
        let view = SelectionView {
            t: 0,
            user_capacity: 2,
            contexts: &ctx,
            conflicts: &g,
            remaining: &rem,
        };
        let a = opt.select(&view);
        // True rewards: 0.2, 0.8, 0.5 => events 1 then 2.
        assert_eq!(a.events(), &[EventId(1), EventId(2)]);
        let s = opt.last_scores().unwrap();
        assert!((s[1] - 0.8).abs() < 1e-15);
    }

    #[test]
    fn scores_equal_true_expected_rewards() {
        let model = LinearPayoffModel::new(Vector::from([0.5, -0.5]));
        let mut opt = Opt::new(model.clone());
        let ctx = ContextMatrix::from_rows(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let g = ConflictGraph::new(2);
        let rem = [1u32; 2];
        let view = SelectionView {
            t: 3,
            user_capacity: 1,
            contexts: &ctx,
            conflicts: &g,
            remaining: &rem,
        };
        let _ = opt.select(&view);
        let s = opt.last_scores().unwrap();
        assert_eq!(s[0], model.expected_reward(&ctx, EventId(0)));
        assert_eq!(s[1], model.expected_reward(&ctx, EventId(1)));
        assert_eq!(opt.name(), "OPT");
    }
}

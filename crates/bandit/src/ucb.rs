//! UCB — the paper's Algorithm 3, adapted from the contextual
//! combinatorial UCB of Qin, Chen & Zhu (SDM'14) / LinUCB.

use crate::{Policy, RidgeEstimator, ScoreWorkspace, SelectionView};
use fasea_core::{Arrangement, ContextMatrix, Feedback};

/// Contextual combinatorial UCB (Algorithm 3).
///
/// Per round: estimate `θ̂_t = Y⁻¹b`, score each event with
/// `r̂_{t,v} = x_{t,v}ᵀθ̂_t + α √(x_{t,v}ᵀ Y⁻¹ x_{t,v})`, and hand the
/// scores to Oracle-Greedy. The additive width is loose for
/// under-explored directions, so those events periodically win the
/// ranking — this is what rescues UCB from the dead-lock Exploit falls
/// into on the real dataset (all-zero feedback leaves `θ̂` frozen, but
/// the width still shrinks along arranged directions, rotating the
/// arrangement).
#[derive(Debug, Clone)]
pub struct LinUcb {
    estimator: RidgeEstimator,
    alpha: f64,
    ws: ScoreWorkspace,
}

impl LinUcb {
    /// Creates UCB with ridge strength `lambda` and exploration
    /// coefficient `alpha` (paper default α = 2).
    ///
    /// # Panics
    /// Panics if `alpha < 0` (use [`crate::Exploit`] for α = 0 — it is
    /// the same policy minus the width computation).
    pub fn new(dim: usize, lambda: f64, alpha: f64) -> Self {
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "LinUcb: alpha must be >= 0"
        );
        LinUcb {
            estimator: RidgeEstimator::new(dim, lambda),
            alpha,
            ws: ScoreWorkspace::new(),
        }
    }

    /// Exploration coefficient α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Read access to the shared estimator (diagnostics/tests).
    pub fn estimator(&self) -> &RidgeEstimator {
        &self.estimator
    }
}

impl Policy for LinUcb {
    fn name(&self) -> &'static str {
        "UCB"
    }

    // Scores are θ̂ᵀx + α·√(xᵀY⁻¹x): pure linear algebra on the
    // estimator's sufficient statistics, no RNG — safe to prefetch
    // speculatively.
    fn scoring_is_deterministic(&self) -> bool {
        true
    }

    fn score_into(&mut self, view: &SelectionView<'_>, ws: &mut ScoreWorkspace) {
        let n = view.num_events();
        let alpha = self.alpha;
        // Clone the pool handle before borrowing the buffers so the
        // workspace borrow stays free for the slices.
        let pool = ws.score_pool().cloned();
        let (scores, widths) = ws.scores_and_widths_mut(n);
        // θ̂ and Y⁻¹ borrowed together: no per-round clone, and the
        // width pass runs matrix-at-a-time over the whole context block.
        let (theta, sm) = self.estimator.theta_and_inverse();
        match pool {
            Some(pool) if pool.threads() > 1 => {
                // Sharded fused pass: every SCORE_CHUNK range starts
                // lane-aligned, so the per-chunk kernel calls write the
                // exact bits of the serial full-range call.
                let ctx = view.contexts.as_slice();
                let dim = view.dim();
                let theta = theta.as_slice();
                let scores_w = crate::score_pool::ShardWriter::new(scores);
                let widths_w = crate::score_pool::ShardWriter::new(widths);
                pool.run(n, crate::SCORE_CHUNK, &|_c, range| {
                    // SAFETY: pool chunk ranges are disjoint.
                    let s = unsafe { scores_w.slice(range.clone()) };
                    let w = unsafe { widths_w.slice(range.clone()) };
                    sm.widths_and_dots_range_into(ctx, dim, theta, range.start, w, s);
                    for (si, wi) in s.iter_mut().zip(w.iter()) {
                        *si += alpha * wi;
                    }
                });
            }
            _ => {
                // One fused pass: point estimates land in `scores`,
                // widths in `widths`, then the α-combine runs over the
                // two buffers.
                sm.widths_and_dots_into(
                    view.contexts.as_slice(),
                    view.dim(),
                    theta.as_slice(),
                    widths,
                    scores,
                );
                for v in 0..n {
                    scores[v] += alpha * widths[v];
                }
            }
        }
    }

    fn workspace(&self) -> &ScoreWorkspace {
        &self.ws
    }

    fn workspace_mut(&mut self) -> &mut ScoreWorkspace {
        &mut self.ws
    }

    fn observe(
        &mut self,
        _t: u64,
        contexts: &ContextMatrix,
        arrangement: &Arrangement,
        feedback: &Feedback,
    ) {
        for (v, accepted) in feedback.zip(arrangement) {
            let r = if accepted { 1.0 } else { 0.0 };
            self.estimator
                .observe(contexts.context(v), r)
                .expect("LinUcb: estimator update failed");
        }
    }

    fn state_bytes(&self) -> usize {
        self.estimator.state_bytes() + self.ws.state_bytes()
    }

    fn save_state(&self) -> Vec<u8> {
        crate::snapshot::save_estimator(&self.estimator)
    }

    fn restore_state(&mut self, blob: &[u8]) -> Result<(), crate::SnapshotError> {
        let est = crate::snapshot::restore_estimator(blob)?;
        crate::snapshot::check_estimator_shape(&est, &self.estimator)?;
        self.estimator = est;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_core::{ConflictGraph, EventId};

    fn view<'a>(
        contexts: &'a ContextMatrix,
        conflicts: &'a ConflictGraph,
        remaining: &'a [u32],
        cu: u32,
        t: u64,
    ) -> SelectionView<'a> {
        SelectionView {
            t,
            user_capacity: cu,
            contexts,
            conflicts,
            remaining,
        }
    }

    #[test]
    fn cold_start_prefers_unexplored_large_norm_contexts() {
        // With θ̂ = 0, score = α‖x‖/√λ: the larger-norm context wins.
        let mut ucb = LinUcb::new(2, 1.0, 2.0);
        let ctx = ContextMatrix::from_rows(2, 2, vec![0.9, 0.0, 0.1, 0.0]);
        let g = ConflictGraph::new(2);
        let a = ucb.select(&view(&ctx, &g, &[1, 1], 1, 0));
        assert_eq!(a.events(), &[EventId(0)]);
        let s = ucb.last_scores().unwrap();
        assert!((s[0] - 2.0 * 0.9).abs() < 1e-12);
        assert!((s[1] - 2.0 * 0.1).abs() < 1e-12);
    }

    #[test]
    fn width_rotates_arrangements_under_all_zero_feedback() {
        // The real-dataset dead-lock scenario: identical contexts every
        // round, feedback always 0. Exploit would freeze; UCB must
        // eventually try a different event.
        let mut ucb = LinUcb::new(2, 1.0, 2.0);
        let ctx = ContextMatrix::from_rows(3, 2, vec![1.0, 0.0, 0.8, 0.1, 0.0, 0.9]);
        let g = ConflictGraph::new(3);
        let remaining = [100u32; 3];
        let mut seen = std::collections::HashSet::new();
        for t in 0..30 {
            let a = ucb.select(&view(&ctx, &g, &remaining, 1, t));
            seen.insert(a.events()[0]);
            let f = Feedback::new(vec![false]);
            ucb.observe(t, &ctx, &a, &f);
        }
        assert!(
            seen.len() >= 2,
            "UCB failed to rotate arrangements: {seen:?}"
        );
    }

    #[test]
    fn learns_the_better_event() {
        // Event 0 has true reward 0.9, event 1 has 0.1. After enough
        // feedback UCB must favour event 0.
        let mut ucb = LinUcb::new(2, 1.0, 1.0);
        let ctx = ContextMatrix::from_rows(2, 2, vec![0.9, 0.1, 0.1, 0.9]);
        let g = ConflictGraph::new(2);
        let remaining = [1000u32; 2];
        for t in 0..300 {
            let a = ucb.select(&view(&ctx, &g, &remaining, 1, t));
            // Simulated feedback: accept iff event 0 (deterministic).
            let fb: Vec<bool> = a.iter().map(|v| v == EventId(0)).collect();
            ucb.observe(t, &ctx, &a, &Feedback::new(fb));
        }
        let a = ucb.select(&view(&ctx, &g, &remaining, 1, 300));
        assert_eq!(a.events(), &[EventId(0)]);
    }

    #[test]
    fn respects_constraints_via_oracle() {
        let mut ucb = LinUcb::new(1, 1.0, 2.0);
        let ctx = ContextMatrix::from_rows(3, 1, vec![0.9, 0.8, 0.7]);
        let g = ConflictGraph::from_pairs(3, &[(0, 1)]);
        let a = ucb.select(&view(&ctx, &g, &[1, 1, 0], 2, 0));
        // Event 2 full; 0 and 1 conflict => only one of {0,1}.
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn alpha_zero_equals_point_estimates() {
        let mut ucb = LinUcb::new(2, 1.0, 0.0);
        let ctx = ContextMatrix::from_rows(2, 2, vec![0.5, 0.0, 0.0, 0.5]);
        let g = ConflictGraph::new(2);
        let _ = ucb.select(&view(&ctx, &g, &[1, 1], 1, 0));
        let s = ucb.last_scores().unwrap();
        // θ̂ = 0 at cold start, so both scores are exactly 0.
        assert_eq!(s, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "alpha must be >= 0")]
    fn negative_alpha_rejected() {
        let _ = LinUcb::new(2, 1.0, -1.0);
    }

    #[test]
    fn theta_not_recomputed_per_select() {
        // The pre-batched hot path recomputed (and cloned) θ̂ on every
        // select; the workspace path must only refresh it after observe.
        let mut ucb = LinUcb::new(2, 1.0, 2.0);
        let ctx = ContextMatrix::from_rows(2, 2, vec![0.9, 0.0, 0.1, 0.2]);
        let g = ConflictGraph::new(2);
        let remaining = [10u32; 2];
        for t in 0..5 {
            let _ = ucb.select(&view(&ctx, &g, &remaining, 1, t));
        }
        assert_eq!(
            ucb.estimator().theta_recomputes(),
            0,
            "select alone must never recompute θ̂"
        );
        let a = ucb.select(&view(&ctx, &g, &remaining, 1, 5));
        ucb.observe(5, &ctx, &a, &Feedback::new(vec![true]));
        for t in 6..10 {
            let _ = ucb.select(&view(&ctx, &g, &remaining, 1, t));
        }
        assert_eq!(
            ucb.estimator().theta_recomputes(),
            1,
            "exactly one recompute after one observe batch"
        );
    }

    #[test]
    fn state_bytes_nonzero() {
        let ucb = LinUcb::new(20, 1.0, 2.0);
        assert!(ucb.state_bytes() >= 2 * 20 * 20 * 8);
        assert!(ucb.last_scores().is_none());
        assert_eq!(ucb.name(), "UCB");
        assert_eq!(ucb.alpha(), 2.0);
    }
}

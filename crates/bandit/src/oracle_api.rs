//! The public arrangement-oracle API: the [`Oracle`] trait, its
//! reusable [`OracleWorkspace`] scratch, the [`OracleOptions`] builder,
//! and the two shipped implementations — [`GreedyOracle`] (Algorithm 2,
//! bit-equal to the historical free functions) and [`TabuOracle`]
//! (deterministic tabu-search local improvement).
//!
//! ## Why a trait
//!
//! Until this module existed the oracle was four free functions
//! hard-wired through [`crate::ScoreWorkspace::arrange_into`], the
//! durable service and the shard coordinator. The trait turns the
//! arrangement step into a seam: policies score, the installed oracle
//! arranges, and every layer (serial, pooled, sharded, durable replay)
//! dispatches through the same object-safe interface. The free
//! functions lived on for one release as `#[deprecated]` thin wrappers
//! and have since been removed; the trait is the only entry point.
//!
//! ## Determinism contract
//!
//! An [`Oracle`] must be a **pure function** of
//! `(scores, conflicts, remaining, user_capacity)` — no RNG, no
//! ambient state — because the WAL `Propose` records are verified on
//! recovery by re-running the policy *and* the installed oracle and
//! cross-checking the arrangement. [`GreedyOracle`] additionally
//! guarantees that the serial, pooled and gathered paths are bit-equal
//! to each other; [`TabuOracle`] guarantees feasibility
//! (conflict-free, capacity-respecting, `≤ c_u` events) and determinism
//! but deliberately trades the greedy visiting order for local-search
//! quality.
//!
//! ## Example
//!
//! The paper's Example 3 (UCB, round 1) through the trait:
//!
//! ```
//! use fasea_bandit::{GreedyOracle, Oracle, OracleWorkspace};
//! use fasea_core::{Arrangement, ConflictGraph, EventId};
//!
//! let conflicts = ConflictGraph::from_pairs(4, &[(0, 1)]);
//! let oracle = GreedyOracle;
//! let mut ws = OracleWorkspace::new();
//! let mut out = Arrangement::empty();
//! oracle.arrange_into(&[1.10, 0.49, 0.82, 2.00], &conflicts, &[1; 4], 2, &mut ws, &mut out);
//! assert_eq!(out.events(), &[EventId(3), EventId(0)]);
//! ```

use crate::oracle::{greedy_dist_into, greedy_into, greedy_pooled_into};
use crate::score_pool::ScorePool;
use fasea_core::{Arrangement, ConflictGraph, EventId};
use std::sync::Arc;

/// Reusable scratch for [`Oracle`] implementations.
///
/// Owns the ranking/mask buffers the greedy paths use plus the
/// local-search scratch of [`TabuOracle`]; every buffer grows on first
/// use and is reused afterwards, so a steady-state arrangement performs
/// zero heap allocations regardless of the installed oracle (the
/// counting-allocator tests assert this through the policy path).
///
/// The workspace optionally carries a shared [`ScorePool`]
/// ([`OracleWorkspace::set_score_pool`]): with more than one thread,
/// [`GreedyOracle`] shards its candidate ranking over the pool —
/// bit-identical to the serial ranking by the merge argument in the
/// `oracle` module.
#[derive(Debug, Clone, Default)]
pub struct OracleWorkspace {
    /// Ranked candidate prefix (the oracle's visiting order).
    pub(crate) order: Vec<u32>,
    /// Conflict bitmask words for the greedy scan.
    pub(crate) mask: Vec<u64>,
    /// Per-shard top-k candidate ids for the pooled ranking
    /// (`num_chunks × k`, fixed-size slots).
    pub(crate) shard_order: Vec<u32>,
    /// Number of live candidates per shard slot.
    pub(crate) shard_counts: Vec<u32>,
    /// Tabu search: the current working arrangement.
    pub(crate) current: Vec<u32>,
    /// Tabu search: the best arrangement seen so far.
    pub(crate) best: Vec<u32>,
    /// Tabu search: recently removed events, oldest first.
    pub(crate) tabu: Vec<u32>,
    /// Optional shared scoring pool for the sharded greedy ranking.
    pub(crate) pool: Option<Arc<ScorePool>>,
}

impl OracleWorkspace {
    /// An empty workspace; buffers grow on first arrangement.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or removes, with `None`) the shared worker pool used
    /// by [`GreedyOracle`] for the sharded candidate ranking. `None` —
    /// and any pool with `threads() ≤ 1` — means the serial ranking.
    pub fn set_score_pool(&mut self, pool: Option<Arc<ScorePool>>) {
        self.pool = pool;
    }

    /// The installed scoring pool, if any.
    pub fn score_pool(&self) -> Option<&Arc<ScorePool>> {
        self.pool.as_ref()
    }

    /// Approximate bytes held by the workspace buffers.
    pub fn state_bytes(&self) -> usize {
        self.order.len() * std::mem::size_of::<u32>()
            + self.mask.len() * std::mem::size_of::<u64>()
            + self.shard_order.len() * std::mem::size_of::<u32>()
            + self.shard_counts.len() * std::mem::size_of::<u32>()
            + (self.current.len() + self.best.len() + self.tabu.len()) * std::mem::size_of::<u32>()
    }
}

/// An arrangement oracle: given per-event scores and the feasibility
/// constraints (conflict graph, remaining capacities, the user's
/// capacity `c_u`), produce the arrangement for one round.
///
/// Object-safe so services can hold `Arc<dyn Oracle>` and swap
/// implementations at configuration time ([`OracleOptions::build`]).
///
/// Implementations **must** be deterministic pure functions of their
/// arguments (see the module docs — recovery replays through the
/// installed oracle) and must produce *feasible* arrangements: at most
/// `user_capacity` events, pairwise conflict-free, every arranged
/// event with `remaining > 0`.
pub trait Oracle: Send + Sync + std::fmt::Debug {
    /// Short stable name (`"greedy"`, `"tabu"`) — used in diagnostics,
    /// CLI flags, bench tables and the durable-log fingerprint.
    fn name(&self) -> &'static str;

    /// Fills `out` with the arrangement for one round.
    ///
    /// `ws` is reusable scratch owned by the caller; its contents on
    /// entry are ignored.
    ///
    /// # Panics
    /// Implementations panic if `scores.len()`, the conflict graph and
    /// `remaining` disagree on `|V|`.
    fn arrange_into(
        &self,
        scores: &[f64],
        conflicts: &ConflictGraph,
        remaining: &[u32],
        user_capacity: u32,
        ws: &mut OracleWorkspace,
        out: &mut Arrangement,
    );

    /// The merge seam for distributed rankings: like
    /// [`Oracle::arrange_into`], but candidate ranking may be gathered
    /// from external per-shard top-k passes. `gather` is called with a
    /// prefix size `k` and must append every shard's
    /// [`crate::subset_top_k`] candidates for that `k`.
    ///
    /// The default implementation ignores `gather` and arranges
    /// locally — correct for any oracle whose caller holds the full
    /// score vector (the shard coordinator does), merely forgoing the
    /// distributed ranking. [`GreedyOracle`] overrides it with the
    /// sort-merge-truncate ranking that is bit-equal to its serial
    /// visiting order.
    #[allow(clippy::too_many_arguments)]
    fn arrange_gathered(
        &self,
        scores: &[f64],
        conflicts: &ConflictGraph,
        remaining: &[u32],
        user_capacity: u32,
        ws: &mut OracleWorkspace,
        out: &mut Arrangement,
        gather: &mut dyn FnMut(usize, &mut Vec<u32>),
    ) {
        let _ = gather;
        self.arrange_into(scores, conflicts, remaining, user_capacity, ws, out);
    }
}

/// Algorithm 2 (Oracle-Greedy) behind the [`Oracle`] trait — every
/// path produces **bit-equal** arrangements:
///
/// * serial: the bounded-insertion top-k prefix ranking;
/// * pooled (a [`ScorePool`] with `threads() > 1` installed in the
///   workspace): the per-chunk top-k + same-comparator serial merge;
/// * gathered ([`Oracle::arrange_gathered`]): the external-shard
///   sort-merge-truncate over per-shard [`crate::subset_top_k`] passes.
///
/// The equality is asserted by the `oracle_equivalence` property tests
/// and the `shard_parity` golden gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyOracle;

impl Oracle for GreedyOracle {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn arrange_into(
        &self,
        scores: &[f64],
        conflicts: &ConflictGraph,
        remaining: &[u32],
        user_capacity: u32,
        ws: &mut OracleWorkspace,
        out: &mut Arrangement,
    ) {
        let OracleWorkspace {
            order,
            mask,
            shard_order,
            shard_counts,
            pool,
            ..
        } = ws;
        match pool {
            Some(pool) if pool.threads() > 1 => greedy_pooled_into(
                scores,
                conflicts,
                remaining,
                user_capacity,
                order,
                mask,
                shard_order,
                shard_counts,
                pool,
                out,
            ),
            _ => greedy_into(
                scores,
                conflicts,
                remaining,
                user_capacity,
                order,
                mask,
                out,
            ),
        }
    }

    fn arrange_gathered(
        &self,
        scores: &[f64],
        conflicts: &ConflictGraph,
        remaining: &[u32],
        user_capacity: u32,
        ws: &mut OracleWorkspace,
        out: &mut Arrangement,
        gather: &mut dyn FnMut(usize, &mut Vec<u32>),
    ) {
        greedy_dist_into(
            scores,
            conflicts,
            remaining,
            user_capacity,
            &mut ws.order,
            &mut ws.mask,
            out,
            gather,
        );
    }
}

/// The objective a [`TabuOracle`] move is judged by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TabuFitness {
    /// Maximise expected attendance: the sum of the **positive** scores
    /// of the arranged events (the quantity Theorem 1 bounds).
    #[default]
    MaxAttendance,
    /// Balance fill: each event's positive score is weighted by
    /// `remaining / (remaining + 1)`, de-prioritising nearly-full
    /// events so load spreads across the catalogue.
    BalancedFill,
}

impl TabuFitness {
    /// One event's contribution to the arrangement fitness. The total
    /// is additive over arranged events, which keeps neighbour
    /// evaluation O(1) per move.
    #[inline]
    fn contrib(self, scores: &[f64], remaining: &[u32], v: u32) -> f64 {
        let s = scores[v as usize].max(0.0);
        match self {
            TabuFitness::MaxAttendance => s,
            TabuFitness::BalancedFill => {
                let r = remaining[v as usize] as f64;
                s * (r / (r + 1.0))
            }
        }
    }
}

/// Deterministic tabu-search local improvement over the greedy seed
/// (in the style of classic event-organizer tabu schedulers: a bounded
/// tabu list of recently removed events, best-neighbour moves even
/// when worsening, global-best tracking).
///
/// Each round: seed with [`GreedyOracle`]'s arrangement, rank a bounded
/// candidate prefix, then perform up to `attempts` moves. A move either
/// **adds** a feasible candidate (if the arrangement is below `c_u`) or
/// **swaps** one arranged event for a candidate that stays feasible;
/// the best-fitness non-tabu move is applied even when it worsens the
/// current fitness (that is what lets the search leave the greedy local
/// optimum — e.g. a star-conflict centre blocking `c_u` leaves), the
/// swapped-out event becomes tabu, and the best arrangement ever seen
/// is returned.
///
/// Fully deterministic: no RNG, ties break towards the lower candidate
/// id then the lower swapped-out position, so equal inputs give equal
/// arrangements on every run and on recovery replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TabuOracle {
    options: OracleOptions,
}

impl TabuOracle {
    /// A tabu oracle with the given knobs (`kind` is ignored — the
    /// value is whatever this constructor is handed).
    pub fn new(options: OracleOptions) -> Self {
        TabuOracle { options }
    }

    /// The configured options.
    pub fn options(&self) -> &OracleOptions {
        &self.options
    }

    fn fitness_of(&self, events: &[u32], scores: &[f64], remaining: &[u32]) -> f64 {
        events
            .iter()
            .map(|&v| self.options.tabu_fitness.contrib(scores, remaining, v))
            .sum()
    }
}

impl Default for TabuOracle {
    fn default() -> Self {
        TabuOracle::new(OracleOptions::tabu())
    }
}

/// One candidate move of the tabu search.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Move {
    fitness: f64,
    add: u32,
    /// Position in `current` being replaced, or `usize::MAX` for a
    /// pure add.
    remove_at: usize,
}

impl Oracle for TabuOracle {
    fn name(&self) -> &'static str {
        "tabu"
    }

    fn arrange_into(
        &self,
        scores: &[f64],
        conflicts: &ConflictGraph,
        remaining: &[u32],
        user_capacity: u32,
        ws: &mut OracleWorkspace,
        out: &mut Arrangement,
    ) {
        // Seed with the greedy arrangement (also validates the slice
        // lengths agree on |V|).
        GreedyOracle.arrange_into(scores, conflicts, remaining, user_capacity, ws, out);
        let n = scores.len();
        let cu = user_capacity as usize;
        if n == 0 || cu == 0 {
            return;
        }

        // Candidate neighbourhood: a bounded top-ranked prefix under
        // the same total order the greedy oracle visits (score
        // descending, index ascending), restricted to non-full events.
        // Bounding it keeps a move O(prefix · c_u) instead of O(|V|).
        let prefix = cu.saturating_mul(8).max(64).min(n);
        crate::oracle::ranked_prefix(scores, remaining, prefix, &mut ws.order);

        let OracleWorkspace {
            order,
            current,
            best,
            tabu,
            ..
        } = ws;
        current.clear();
        current.extend(out.iter().map(|e| e.index() as u32));
        best.clone_from(current);
        let mut best_fit = self.fitness_of(best, scores, remaining);
        let mut current_fit = best_fit;
        tabu.clear();
        let tabu_cap = self.options.tabu_len as usize;

        for _attempt in 0..self.options.tabu_attempts {
            let mut chosen: Option<Move> = None;
            for &v in order.iter() {
                if current.contains(&v) || tabu.contains(&v) {
                    continue;
                }
                debug_assert!(
                    remaining[v as usize] > 0,
                    "ranked_prefix admitted a full event"
                );
                let gain = self.options.tabu_fitness.contrib(scores, remaining, v);
                // How many current members does v conflict with, and
                // where is the (unique, if single) offender?
                let mut offenders = 0usize;
                let mut offender_at = usize::MAX;
                for (i, &w) in current.iter().enumerate() {
                    if conflicts.are_conflicting(EventId(v as usize), EventId(w as usize)) {
                        offenders += 1;
                        offender_at = i;
                        if offenders > 1 {
                            break;
                        }
                    }
                }
                let candidate = if offenders == 0 && current.len() < cu {
                    // Pure add.
                    Some(Move {
                        fitness: current_fit + gain,
                        add: v,
                        remove_at: usize::MAX,
                    })
                } else if offenders == 1 {
                    // Swap out the unique offender.
                    let w = current[offender_at];
                    let loss = self.options.tabu_fitness.contrib(scores, remaining, w);
                    Some(Move {
                        fitness: current_fit + gain - loss,
                        add: v,
                        remove_at: offender_at,
                    })
                } else if offenders == 0 && !current.is_empty() {
                    // Arrangement is at capacity and v conflicts with
                    // nothing: swap out the lowest-contribution member
                    // (first such position — deterministic).
                    let (at, w) = current
                        .iter()
                        .copied()
                        .enumerate()
                        .min_by(|&(ai, aw), &(bi, bw)| {
                            let ca = self.options.tabu_fitness.contrib(scores, remaining, aw);
                            let cb = self.options.tabu_fitness.contrib(scores, remaining, bw);
                            ca.partial_cmp(&cb)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(ai.cmp(&bi))
                        })
                        .expect("current is non-empty");
                    let loss = self.options.tabu_fitness.contrib(scores, remaining, w);
                    Some(Move {
                        fitness: current_fit + gain - loss,
                        add: v,
                        remove_at: at,
                    })
                } else {
                    None
                };
                // Keep the best move; candidates iterate in ranking
                // order, so ties keep the earlier (better-ranked) one.
                if let Some(m) = candidate {
                    if chosen.is_none_or(|c| m.fitness > c.fitness) {
                        chosen = Some(m);
                    }
                }
            }
            let Some(m) = chosen else { break };
            if m.remove_at == usize::MAX {
                current.push(m.add);
            } else {
                let removed = std::mem::replace(&mut current[m.remove_at], m.add);
                tabu.push(removed);
                if tabu.len() > tabu_cap {
                    tabu.remove(0);
                }
            }
            // The incremental `m.fitness` is for move *selection*; the
            // accepted state recomputes the exact sum so float drift
            // cannot accumulate across attempts.
            current_fit = self.fitness_of(current, scores, remaining);
            if current_fit > best_fit {
                best_fit = current_fit;
                best.clone_from(current);
            }
        }

        out.clear();
        for &v in best.iter() {
            out.push(EventId(v as usize));
        }
    }
}

/// Which [`Oracle`] implementation [`OracleOptions::build`] constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OracleKind {
    /// [`GreedyOracle`] — Algorithm 2, the paper's oracle and the
    /// default everywhere.
    #[default]
    Greedy,
    /// [`TabuOracle`] — tabu-search local improvement over the greedy
    /// seed.
    Tabu,
}

/// Configuration for constructing an [`Oracle`] — the builder-style
/// companion to `RunConfig`/`DurableOptions` (same `#[non_exhaustive]`
/// and `with_*` convention, and `Copy` so it can ride inside
/// `DurableOptions`).
///
/// ```
/// use fasea_bandit::{OracleKind, OracleOptions, TabuFitness};
///
/// let opts = OracleOptions::tabu()
///     .with_tabu_attempts(40)
///     .with_tabu_fitness(TabuFitness::BalancedFill);
/// assert_eq!(opts.kind, OracleKind::Tabu);
/// let oracle = opts.build();
/// assert_eq!(oracle.name(), "tabu");
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleOptions {
    /// Which implementation to build. Default [`OracleKind::Greedy`].
    pub kind: OracleKind,
    /// Tabu search: maximum number of moves per round. Default 20.
    pub tabu_attempts: u32,
    /// Tabu search: tabu-list capacity (recently swapped-out events
    /// that may not re-enter). Default 5.
    pub tabu_len: u32,
    /// Tabu search: the move objective. Default
    /// [`TabuFitness::MaxAttendance`].
    pub tabu_fitness: TabuFitness,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            kind: OracleKind::Greedy,
            tabu_attempts: 20,
            tabu_len: 5,
            tabu_fitness: TabuFitness::MaxAttendance,
        }
    }
}

impl OracleOptions {
    /// Defaults: the greedy oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defaults with [`OracleKind::Greedy`] (explicit form of
    /// [`OracleOptions::new`]).
    pub fn greedy() -> Self {
        Self::default()
    }

    /// Defaults with [`OracleKind::Tabu`].
    pub fn tabu() -> Self {
        OracleOptions {
            kind: OracleKind::Tabu,
            ..Self::default()
        }
    }

    /// Sets the implementation kind.
    pub fn with_kind(mut self, kind: OracleKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the tabu move budget per round.
    pub fn with_tabu_attempts(mut self, attempts: u32) -> Self {
        self.tabu_attempts = attempts;
        self
    }

    /// Sets the tabu-list capacity.
    pub fn with_tabu_len(mut self, len: u32) -> Self {
        self.tabu_len = len;
        self
    }

    /// Sets the tabu move objective.
    pub fn with_tabu_fitness(mut self, fitness: TabuFitness) -> Self {
        self.tabu_fitness = fitness;
        self
    }

    /// The stable name of the oracle these options build (`"greedy"` /
    /// `"tabu"`) — what `--oracle` accepts and what the durable-log
    /// fingerprint mixes in for non-default oracles.
    pub fn name(&self) -> &'static str {
        match self.kind {
            OracleKind::Greedy => "greedy",
            OracleKind::Tabu => "tabu",
        }
    }

    /// Parses an `--oracle` flag value. Accepts `"greedy"` and
    /// `"tabu"`; returns `None` for anything else.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "greedy" => Some(Self::greedy()),
            "tabu" => Some(Self::tabu()),
            _ => None,
        }
    }

    /// Constructs the configured oracle.
    pub fn build(&self) -> Arc<dyn Oracle> {
        match self.kind {
            OracleKind::Greedy => Arc::new(GreedyOracle),
            OracleKind::Tabu => Arc::new(TabuOracle::new(*self)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::greedy;

    fn arrange(
        oracle: &dyn Oracle,
        scores: &[f64],
        conflicts: &ConflictGraph,
        remaining: &[u32],
        cu: u32,
    ) -> Arrangement {
        let mut ws = OracleWorkspace::new();
        let mut out = Arrangement::empty();
        oracle.arrange_into(scores, conflicts, remaining, cu, &mut ws, &mut out);
        out
    }

    fn assert_feasible(a: &Arrangement, conflicts: &ConflictGraph, remaining: &[u32], cu: u32) {
        assert!(a.len() <= cu as usize, "arrangement exceeds c_u");
        let events: Vec<usize> = a.iter().map(|e| e.index()).collect();
        for (i, &v) in events.iter().enumerate() {
            assert!(remaining[v] > 0, "arranged full event {v}");
            for &w in &events[..i] {
                assert!(v != w, "duplicate event {v}");
                assert!(
                    !conflicts.are_conflicting(EventId(v), EventId(w)),
                    "conflicting pair ({v},{w}) arranged"
                );
            }
        }
    }

    #[test]
    fn greedy_oracle_is_bit_equal_to_free_function() {
        let n = 200usize;
        let scores: Vec<f64> = (0..n)
            .map(|i| (((i as u64).wrapping_mul(2654435761) >> 9) % 997) as f64 / 99.0 - 3.0)
            .collect();
        let pairs: Vec<(usize, usize)> = (0..n / 7).map(|i| (i, i + n / 2)).collect();
        let g = ConflictGraph::from_pairs(n, &pairs);
        let remaining: Vec<u32> = (0..n).map(|i| (i % 4) as u32).collect();
        for cu in [0u32, 1, 3, 17, 100] {
            let via_trait = arrange(&GreedyOracle, &scores, &g, &remaining, cu);
            let legacy = greedy(&scores, &g, &remaining, cu);
            assert_eq!(via_trait, legacy, "cu={cu}");
        }
    }

    #[test]
    fn greedy_oracle_gathered_matches_serial() {
        let n = 120usize;
        let scores: Vec<f64> = (0..n).map(|i| ((i * 37) % 100) as f64 / 10.0).collect();
        let g = ConflictGraph::from_pairs(n, &[(0, 60), (5, 65)]);
        let remaining: Vec<u32> = (0..n).map(|i| (i % 2) as u32 + 1).collect();
        let members: Vec<Vec<u32>> = (0..3)
            .map(|s| (0..n as u32).filter(|v| (*v as usize) % 3 == s).collect())
            .collect();
        let mut ws = OracleWorkspace::new();
        let mut out = Arrangement::empty();
        let mut scratch = Vec::new();
        GreedyOracle.arrange_gathered(
            &scores,
            &g,
            &remaining,
            5,
            &mut ws,
            &mut out,
            &mut |k, buf| {
                for m in &members {
                    crate::subset_top_k(&scores, m, k, &mut scratch);
                    buf.extend_from_slice(&scratch);
                }
            },
        );
        assert_eq!(out, greedy(&scores, &g, &remaining, 5));
    }

    #[test]
    fn tabu_escapes_the_star_trap() {
        // Greedy is trapped at the star centre (Theorem 1's adversarial
        // instance); tabu swaps it out and collects the leaves.
        let g = ConflictGraph::from_pairs(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let scores = [0.51, 0.5, 0.5, 0.5, 0.5];
        let remaining = [1u32; 5];
        let greedy_a = arrange(&GreedyOracle, &scores, &g, &remaining, 4);
        assert_eq!(greedy_a.len(), 1);
        let tabu = TabuOracle::default();
        let a = arrange(&tabu, &scores, &g, &remaining, 4);
        assert_feasible(&a, &g, &remaining, 4);
        let mut ids: Vec<usize> = a.iter().map(|e| e.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4], "tabu failed to leave the centre");
    }

    #[test]
    fn tabu_is_deterministic_and_feasible_across_shapes() {
        for seed in 0u64..6 {
            let n = 40 + (seed as usize) * 17;
            let scores: Vec<f64> = (0..n)
                .map(|i| {
                    let h = (i as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(seed);
                    ((h >> 16) % 2000) as f64 / 100.0 - 5.0
                })
                .collect();
            let pairs: Vec<(usize, usize)> = (0..n / 3).map(|i| (i, n - 1 - i)).collect();
            let pairs: Vec<(usize, usize)> = pairs.into_iter().filter(|(a, b)| a != b).collect();
            let g = ConflictGraph::from_pairs(n, &pairs);
            let remaining: Vec<u32> = (0..n).map(|i| ((i + seed as usize) % 3) as u32).collect();
            let tabu = TabuOracle::default();
            for cu in [1u32, 2, 5, 9] {
                let a = arrange(&tabu, &scores, &g, &remaining, cu);
                let b = arrange(&tabu, &scores, &g, &remaining, cu);
                assert_eq!(a, b, "tabu not deterministic (seed={seed}, cu={cu})");
                assert_feasible(&a, &g, &remaining, cu);
            }
        }
    }

    #[test]
    fn tabu_never_loses_to_its_greedy_seed() {
        // Best-ever tracking starts at the greedy seed, so the returned
        // fitness can only improve on it.
        for seed in 0u64..4 {
            let n = 60usize;
            let scores: Vec<f64> = (0..n)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(2654435761).wrapping_add(seed * 977);
                    ((h >> 8) % 1000) as f64 / 100.0
                })
                .collect();
            let pairs: Vec<(usize, usize)> = (0..n / 2).map(|i| (i, i + n / 2)).collect();
            let g = ConflictGraph::from_pairs(n, &pairs);
            let remaining = vec![2u32; n];
            let tabu = TabuOracle::default();
            for cu in [2u32, 4, 8] {
                let seed_a = greedy(&scores, &g, &remaining, cu);
                let improved = arrange(&tabu, &scores, &g, &remaining, cu);
                let fit = |a: &Arrangement| crate::positive_score_sum(a, &scores);
                assert!(
                    fit(&improved) >= fit(&seed_a) - 1e-12,
                    "tabu returned worse than its seed (seed={seed}, cu={cu})"
                );
            }
        }
    }

    #[test]
    fn balanced_fill_prefers_emptier_events() {
        // Two equal-score events, one nearly full: balanced fill picks
        // the emptier one when only one fits.
        let g = ConflictGraph::from_pairs(2, &[(0, 1)]);
        let scores = [1.0, 1.0];
        let remaining = [1u32, 50];
        let balanced =
            TabuOracle::new(OracleOptions::tabu().with_tabu_fitness(TabuFitness::BalancedFill));
        let a = arrange(&balanced, &scores, &g, &remaining, 1);
        assert_eq!(a.events(), &[EventId(1)]);
    }

    #[test]
    fn options_parse_and_build() {
        assert_eq!(OracleOptions::parse("greedy").unwrap().name(), "greedy");
        assert_eq!(OracleOptions::parse("tabu").unwrap().name(), "tabu");
        assert!(OracleOptions::parse("annealing").is_none());
        assert_eq!(OracleOptions::greedy().build().name(), "greedy");
        assert_eq!(OracleOptions::tabu().build().name(), "tabu");
        let custom = OracleOptions::new()
            .with_kind(OracleKind::Tabu)
            .with_tabu_attempts(3)
            .with_tabu_len(2);
        assert_eq!(custom.tabu_attempts, 3);
        assert_eq!(custom.tabu_len, 2);
    }

    #[test]
    fn zero_capacity_and_empty_instance() {
        let g = ConflictGraph::new(0);
        for oracle in [&GreedyOracle as &dyn Oracle, &TabuOracle::default()] {
            assert!(arrange(oracle, &[], &g, &[], 4).is_empty());
        }
        let g3 = ConflictGraph::new(3);
        for oracle in [&GreedyOracle as &dyn Oracle, &TabuOracle::default()] {
            assert!(arrange(oracle, &[1.0, 2.0, 3.0], &g3, &[1; 3], 0).is_empty());
        }
    }
}

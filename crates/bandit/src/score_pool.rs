//! `ScorePool` — the deterministic intra-round parallel scoring engine.
//!
//! One FASEA round scores all `|V|` events for the arriving user and
//! then runs Oracle-Greedy. The scores are independent given the shared
//! `Y⁻¹`/`θ̂` state, so the scan is embarrassingly parallel — but the
//! golden-determinism, CRN, and WAL-replay machinery all require the
//! parallel scores to be **bit-identical** to the serial path. The pool
//! guarantees that by construction:
//!
//! * The event range is cut into fixed-size chunks of [`SCORE_CHUNK`]
//!   events. Chunk boundaries depend only on `|V|` and the chunk size —
//!   never on the thread count or on scheduling — and `SCORE_CHUNK` is a
//!   multiple of [`fasea_linalg::QF_LANES`], so every chunk starts a
//!   lane group exactly where the serial kernel would. Running the
//!   existing `_into` kernels on each chunk therefore reproduces the
//!   serial bits no matter which worker runs which chunk, or in what
//!   order.
//! * Each chunk writes a **disjoint** sub-slice of the caller's output
//!   buffers ([`ShardWriter`]), so there is no reduction whose order
//!   could vary; merges (the oracle's per-shard top-k) happen serially
//!   on the caller thread afterwards.
//! * RNG-consuming score paths (TS posterior draws, eGreedy coins and
//!   exploration priorities, Random priorities) never enter the pool —
//!   they stay on the caller thread in the exact pre-parallel draw
//!   order.
//!
//! The pool is persistent: `threads − 1` std workers are spawned once
//! and parked on a condvar between rounds, so per-round dispatch costs
//! two mutex acquisitions and no heap allocation (Linux mutexes and
//! condvars are futex-based) — the zero-alloc steady state of the
//! batched scoring path extends to the parallel path, which the
//! counting-allocator test in `tests/alloc_free_parallel.rs` asserts.
//! The caller participates in chunk execution, so `threads = 1` (or a
//! pool that is simply absent) degrades to the serial path.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Events per parallel chunk. A multiple of [`fasea_linalg::QF_LANES`]
/// (so chunk starts coincide with serial lane-group starts — the
/// bit-equality contract) that is large enough to amortise the claim
/// atomics and small enough to load-balance `|V| = 100k` over 8 workers.
pub const SCORE_CHUNK: usize = 2048;

const _: () = assert!(
    SCORE_CHUNK.is_multiple_of(fasea_linalg::QF_LANES),
    "SCORE_CHUNK must be a multiple of the kernel lane width"
);

/// Live pool workers across the whole process — the serving layer's
/// drain test asserts this returns to zero after a graceful shutdown,
/// i.e. that dropping the last service handle joined every worker.
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Number of `ScorePool` worker threads currently alive in this
/// process (excludes callers, which only borrow into the pool during
/// [`ScorePool::run`]).
pub fn live_score_workers() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

/// A type-erased borrow of the per-chunk closure. Sound because the
/// pointer is only dereferenced by a worker holding a validly claimed
/// chunk of the *current* epoch, and [`ScorePool::run`] does not return
/// (ending the closure's lifetime) until every chunk of its epoch has
/// completed — stale wake-ups fail the epoch check in `claim` and never
/// touch the pointer.
#[derive(Copy, Clone)]
struct RawJob(*const (dyn Fn(usize, Range<usize>) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared across workers by reference)
// and the lifetime discipline above keeps it alive for every deref.
unsafe impl Send for RawJob {}

struct Gate {
    /// Monotone dispatch counter; workers run a job at most once.
    epoch: u64,
    /// The current job + its geometry; overwritten by each dispatch.
    job: Option<(RawJob, usize, usize)>, // (f, n, chunk)
    /// Last epoch whose chunks have all completed.
    finished_epoch: u64,
    shutdown: bool,
}

struct Shared {
    gate: Mutex<Gate>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Packed `(epoch as u32) << 32 | next_chunk`: claims are CAS-gated
    /// on the epoch so a worker that slept through a whole round can
    /// never steal a chunk index from a later dispatch.
    claim: AtomicU64,
    /// Chunks of the current epoch not yet completed; the worker that
    /// takes it to zero signals `done_cv`.
    pending: AtomicUsize,
    /// Set if a per-chunk closure panicked; the caller re-raises.
    panicked: AtomicBool,
    /// Workers that have completed OS-level thread startup and entered
    /// the dispatch loop (see [`ScorePool::wait_ready`]).
    started: AtomicUsize,
}

impl Shared {
    /// Claims the next chunk index of `epoch32`, or `None` if the pool
    /// has moved on to a different epoch.
    fn claim_chunk(&self, epoch32: u32) -> Option<usize> {
        let mut cur = self.claim.load(Ordering::Acquire);
        loop {
            if (cur >> 32) as u32 != epoch32 {
                return None;
            }
            match self.claim.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((cur & u32::MAX as u64) as usize),
                Err(now) => cur = now,
            }
        }
    }

    /// Runs chunks of `epoch` until the claim counter passes the end.
    /// Both workers and the dispatching caller execute this.
    fn run_chunks(&self, job: RawJob, n: usize, chunk: usize, epoch: u64) {
        let num_chunks = n.div_ceil(chunk);
        let epoch32 = epoch as u32;
        while let Some(c) = self.claim_chunk(epoch32) {
            if c >= num_chunks {
                return;
            }
            let start = c * chunk;
            let end = (start + chunk).min(n);
            // SAFETY: chunk `c` of this epoch was claimed exactly once
            // (CAS above), so the job is still borrowed by the blocked
            // `run` call; see `RawJob`.
            let f = unsafe { &*job.0 };
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(c, start..end)));
            if outcome.is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut gate = self.gate.lock().expect("score pool gate poisoned");
                gate.finished_epoch = epoch;
                drop(gate);
                self.done_cv.notify_all();
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    struct LiveGuard;
    impl Drop for LiveGuard {
        fn drop(&mut self) {
            LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
        }
    }
    LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
    let _guard = LiveGuard;
    shared.started.fetch_add(1, Ordering::SeqCst);

    let mut seen_epoch = 0u64;
    loop {
        let (job, n, chunk, epoch) = {
            let mut gate = shared.gate.lock().expect("score pool gate poisoned");
            loop {
                if gate.shutdown {
                    return;
                }
                if gate.epoch != seen_epoch {
                    if let Some((job, n, chunk)) = gate.job {
                        seen_epoch = gate.epoch;
                        break (job, n, chunk, gate.epoch);
                    }
                }
                gate = shared.work_cv.wait(gate).expect("score pool gate poisoned");
            }
        };
        shared.run_chunks(job, n, chunk, epoch);
    }
}

/// A persistent worker pool for deterministic intra-round parallel
/// scoring (see the module docs for the determinism argument).
///
/// The pool travels inside [`crate::ScoreWorkspace`] as an
/// `Option<Arc<ScorePool>>`, so one pool is shared by every policy of a
/// run and survives the workspace round-trip through
/// [`crate::Policy::select_into`]. Dropping the last `Arc` signals and
/// joins all workers — graceful service drains lean on this (asserted
/// via [`live_score_workers`]).
pub struct ScorePool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Caller-visible parallelism: workers + the participating caller.
    threads: usize,
}

impl ScorePool {
    /// Creates a pool with `threads` total participants: `threads − 1`
    /// parked worker threads plus the caller, which executes chunks
    /// itself during [`ScorePool::run`]. `threads ≤ 1` spawns no
    /// workers (the pool degrades to the serial path).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            gate: Mutex::new(Gate {
                epoch: 0,
                job: None,
                finished_epoch: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            claim: AtomicU64::new(0),
            pending: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            started: AtomicUsize::new(0),
        });
        let handles = (0..threads - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fasea-score-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn score pool worker")
            })
            .collect();
        ScorePool {
            shared,
            handles,
            threads,
        }
    }

    /// The conventional constructor for the `--score-threads N` knob:
    /// `None` for `threads ≤ 1` (serial scoring, today's default),
    /// otherwise a shared pool ready to install into policy workspaces.
    pub fn shared(threads: usize) -> Option<Arc<ScorePool>> {
        (threads > 1).then(|| Arc::new(ScorePool::new(threads)))
    }

    /// Total participants (workers + caller) this pool was sized for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Blocks (yielding) until every worker has finished OS-level
    /// thread startup and entered the dispatch loop.
    ///
    /// Correctness never requires this — [`ScorePool::run`] completes
    /// all chunks regardless, with the caller picking up whatever
    /// still-starting workers haven't claimed. It matters for
    /// *measurement*: thread startup allocates (libstd's stack-overflow
    /// handler records the thread name), so the zero-allocation tests
    /// and benches call this once after construction to keep startup
    /// out of the measured region.
    pub fn wait_ready(&self) {
        while self.shared.started.load(Ordering::SeqCst) < self.handles.len() {
            std::thread::yield_now();
        }
    }

    /// Runs `f(chunk_index, event_range)` once for every
    /// `chunk_size`-sized chunk of `0..n`, spread over the workers and
    /// the calling thread, and returns when **all** chunks completed.
    /// Chunk geometry is a pure function of `(n, chunk_size)` — workers
    /// race only for *which* chunk they execute, never for its bounds.
    ///
    /// Steady-state allocation-free: dispatch uses the pre-spawned
    /// workers, a condvar, and atomics only.
    ///
    /// Calls are serialized internally; `f` must be `Sync` because
    /// multiple threads execute it concurrently on disjoint chunks.
    ///
    /// # Panics
    /// Re-raises (as a panic on the caller) if any per-chunk closure
    /// panicked.
    pub fn run(&self, n: usize, chunk_size: usize, f: &(dyn Fn(usize, Range<usize>) + Sync)) {
        assert!(chunk_size > 0, "ScorePool::run: chunk_size must be > 0");
        if n == 0 {
            return;
        }
        let num_chunks = n.div_ceil(chunk_size);
        // SAFETY (lifetime erasure): `run` blocks until every chunk of
        // this epoch completes, so `f` outlives all dereferences; the
        // epoch check in `claim_chunk` stops stale workers from
        // touching the pointer afterwards.
        let job = RawJob(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize, Range<usize>) + Sync),
                *const (dyn Fn(usize, Range<usize>) + Sync + 'static),
            >(f as *const _)
        });
        let epoch = {
            let mut gate = self.shared.gate.lock().expect("score pool gate poisoned");
            gate.epoch += 1;
            let epoch = gate.epoch;
            gate.job = Some((job, n, chunk_size));
            self.shared.pending.store(num_chunks, Ordering::Release);
            self.shared
                .claim
                .store((epoch as u32 as u64) << 32, Ordering::Release);
            self.shared.work_cv.notify_all();
            epoch
        };
        // The caller is a full participant.
        self.shared.run_chunks(job, n, chunk_size, epoch);
        let mut gate = self.shared.gate.lock().expect("score pool gate poisoned");
        while gate.finished_epoch < epoch {
            gate = self
                .shared
                .done_cv
                .wait(gate)
                .expect("score pool gate poisoned");
        }
        // Nobody dereferences the erased pointer past this point.
        gate.job = None;
        drop(gate);
        if self.shared.panicked.swap(false, Ordering::AcqRel) {
            panic!("ScorePool: a per-chunk scoring closure panicked");
        }
    }
}

impl Drop for ScorePool {
    fn drop(&mut self) {
        {
            let mut gate = match self.shared.gate.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            gate.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ScorePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScorePool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// Hands each pool chunk a mutable view of its own sub-range of one
/// output buffer, bypassing the borrow checker for the (provably
/// disjoint) concurrent writes.
///
/// Soundness contract: concurrent callers must pass **disjoint** ranges
/// — which the pool guarantees, because every chunk index is claimed by
/// exactly one worker and chunk geometry is fixed — and the buffer must
/// outlive the [`ScorePool::run`] call, which borrows the writer.
pub(crate) struct ShardWriter<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: the writer only exposes raw provenance; disjointness of the
// actual accesses is the contract documented above.
unsafe impl<T: Send> Send for ShardWriter<T> {}
unsafe impl<T: Send> Sync for ShardWriter<T> {}

impl<T> ShardWriter<T> {
    pub(crate) fn new(buf: &mut [T]) -> Self {
        ShardWriter {
            ptr: buf.as_mut_ptr(),
            len: buf.len(),
        }
    }

    /// The sub-slice for `range`.
    ///
    /// # Safety
    /// `range` must lie within the original buffer and not overlap any
    /// range given out to a concurrently running chunk.
    #[allow(clippy::mut_from_ref)] // disjointness is the documented contract
    pub(crate) unsafe fn slice(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
    }
}

/// The chunked form of the per-event dot-product score scan shared by
/// Exploit, TS (after its serial posterior draw) and eGreedy's exploit
/// branch: `scores[v] = ⟨x_v, theta⟩` for all events. Per-event
/// arithmetic is untouched, so this is trivially bit-equal to the
/// serial loop.
pub(crate) fn dot_scores_pooled(
    pool: &ScorePool,
    contexts: &fasea_core::ContextMatrix,
    theta: &[f64],
    scores: &mut [f64],
) {
    let n = scores.len();
    let scores_w = ShardWriter::new(scores);
    pool.run(n, SCORE_CHUNK, &|_c, range| {
        // SAFETY: pool chunk ranges are disjoint.
        let s = unsafe { scores_w.slice(range.clone()) };
        for (off, v) in range.enumerate() {
            let x = contexts.context(fasea_core::EventId(v));
            s[off] = fasea_linalg::dot_slices(x, theta);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_the_range_exactly_once() {
        let pool = ScorePool::new(4);
        let n = 3 * SCORE_CHUNK + 17; // ragged tail chunk
        let mut hits = vec![0u8; n];
        let writer = ShardWriter::new(&mut hits);
        pool.run(n, SCORE_CHUNK, &|_c, range| {
            // SAFETY: pool chunks are disjoint.
            let slot = unsafe { writer.slice(range) };
            for h in slot {
                *h += 1;
            }
        });
        assert!(hits.iter().all(|&h| h == 1), "a chunk ran 0 or 2 times");
    }

    #[test]
    fn chunk_index_matches_range() {
        let pool = ScorePool::new(3);
        let n = 2 * SCORE_CHUNK + 5;
        let seen = Mutex::new(Vec::new());
        pool.run(n, SCORE_CHUNK, &|c, range| {
            assert_eq!(range.start, c * SCORE_CHUNK);
            assert_eq!(range.end, ((c + 1) * SCORE_CHUNK).min(n));
            seen.lock().unwrap().push(c);
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn reusable_across_rounds_and_sizes() {
        let pool = ScorePool::new(2);
        for round in 1..20usize {
            let n = round * 37;
            let total = AtomicUsize::new(0);
            pool.run(n, 64, &|_c, range| {
                total.fetch_add(range.len(), Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), n);
        }
    }

    #[test]
    fn empty_range_is_a_noop() {
        let pool = ScorePool::new(2);
        pool.run(0, SCORE_CHUNK, &|_, _| panic!("must not run"));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ScorePool::new(1);
        assert_eq!(pool.threads(), 1);
        let total = AtomicUsize::new(0);
        pool.run(100, 8, &|_c, r| {
            total.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn shared_gates_on_thread_count() {
        assert!(ScorePool::shared(0).is_none());
        assert!(ScorePool::shared(1).is_none());
        assert_eq!(ScorePool::shared(4).unwrap().threads(), 4);
    }

    #[test]
    fn drop_joins_all_workers() {
        let before = live_score_workers();
        {
            let pool = ScorePool::new(5);
            assert_eq!(pool.threads(), 5);
            // Workers may still be starting; run once to sync with them.
            pool.run(1, 1, &|_, _| {});
        }
        // Drop joined the 4 workers: the live counter is back where it
        // started (other tests may hold pools of their own, so compare
        // relatively).
        assert!(live_score_workers() <= before);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ScorePool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(4 * SCORE_CHUNK, SCORE_CHUNK, &|c, _| {
                if c == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "chunk panic must reach the caller");
        // The pool survives and later rounds still work.
        let total = AtomicUsize::new(0);
        pool.run(10, 4, &|_c, r| {
            total.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }
}

//! eGreedy — the paper's Algorithm 4 (ε-greedy heuristic).

use crate::{Policy, RidgeEstimator, ScoreWorkspace, SelectionView};
use fasea_core::{Arrangement, ContextMatrix, Feedback};
use rand::Rng as _;

/// ε-greedy (Algorithm 4): with probability ε arrange up to `c_u`
/// non-conflicting, non-full events uniformly at random (exploration);
/// otherwise arrange greedily on the point estimates `x_{t,v}ᵀθ̂_t`
/// (exploitation). Feedback updates the shared ridge estimator in both
/// branches (lines 14–15 run unconditionally).
///
/// Random arrangement is implemented by drawing i.i.d. uniform priorities
/// and handing them to Oracle-Greedy — a uniformly random visiting order,
/// exactly "at most `c_u` non-conflicting events selected randomly"
/// (line 7).
#[derive(Debug, Clone)]
pub struct EpsilonGreedy {
    estimator: RidgeEstimator,
    epsilon: f64,
    rng: fasea_stats::Rng,
    ws: ScoreWorkspace,
    exploration_rounds: u64,
}

impl EpsilonGreedy {
    /// Creates eGreedy with ridge strength `lambda` and exploration
    /// probability `epsilon` (paper default ε = 0.1).
    ///
    /// # Panics
    /// Panics if `epsilon ∉ [0, 1]`.
    pub fn new(dim: usize, lambda: f64, epsilon: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&epsilon),
            "EpsilonGreedy: epsilon must be in [0, 1]"
        );
        EpsilonGreedy {
            estimator: RidgeEstimator::new(dim, lambda),
            epsilon,
            rng: fasea_stats::rng_from_seed(seed),
            ws: ScoreWorkspace::new(),
            exploration_rounds: 0,
        }
    }

    /// Exploration probability ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// How many rounds took the exploration branch so far.
    pub fn exploration_rounds(&self) -> u64 {
        self.exploration_rounds
    }

    /// Read access to the estimator.
    pub fn estimator(&self) -> &RidgeEstimator {
        &self.estimator
    }
}

impl Policy for EpsilonGreedy {
    fn name(&self) -> &'static str {
        "eGreedy"
    }

    fn score_into(&mut self, view: &SelectionView<'_>, ws: &mut ScoreWorkspace) {
        let n = view.num_events();
        let pool = ws.score_pool().cloned();
        let scores = ws.scores_mut(n);
        // RNG draw order is durable state: one coin, then (explore only)
        // one priority per event — identical to the pre-batched path.
        // Both draws stay serial on this thread even with a pool
        // installed; only the exploit branch's dot scan fans out.
        let explore = self.rng.gen::<f64>() <= self.epsilon;
        if explore {
            self.exploration_rounds += 1;
            for s in scores.iter_mut() {
                *s = self.rng.gen::<f64>();
            }
        } else {
            let theta = self.estimator.theta_hat();
            match pool {
                Some(pool) if pool.threads() > 1 => {
                    crate::score_pool::dot_scores_pooled(
                        &pool,
                        view.contexts,
                        theta.as_slice(),
                        scores,
                    );
                }
                _ => {
                    for (v, s) in scores.iter_mut().enumerate() {
                        let x = view.contexts.context(fasea_core::EventId(v));
                        *s = fasea_linalg::dot_slices(x, theta.as_slice());
                    }
                }
            }
        }
    }

    fn workspace(&self) -> &ScoreWorkspace {
        &self.ws
    }

    fn workspace_mut(&mut self) -> &mut ScoreWorkspace {
        &mut self.ws
    }

    fn observe(
        &mut self,
        _t: u64,
        contexts: &ContextMatrix,
        arrangement: &Arrangement,
        feedback: &Feedback,
    ) {
        for (v, accepted) in feedback.zip(arrangement) {
            self.estimator
                .observe(contexts.context(v), if accepted { 1.0 } else { 0.0 })
                .expect("EpsilonGreedy: estimator update failed");
        }
    }

    fn state_bytes(&self) -> usize {
        self.estimator.state_bytes()
            + self.ws.state_bytes()
            + std::mem::size_of::<fasea_stats::Rng>()
    }

    fn save_state(&self) -> Vec<u8> {
        // framed estimator | rng state (32) | exploration_rounds (8).
        let mut out = Vec::new();
        crate::snapshot::write_estimator_framed(&mut out, &self.estimator);
        out.extend_from_slice(&fasea_stats::rng_state(&self.rng));
        out.extend_from_slice(&self.exploration_rounds.to_le_bytes());
        out
    }

    fn restore_state(&mut self, blob: &[u8]) -> Result<(), crate::SnapshotError> {
        let mut at = 0usize;
        let est = crate::snapshot::read_estimator_framed(blob, &mut at)?;
        crate::snapshot::check_estimator_shape(&est, &self.estimator)?;
        let rng = crate::snapshot::read_array::<32>(blob, &mut at)?;
        let rounds = crate::snapshot::read_array::<8>(blob, &mut at)?;
        if at != blob.len() {
            return Err(crate::SnapshotError::Corrupt("trailing policy-state bytes"));
        }
        self.estimator = est;
        self.rng = fasea_stats::rng_from_state(rng);
        self.exploration_rounds = u64::from_le_bytes(rounds);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_core::ConflictGraph;

    fn make_view<'a>(
        ctx: &'a ContextMatrix,
        g: &'a ConflictGraph,
        rem: &'a [u32],
        cu: u32,
        t: u64,
    ) -> SelectionView<'a> {
        SelectionView {
            t,
            user_capacity: cu,
            contexts: ctx,
            conflicts: g,
            remaining: rem,
        }
    }

    #[test]
    fn exploration_frequency_matches_epsilon() {
        let mut p = EpsilonGreedy::new(2, 1.0, 0.25, 11);
        let ctx = ContextMatrix::from_rows(2, 2, vec![0.5, 0.0, 0.0, 0.5]);
        let g = ConflictGraph::new(2);
        let rem = [u32::MAX; 2];
        let n = 20_000;
        for t in 0..n {
            let _ = p.select(&make_view(&ctx, &g, &rem, 1, t));
        }
        let frac = p.exploration_rounds() as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn epsilon_zero_is_pure_exploitation() {
        let mut p = EpsilonGreedy::new(2, 1.0, 0.0, 1);
        let ctx = ContextMatrix::from_rows(2, 2, vec![0.5, 0.0, 0.0, 0.5]);
        let g = ConflictGraph::new(2);
        let rem = [10u32; 2];
        for t in 0..100 {
            let _ = p.select(&make_view(&ctx, &g, &rem, 1, t));
        }
        assert_eq!(p.exploration_rounds(), 0);
    }

    #[test]
    fn epsilon_one_is_pure_exploration() {
        let mut p = EpsilonGreedy::new(2, 1.0, 1.0, 1);
        let ctx = ContextMatrix::from_rows(2, 2, vec![0.5, 0.0, 0.0, 0.5]);
        let g = ConflictGraph::new(2);
        let rem = [10u32; 2];
        for t in 0..50 {
            let _ = p.select(&make_view(&ctx, &g, &rem, 1, t));
        }
        assert_eq!(p.exploration_rounds(), 50);
    }

    #[test]
    fn escapes_the_exploit_deadlock() {
        // Fixed contexts, all feedback 0: the random branch must
        // eventually try a different event (the paper's argument for why
        // eGreedy beats Exploit on u₈/u₁₀/u₁₆).
        let mut p = EpsilonGreedy::new(2, 1.0, 0.2, 5);
        let ctx = ContextMatrix::from_rows(3, 2, vec![1.0, 0.0, 0.8, 0.1, 0.0, 0.9]);
        let g = ConflictGraph::new(3);
        let rem = [1000u32; 3];
        let mut seen = std::collections::HashSet::new();
        for t in 0..100 {
            let a = p.select(&make_view(&ctx, &g, &rem, 1, t));
            seen.insert(a.events()[0]);
            p.observe(t, &ctx, &a, &Feedback::new(vec![false]));
        }
        assert!(seen.len() >= 2, "eGreedy never explored: {seen:?}");
    }

    #[test]
    fn respects_conflicts_in_both_branches() {
        let mut p = EpsilonGreedy::new(1, 1.0, 0.5, 3);
        let ctx = ContextMatrix::from_rows(4, 1, vec![0.9, 0.8, 0.7, 0.6]);
        let g = ConflictGraph::complete(4);
        let rem = [1u32; 4];
        for t in 0..50 {
            let a = p.select(&make_view(&ctx, &g, &rem, 3, t));
            assert!(a.len() <= 1, "conflicting arrangement at t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0, 1]")]
    fn rejects_bad_epsilon() {
        let _ = EpsilonGreedy::new(2, 1.0, 1.5, 0);
    }

    #[test]
    fn accessors() {
        let p = EpsilonGreedy::new(3, 1.0, 0.1, 0);
        assert_eq!(p.name(), "eGreedy");
        assert_eq!(p.epsilon(), 0.1);
        assert!(p.last_scores().is_none());
        assert_eq!(p.estimator().dim(), 3);
    }
}

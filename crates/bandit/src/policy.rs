//! The policy interface shared by every FASEA strategy.

use crate::{ScoreWorkspace, SnapshotError};
use fasea_core::{Arrangement, ConflictGraph, ContextMatrix, Feedback};

/// Everything a policy may look at when arranging events for the current
/// user: the round index, the user's capacity `c_u`, the revealed
/// contexts `x_{t,v}`, the conflict graph `CF`, and the *current*
/// remaining capacities (public platform state — the number of free seats
/// per event is visible on a real EBSN).
///
/// Deliberately absent: the true `θ` and the feedback coins. Only
/// [`crate::Opt`] is constructed with knowledge of `θ`.
#[derive(Debug, Clone, Copy)]
pub struct SelectionView<'a> {
    /// Time step `t` (0-based; policies that need the paper's 1-based `t`
    /// in formulas, such as TS's `ln(t/δ)`, use `t + 1`).
    pub t: u64,
    /// The user's capacity `c_u`.
    pub user_capacity: u32,
    /// Revealed contexts, one row per event.
    pub contexts: &'a ContextMatrix,
    /// Conflicting event pairs.
    pub conflicts: &'a ConflictGraph,
    /// Remaining capacity per event.
    pub remaining: &'a [u32],
}

impl SelectionView<'_> {
    /// Number of events `|V|`.
    pub fn num_events(&self) -> usize {
        self.contexts.num_events()
    }

    /// Context dimension `d`.
    pub fn dim(&self) -> usize {
        self.contexts.dim()
    }
}

/// A FASEA arrangement strategy.
///
/// The simulator drives the Definition 3 loop:
///
/// ```text
/// for t in 0..T {
///     policy.select_into(&view, &mut arrangement);     // propose A_t
///     let outcome = environment.step(t, &user, &arrangement)?;
///     policy.observe(t, &user.contexts, &arrangement, &outcome.feedback);
/// }
/// ```
///
/// The scoring surface is **batched**: a policy implements
/// [`Policy::score_into`], which writes one score per event into a
/// [`ScoreWorkspace`], and inherits `select` / `select_into` — they run
/// `score_into` followed by Oracle-Greedy over the workspace buffers.
/// Scoring takes `&mut self` because several policies consume their own
/// randomness (TS's posterior sample, eGreedy's exploration coin) or
/// refresh a cached `θ̂`.
///
/// Policies are `Send`: the serving layer (`fasea-serve`) moves a boxed
/// policy — inside its `ArrangementService` — onto a dedicated writer
/// thread. Every policy is plain owned data, so this costs nothing.
pub trait Policy: Send {
    /// Short stable name used in reports ("UCB", "TS", …).
    fn name(&self) -> &'static str;

    /// Scores all `|V|` events of the round in one batched pass,
    /// writing into `ws`.
    ///
    /// ## Contract
    ///
    /// * Write **exactly** `view.num_events()` scores, obtained from
    ///   `ws.scores_mut(view.num_events())` (or
    ///   `ws.scores_and_widths_mut` when a width buffer is needed),
    ///   overwriting every entry — the buffer may hold a previous
    ///   round's values.
    /// * Use the matrix-at-a-time linalg kernels
    ///   (`ShermanMorrisonInverse::widths_into`,
    ///   `Matrix::quadratic_forms_batch`, `solve_into`) rather than
    ///   per-event scalar calls: steady-state rounds of the built-in
    ///   learning policies perform **zero heap allocations**, and the
    ///   counting-allocator test holds the bar for UCB, Exploit and
    ///   eGreedy.
    /// * `ws` is normally the policy's own workspace (threaded through
    ///   [`Policy::select_into`]), but implementations must not rely on
    ///   that: any workspace handed in must end up with this round's
    ///   scores. Policy state (estimator, RNG) lives on `self`, never in
    ///   the workspace.
    /// * Determinism: a policy must draw the same RNG stream and produce
    ///   bit-identical scores whether driven through `select`,
    ///   `select_into`, or `score_into` directly — crash recovery
    ///   re-executes selection against logged contexts and compares.
    fn score_into(&mut self, view: &SelectionView<'_>, ws: &mut ScoreWorkspace);

    /// Borrows the policy's own workspace (scores of the most recent
    /// round, oracle scratch).
    fn workspace(&self) -> &ScoreWorkspace;

    /// Mutably borrows the policy's own workspace — `select_into`
    /// threads it through `score_into` and the oracle.
    fn workspace_mut(&mut self) -> &mut ScoreWorkspace;

    /// Proposes an arrangement for the current user. The default scores
    /// through [`Policy::score_into`] and arranges with Oracle-Greedy;
    /// the returned arrangement is freshly allocated — hot loops use
    /// [`Policy::select_into`] with a reused buffer instead.
    ///
    /// Implementations must produce a feasible arrangement (≤ `c_u`
    /// events, non-conflicting, all with remaining capacity) — the
    /// environment re-validates and an error there is a policy bug.
    fn select(&mut self, view: &SelectionView<'_>) -> Arrangement {
        let mut out = Arrangement::empty();
        self.select_into(view, &mut out);
        out
    }

    /// [`Policy::select`] into a caller-owned arrangement buffer: scores
    /// with `score_into` into the policy's workspace, marks the round,
    /// then runs Oracle-Greedy reusing the workspace's scratch. With a
    /// warm workspace and a reused `out`, a steady-state round is
    /// allocation-free for the non-sampling policies.
    fn select_into(&mut self, view: &SelectionView<'_>, out: &mut Arrangement) {
        // Move the workspace out so `self` stays free for `score_into`
        // (a plain field re-borrow is impossible through the trait).
        // `ScoreWorkspace` is a bundle of `Vec`s, so `take` is move-only.
        let mut ws = std::mem::take(self.workspace_mut());
        // A valid prefetched score set for this round (same round, same
        // model epoch — see `ScoreWorkspace::take_prefetch`) substitutes
        // for `score_into` verbatim; the arrangement itself is always
        // computed fresh against the live `view.remaining`.
        if !ws.take_prefetch(view.t) {
            self.score_into(view, &mut ws);
        }
        ws.mark_scored();
        ws.arrange_into(view, out);
        *self.workspace_mut() = ws;
    }

    /// `true` when [`Policy::score_into`] consumes no policy randomness
    /// and does not mutate learner state: scores are a pure function of
    /// (estimator state, contexts, `t`). Speculative callers — the serve
    /// actor's optimistic admission — may only prefetch *ahead of an
    /// unresolved round* for such policies, because a discarded
    /// speculation then costs one recompute instead of a double RNG
    /// draw. Callers that can guarantee nothing intervenes between
    /// prefetch and use (the simulator's in-order pipeline) may prefetch
    /// any policy. Defaults to `false` — the safe answer for sampling
    /// policies.
    fn scoring_is_deterministic(&self) -> bool {
        false
    }

    /// Computes round `view.t`'s scores now and stashes them in the
    /// workspace tagged with the current model epoch
    /// ([`ScoreWorkspace::stash_prefetch`]). A later
    /// [`Policy::select_into`] for the same round reuses the stash if no
    /// intervening feedback bumped the epoch, and recomputes otherwise.
    ///
    /// Callers that cannot rule out an intervening model update before
    /// the round is driven must check
    /// [`Policy::scoring_is_deterministic`] first: prefetching a
    /// sampling policy and then discarding the stash would consume its
    /// RNG twice and fork the deterministic replay.
    fn prefetch_scores(&mut self, view: &SelectionView<'_>) {
        let mut ws = std::mem::take(self.workspace_mut());
        self.score_into(view, &mut ws);
        ws.stash_prefetch(view.t);
        *self.workspace_mut() = ws;
    }

    /// Consumes the user's feedback on the arranged events. `contexts`
    /// is the same block that was shown to `select` at time `t`.
    fn observe(
        &mut self,
        t: u64,
        contexts: &ContextMatrix,
        arrangement: &Arrangement,
        feedback: &Feedback,
    );

    /// Per-event scores used by the most recent `select` call, indexed by
    /// event id; `None` before the first selection. The harness ranks
    /// these against the ground-truth expected rewards to reproduce the
    /// paper's Kendall-τ plot (Figure 2). The default reads the policy's
    /// workspace.
    fn last_scores(&self) -> Option<&[f64]> {
        self.workspace().last_scores()
    }

    /// Approximate bytes of learner state (excluding the shared input
    /// data), for the paper's memory columns in Tables 5 and 6.
    fn state_bytes(&self) -> usize;

    /// Serialises the policy's durable learning state (estimator
    /// matrices, private RNG position, exploration counters) for a
    /// service snapshot. Policies whose behaviour is fully determined
    /// by their constructor parameters return an empty blob (the
    /// default).
    ///
    /// Per-round ephemera (`last_scores`, caches) are deliberately
    /// excluded: crash recovery re-executes `select` on the logged
    /// contexts, which rebuilds them.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state produced by [`Policy::save_state`] into a
    /// freshly-constructed policy with identical parameters.
    ///
    /// # Errors
    /// [`SnapshotError`] if the blob is damaged, shaped for different
    /// parameters, or the policy is stateless but the blob is not.
    fn restore_state(&mut self, blob: &[u8]) -> Result<(), SnapshotError> {
        if blob.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(
                "policy carries no restorable state but blob is non-empty",
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_core::EventId;

    /// A trivial policy used to exercise the trait object surface: event
    /// 0 always outranks the rest.
    struct AlwaysFirst {
        ws: ScoreWorkspace,
    }

    impl Policy for AlwaysFirst {
        fn name(&self) -> &'static str {
            "AlwaysFirst"
        }
        fn score_into(&mut self, view: &SelectionView<'_>, ws: &mut ScoreWorkspace) {
            let scores = ws.scores_mut(view.num_events());
            scores.fill(0.0);
            if let Some(first) = scores.first_mut() {
                *first = 1.0;
            }
        }
        fn workspace(&self) -> &ScoreWorkspace {
            &self.ws
        }
        fn workspace_mut(&mut self) -> &mut ScoreWorkspace {
            &mut self.ws
        }
        fn observe(&mut self, _: u64, _: &ContextMatrix, _: &Arrangement, _: &Feedback) {}
        fn state_bytes(&self) -> usize {
            self.ws.state_bytes()
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut p: Box<dyn Policy> = Box::new(AlwaysFirst {
            ws: ScoreWorkspace::new(),
        });
        let contexts = ContextMatrix::zeros(3, 2);
        let conflicts = ConflictGraph::new(3);
        let remaining = [1u32, 1, 1];
        let view = SelectionView {
            t: 0,
            user_capacity: 1,
            contexts: &contexts,
            conflicts: &conflicts,
            remaining: &remaining,
        };
        assert_eq!(view.num_events(), 3);
        assert_eq!(view.dim(), 2);
        assert!(p.last_scores().is_none());
        let a = p.select(&view);
        assert_eq!(a.events(), &[EventId(0)]);
        assert_eq!(p.last_scores().unwrap().len(), 3);
        assert_eq!(p.name(), "AlwaysFirst");
        assert!(p.state_bytes() >= 24);
    }

    #[test]
    fn prefetched_select_matches_fresh_select() {
        let mut fresh = AlwaysFirst {
            ws: ScoreWorkspace::new(),
        };
        let mut pipelined = AlwaysFirst {
            ws: ScoreWorkspace::new(),
        };
        let contexts = ContextMatrix::zeros(4, 2);
        let conflicts = ConflictGraph::new(4);
        let remaining = [2u32; 4];
        let view = SelectionView {
            t: 5,
            user_capacity: 2,
            contexts: &contexts,
            conflicts: &conflicts,
            remaining: &remaining,
        };
        assert!(!pipelined.scoring_is_deterministic(), "trait default");
        pipelined.prefetch_scores(&view);
        assert!(pipelined.workspace().has_prefetch());
        let a = pipelined.select(&view);
        assert_eq!(a, fresh.select(&view));
        assert_eq!(pipelined.workspace().prefetch_stats().hits, 1);
        // A stash for a different round is discarded, not reused.
        pipelined.prefetch_scores(&view);
        let later = SelectionView { t: 6, ..view };
        assert_eq!(pipelined.select(&later), fresh.select(&later));
        assert_eq!(pipelined.workspace().prefetch_stats().recomputes, 1);
    }

    #[test]
    fn select_into_reuses_buffer_and_matches_select() {
        let mut p = AlwaysFirst {
            ws: ScoreWorkspace::new(),
        };
        let contexts = ContextMatrix::zeros(4, 2);
        let conflicts = ConflictGraph::new(4);
        let remaining = [2u32; 4];
        let view = SelectionView {
            t: 0,
            user_capacity: 2,
            contexts: &contexts,
            conflicts: &conflicts,
            remaining: &remaining,
        };
        let owned = p.select(&view);
        let mut reused = Arrangement::new(vec![EventId(3), EventId(2), EventId(1)]);
        p.select_into(&view, &mut reused);
        assert_eq!(owned, reused, "select and select_into must agree");
        // And again, to prove the cleared buffer doesn't leak old events.
        p.select_into(&view, &mut reused);
        assert_eq!(owned, reused);
    }
}

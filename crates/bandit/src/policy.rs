//! The policy interface shared by every FASEA strategy.

use crate::SnapshotError;
use fasea_core::{Arrangement, ConflictGraph, ContextMatrix, Feedback};

/// Everything a policy may look at when arranging events for the current
/// user: the round index, the user's capacity `c_u`, the revealed
/// contexts `x_{t,v}`, the conflict graph `CF`, and the *current*
/// remaining capacities (public platform state — the number of free seats
/// per event is visible on a real EBSN).
///
/// Deliberately absent: the true `θ` and the feedback coins. Only
/// [`crate::Opt`] is constructed with knowledge of `θ`.
#[derive(Debug, Clone, Copy)]
pub struct SelectionView<'a> {
    /// Time step `t` (0-based; policies that need the paper's 1-based `t`
    /// in formulas, such as TS's `ln(t/δ)`, use `t + 1`).
    pub t: u64,
    /// The user's capacity `c_u`.
    pub user_capacity: u32,
    /// Revealed contexts, one row per event.
    pub contexts: &'a ContextMatrix,
    /// Conflicting event pairs.
    pub conflicts: &'a ConflictGraph,
    /// Remaining capacity per event.
    pub remaining: &'a [u32],
}

impl SelectionView<'_> {
    /// Number of events `|V|`.
    pub fn num_events(&self) -> usize {
        self.contexts.num_events()
    }

    /// Context dimension `d`.
    pub fn dim(&self) -> usize {
        self.contexts.dim()
    }
}

/// A FASEA arrangement strategy.
///
/// The simulator drives the Definition 3 loop:
///
/// ```text
/// for t in 0..T {
///     let arrangement = policy.select(&view);          // propose A_t
///     let outcome = environment.step(t, &user, &arrangement)?;
///     policy.observe(t, &user.contexts, &arrangement, &outcome.feedback);
/// }
/// ```
///
/// `select` takes `&mut self` because several policies consume their own
/// randomness (TS's posterior sample, eGreedy's exploration coin) or
/// cache the scores they used.
///
/// Policies are `Send`: the serving layer (`fasea-serve`) moves a boxed
/// policy — inside its `ArrangementService` — onto a dedicated writer
/// thread. Every policy is plain owned data, so this costs nothing.
pub trait Policy: Send {
    /// Short stable name used in reports ("UCB", "TS", …).
    fn name(&self) -> &'static str;

    /// Proposes an arrangement for the current user. Implementations must
    /// return a feasible arrangement (≤ `c_u` events, non-conflicting,
    /// all with remaining capacity) — the environment re-validates and
    /// an error there is a policy bug.
    fn select(&mut self, view: &SelectionView<'_>) -> Arrangement;

    /// Consumes the user's feedback on the arranged events. `contexts`
    /// is the same block that was shown to `select` at time `t`.
    fn observe(
        &mut self,
        t: u64,
        contexts: &ContextMatrix,
        arrangement: &Arrangement,
        feedback: &Feedback,
    );

    /// Per-event scores used by the most recent `select` call, indexed by
    /// event id; `None` before the first selection. The harness ranks
    /// these against the ground-truth expected rewards to reproduce the
    /// paper's Kendall-τ plot (Figure 2).
    fn last_scores(&self) -> Option<&[f64]>;

    /// Approximate bytes of learner state (excluding the shared input
    /// data), for the paper's memory columns in Tables 5 and 6.
    fn state_bytes(&self) -> usize;

    /// Serialises the policy's durable learning state (estimator
    /// matrices, private RNG position, exploration counters) for a
    /// service snapshot. Policies whose behaviour is fully determined
    /// by their constructor parameters return an empty blob (the
    /// default).
    ///
    /// Per-round ephemera (`last_scores`, caches) are deliberately
    /// excluded: crash recovery re-executes `select` on the logged
    /// contexts, which rebuilds them.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state produced by [`Policy::save_state`] into a
    /// freshly-constructed policy with identical parameters.
    ///
    /// # Errors
    /// [`SnapshotError`] if the blob is damaged, shaped for different
    /// parameters, or the policy is stateless but the blob is not.
    fn restore_state(&mut self, blob: &[u8]) -> Result<(), SnapshotError> {
        if blob.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(
                "policy carries no restorable state but blob is non-empty",
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_core::EventId;

    /// A trivial policy used to exercise the trait object surface.
    struct AlwaysFirst {
        scores: Vec<f64>,
    }

    impl Policy for AlwaysFirst {
        fn name(&self) -> &'static str {
            "AlwaysFirst"
        }
        fn select(&mut self, view: &SelectionView<'_>) -> Arrangement {
            self.scores = vec![0.0; view.num_events()];
            if view.user_capacity > 0 && view.remaining.first().is_some_and(|&c| c > 0) {
                Arrangement::new(vec![EventId(0)])
            } else {
                Arrangement::empty()
            }
        }
        fn observe(&mut self, _: u64, _: &ContextMatrix, _: &Arrangement, _: &Feedback) {}
        fn last_scores(&self) -> Option<&[f64]> {
            if self.scores.is_empty() {
                None
            } else {
                Some(&self.scores)
            }
        }
        fn state_bytes(&self) -> usize {
            self.scores.len() * 8
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut p: Box<dyn Policy> = Box::new(AlwaysFirst { scores: vec![] });
        let contexts = ContextMatrix::zeros(3, 2);
        let conflicts = ConflictGraph::new(3);
        let remaining = [1u32, 1, 1];
        let view = SelectionView {
            t: 0,
            user_capacity: 2,
            contexts: &contexts,
            conflicts: &conflicts,
            remaining: &remaining,
        };
        assert_eq!(view.num_events(), 3);
        assert_eq!(view.dim(), 2);
        assert!(p.last_scores().is_none());
        let a = p.select(&view);
        assert_eq!(a.len(), 1);
        assert_eq!(p.last_scores().unwrap().len(), 3);
        assert_eq!(p.name(), "AlwaysFirst");
        assert_eq!(p.state_bytes(), 24);
    }
}

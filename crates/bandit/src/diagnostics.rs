//! Learning diagnostics: the quantities the linear-bandit regret theory
//! is built from, tracked online.
//!
//! The regret analyses behind the paper's algorithms (Abbasi-Yadkori et
//! al. for OFUL/LinUCB; Agrawal & Goyal for linear TS) bound regret by
//! the **elliptical potential**
//!
//! ```text
//! Σ_t min(1, ‖x_t‖²_{Y_{t-1}⁻¹})  ≤  2 log(det Y_T / det λI)
//!                                  ≤  2 d log(1 + T / (λ d))
//! ```
//!
//! Tracking the left side while a policy runs gives a model-free,
//! per-run yardstick: a learner whose empirical regret grows much
//! faster than its elliptical potential is failing for reasons other
//! than exploration capacity (which is precisely TS's failure mode
//! here — its potential is as healthy as UCB's, the noise it injects
//! on top is what hurts).

use crate::RidgeEstimator;
use fasea_linalg::Cholesky;

/// Online tracker of the elliptical potential and the log-det growth of
/// a ridge estimator's Gram matrix.
#[derive(Debug, Clone)]
pub struct EllipticalPotential {
    potential: f64,
    observations: u64,
    lambda: f64,
    dim: usize,
}

impl EllipticalPotential {
    /// Creates a tracker for a `dim`-dimensional estimator with ridge
    /// strength `lambda`.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `lambda <= 0`.
    pub fn new(dim: usize, lambda: f64) -> Self {
        assert!(dim > 0, "EllipticalPotential: dim must be > 0");
        assert!(lambda > 0.0, "EllipticalPotential: lambda must be > 0");
        EllipticalPotential {
            potential: 0.0,
            observations: 0,
            lambda,
            dim,
        }
    }

    /// Records one observed context. **Call before** the corresponding
    /// [`RidgeEstimator::observe`] so the width is measured under
    /// `Y_{t-1}` as in the theory.
    pub fn record(&mut self, estimator: &RidgeEstimator, x: &[f64]) {
        let w = estimator.confidence_width(x);
        self.potential += (w * w).min(1.0);
        self.observations += 1;
    }

    /// The accumulated potential `Σ min(1, ‖x‖²_{Y⁻¹})`.
    pub fn potential(&self) -> f64 {
        self.potential
    }

    /// Observations recorded.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// The theoretical ceiling `2 d log(1 + n / (λ d))` for the current
    /// observation count (unit-norm contexts).
    pub fn theoretical_bound(&self) -> f64 {
        2.0 * self.dim as f64
            * (1.0 + self.observations as f64 / (self.lambda * self.dim as f64)).ln()
    }

    /// Exact log-det form of the bound, `2·(log det Y − d log λ)`,
    /// evaluated on a concrete estimator.
    ///
    /// # Panics
    /// Panics if the estimator's Gram matrix fails to factor (cannot
    /// happen while it is SPD).
    pub fn log_det_bound(estimator: &RidgeEstimator) -> f64 {
        let chol = estimator
            .gram_cholesky()
            .expect("log_det_bound: Y must be SPD");
        2.0 * (chol.log_det() - estimator.dim() as f64 * estimator.lambda().ln())
    }

    /// Convenience: a Cholesky factor of the estimator's Gram matrix
    /// (re-exported here so diagnostic code does not need `fasea-linalg`
    /// directly).
    pub fn gram_factor(estimator: &RidgeEstimator) -> Cholesky {
        estimator
            .gram_cholesky()
            .expect("gram_factor: Y must be SPD")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_x(d: usize, k: u64) -> Vec<f64> {
        let raw: Vec<f64> = (0..d)
            .map(|i| (((k as usize * 31 + i * 7) % 13) as f64 / 13.0) - 0.4)
            .collect();
        let norm = raw.iter().map(|x| x * x).sum::<f64>().sqrt();
        raw.iter().map(|x| x / norm.max(1e-12)).collect()
    }

    #[test]
    fn potential_respects_theoretical_bound() {
        let d = 6;
        let lambda = 1.0;
        let mut est = RidgeEstimator::new(d, lambda);
        let mut pot = EllipticalPotential::new(d, lambda);
        for k in 0..500 {
            let x = unit_x(d, k);
            pot.record(&est, &x);
            est.observe(&x, (k % 2) as f64).unwrap();
        }
        assert_eq!(pot.observations(), 500);
        assert!(pot.potential() > 0.0);
        assert!(
            pot.potential() <= pot.theoretical_bound() + 1e-9,
            "potential {} exceeds bound {}",
            pot.potential(),
            pot.theoretical_bound()
        );
        // The exact log-det form is tighter than the generic ceiling
        // and must also dominate the potential.
        let exact = EllipticalPotential::log_det_bound(&est);
        assert!(
            pot.potential() <= exact + 1e-9,
            "potential {} exceeds exact bound {exact}",
            pot.potential()
        );
        assert!(exact <= pot.theoretical_bound() + 1e-9);
    }

    #[test]
    fn potential_grows_sublinearly() {
        let d = 4;
        let mut est = RidgeEstimator::new(d, 1.0);
        let mut pot = EllipticalPotential::new(d, 1.0);
        let mut at_100 = 0.0;
        for k in 0..1000 {
            let x = unit_x(d, k);
            pot.record(&est, &x);
            est.observe(&x, 0.5).unwrap();
            if k == 99 {
                at_100 = pot.potential();
            }
        }
        let at_1000 = pot.potential();
        // 10x the observations must yield far less than 10x potential.
        assert!(
            at_1000 < at_100 * 4.0,
            "potential not sublinear: {at_100} -> {at_1000}"
        );
    }

    #[test]
    fn repeated_direction_saturates() {
        // Observing the same x over and over: widths collapse, potential
        // converges.
        let d = 3;
        let mut est = RidgeEstimator::new(d, 1.0);
        let mut pot = EllipticalPotential::new(d, 1.0);
        let x = [1.0, 0.0, 0.0];
        for _ in 0..200 {
            pot.record(&est, &x);
            est.observe(&x, 1.0).unwrap();
        }
        // Σ_{n≥0} 1/(1+n) over 200 terms ≈ ln(200) + γ ≈ 5.9.
        assert!(pot.potential() < 7.0, "potential {}", pot.potential());
    }

    #[test]
    fn bound_grows_with_dimension() {
        let small = EllipticalPotential {
            potential: 0.0,
            observations: 1000,
            lambda: 1.0,
            dim: 5,
        };
        let large = EllipticalPotential {
            potential: 0.0,
            observations: 1000,
            lambda: 1.0,
            dim: 20,
        };
        assert!(large.theoretical_bound() > small.theoretical_bound());
    }

    #[test]
    #[should_panic(expected = "lambda must be > 0")]
    fn rejects_bad_lambda() {
        let _ = EllipticalPotential::new(3, 0.0);
    }
}

//! Reusable per-policy scoring scratch for the batched selection path.

use crate::{Oracle, OracleWorkspace, ScorePool, SelectionView};
use fasea_core::Arrangement;
use std::sync::Arc;

/// A pluggable replacement for the oracle ranking step of
/// [`ScoreWorkspace::arrange_into`].
///
/// When installed ([`ScoreWorkspace::set_arranger`]), the workspace
/// hands the arranger the finished score vector plus its reusable
/// [`OracleWorkspace`] scratch and lets it fill `out` — instead of
/// running the locally installed [`Oracle`]. The sharded coordinator
/// uses this seam to fan the top-k ranking out over shard actors
/// (via [`Oracle::arrange_gathered`]) while scoring and every RNG draw
/// still happen exactly once, in the policy, on the calling thread —
/// which is what keeps an N-shard run byte-identical to the
/// single-actor run.
///
/// **Contract:** the arrangement written to `out` must equal what the
/// service's configured [`Oracle`] produces locally on the same inputs
/// (for the default [`crate::GreedyOracle`], that is the greedy
/// capacity-aware arrangement). Everything downstream (the
/// WAL `Propose` records, recovery's replay cross-check, the golden
/// parity tests) assumes it.
///
/// `Send + Sync` because the owning workspace lives inside policies
/// that cross thread boundaries; `Debug` so the workspace's derives
/// survive.
pub trait Arranger: Send + Sync + std::fmt::Debug {
    /// Fills `out` with the arrangement for `scores` under `view`,
    /// reusing `ws` as scratch.
    fn arrange(
        &self,
        scores: &[f64],
        view: &SelectionView<'_>,
        ws: &mut OracleWorkspace,
        out: &mut Arrangement,
    );
}

/// Per-policy scratch for one scoring round: the score vector the
/// arrangement oracle consumes, the UCB width buffer, and the oracle's
/// [`OracleWorkspace`] (visiting-order, conflict-mask and local-search
/// buffers).
///
/// Every buffer is grown on first use and **reused** afterwards, so once
/// the workspace has seen the instance size a steady-state
/// [`crate::Policy::select_into`] round performs zero heap allocations
/// (asserted by the counting-allocator test in `tests/alloc_free.rs`).
///
/// Policies own one workspace each (it is part of the policy struct, so
/// it survives across rounds and across the service layers); external
/// callers that drive [`crate::Policy::score_into`] directly — the
/// benches and the property tests — may hold their own.
///
/// Invalidation: the workspace caches nothing derived from the
/// estimator — θ̂ staleness is tracked inside [`crate::RidgeEstimator`]
/// and invalidated by `observe`. The workspace's `scores` are only
/// meaningful between a `score_into` and the next `observe`; they are
/// overwritten wholesale at the start of each round.
///
/// ## Slice-length invariant
///
/// Every buffer returned by [`ScoreWorkspace::scores_mut`] /
/// [`ScoreWorkspace::scores_and_widths_mut`] has length **exactly**
/// `num_events` — asserted once at slicing time. The parallel scoring
/// paths depend on it: pool chunks write through raw sub-range views of
/// these buffers, and disjointness of those views is only guaranteed
/// when the backing slice spans precisely the event range being
/// sharded.
///
/// ## Oracle dispatch
///
/// [`ScoreWorkspace::arrange_into`] picks the arrangement engine in
/// precedence order:
///
/// 1. an installed [`Arranger`] ([`ScoreWorkspace::set_arranger`]) —
///    the sharded coordinator's distributed ranking;
/// 2. an installed [`Oracle`] ([`ScoreWorkspace::set_oracle`]) — e.g.
///    [`crate::TabuOracle`], or an explicit [`crate::GreedyOracle`];
/// 3. the built-in default: [`crate::GreedyOracle`] semantics (serial,
///    or pooled when a multi-thread [`ScorePool`] is installed) —
///    bit-identical to an explicitly installed greedy oracle.
///
/// ## Parallelism
///
/// The workspace optionally carries a shared [`ScorePool`]
/// ([`ScoreWorkspace::set_score_pool`]). When present with more than
/// one thread, policies fan the batched score scan out over the pool
/// and the greedy ranking runs sharded — both bit-identical to the
/// serial path by the determinism argument in the `score_pool` module
/// docs. The pool rides inside the workspace (rather than the policy or
/// the view) so it survives the `mem::take` round-trip in
/// [`crate::Policy::select_into`] and needs no `Policy` trait change.
///
/// ## Pipelined score prefetch
///
/// The round engines may compute a round's scores *early* — while the
/// previous round's log records are still in the commit queue — and
/// stash them with [`ScoreWorkspace::stash_prefetch`]. Scores are a
/// pure function of (learner state, contexts, `t`) for every shipped
/// policy — they never read `view.remaining` — so a stash stays valid
/// exactly until the next feedback that touches the model. That moment
/// is tracked by the **model epoch**: the service layers call
/// [`ScoreWorkspace::bump_model_epoch`] whenever `observe` actually
/// updated learner state (a non-empty arrangement's feedback).
/// [`ScoreWorkspace::take_prefetch`] consumes a stash only when both
/// the round index and the epoch still match; otherwise the stash is
/// dropped and the caller recomputes — determinism is preserved either
/// way, the epoch tag only decides whether the early work is reused.
#[derive(Debug, Clone, Default)]
pub struct ScoreWorkspace {
    scores: Vec<f64>,
    widths: Vec<f64>,
    oracle_ws: OracleWorkspace,
    pool: Option<Arc<ScorePool>>,
    oracle: Option<Arc<dyn Oracle>>,
    arranger: Option<Arc<dyn Arranger>>,
    scored_once: bool,
    model_epoch: u64,
    prefetch: PrefetchSlot,
    prefetch_stats: PrefetchStats,
    tier_stats: ModelTierStats,
}

/// Stashed early-computed scores for one future round, tagged with the
/// model epoch they were computed under. Buffers are swapped (not
/// reallocated) on hit, so steady-state pipelined rounds stay
/// allocation-free once warm.
#[derive(Debug, Clone, Default)]
struct PrefetchSlot {
    valid: bool,
    t: u64,
    epoch: u64,
    scores: Vec<f64>,
    widths: Vec<f64>,
}

/// Cumulative outcome counters of the epoch-tagged score prefetch
/// ([`ScoreWorkspace::take_prefetch`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Rounds whose stashed score set was reused verbatim.
    pub hits: u64,
    /// Rounds that found a stale stash (round or epoch mismatch) and
    /// recomputed their scores from scratch.
    pub recomputes: u64,
}

/// Cumulative model-tier counters mirrored from a backing per-user
/// estimator store by policies that own one (the personalized policy
/// shells in `fasea-models`). Living on the workspace lets the serving
/// layers export them through the ordinary `Policy::workspace()` seam
/// without a dependency on the store type. Stays all-zero for global
/// (non-personalized) policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelTierStats {
    /// Cold-user selections served through a materialized cohort prior
    /// instead of the global prior.
    pub cohort_hits: u64,
    /// Promotions that reconstructed a user's exact model from its
    /// rank-r sketch record (sketched state mode only).
    pub sketch_promotions: u64,
}

impl ScoreWorkspace {
    /// An empty workspace; buffers grow on first round.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace with score/width capacity for `num_events` events.
    pub fn with_capacity(num_events: usize) -> Self {
        ScoreWorkspace {
            scores: Vec::with_capacity(num_events),
            widths: Vec::with_capacity(num_events),
            ..Self::default()
        }
    }

    /// Resizes the score buffer for `|V| = num_events` and returns it.
    /// Old contents are not cleared — every policy overwrites all `|V|`
    /// entries.
    ///
    /// Invariant (checked here, once, at slicing time): the returned
    /// slice has length exactly `num_events`; parallel shard writers
    /// derive their disjoint sub-ranges from this length.
    pub fn scores_mut(&mut self, num_events: usize) -> &mut [f64] {
        self.scores.resize(num_events, 0.0);
        debug_assert_eq!(
            self.scores.len(),
            num_events,
            "score buffer must span exactly the event range"
        );
        &mut self.scores
    }

    /// Like [`ScoreWorkspace::scores_mut`] but also sizes and returns the
    /// width buffer (UCB's batched `√(xᵀY⁻¹x)` lands here). Both slices
    /// satisfy the `len == num_events` invariant of
    /// [`ScoreWorkspace::scores_mut`].
    pub fn scores_and_widths_mut(&mut self, num_events: usize) -> (&mut [f64], &mut [f64]) {
        self.scores.resize(num_events, 0.0);
        self.widths.resize(num_events, 0.0);
        debug_assert!(
            self.scores.len() == num_events && self.widths.len() == num_events,
            "score/width buffers must span exactly the event range"
        );
        (&mut self.scores, &mut self.widths)
    }

    /// Installs (or removes, with `None`) the shared worker pool used
    /// for intra-round parallel scoring. `None` — and any pool with
    /// `threads() ≤ 1` — means the serial path.
    pub fn set_score_pool(&mut self, pool: Option<Arc<ScorePool>>) {
        self.pool = pool.clone();
        self.oracle_ws.set_score_pool(pool);
    }

    /// The installed scoring pool, if any. Policies clone the `Arc`
    /// *before* borrowing score buffers so the workspace stays free.
    pub fn score_pool(&self) -> Option<&Arc<ScorePool>> {
        self.pool.as_ref()
    }

    /// Installs (or removes, with `None`) the [`Oracle`] that owns the
    /// arrangement step of [`ScoreWorkspace::arrange_into`]. `None`
    /// means the built-in [`crate::GreedyOracle`] semantics. An
    /// installed [`Arranger`] still takes precedence.
    pub fn set_oracle(&mut self, oracle: Option<Arc<dyn Oracle>>) {
        self.oracle = oracle;
    }

    /// The installed oracle, if any.
    pub fn oracle(&self) -> Option<&Arc<dyn Oracle>> {
        self.oracle.as_ref()
    }

    /// Installs (or removes, with `None`) an external [`Arranger`] that
    /// replaces the local oracle in [`ScoreWorkspace::arrange_into`].
    /// Takes precedence over both an installed [`Oracle`] and the score
    /// pool's sharded ranking.
    pub fn set_arranger(&mut self, arranger: Option<Arc<dyn Arranger>>) {
        self.arranger = arranger;
    }

    /// The installed external arranger, if any.
    pub fn arranger(&self) -> Option<&Arc<dyn Arranger>> {
        self.arranger.as_ref()
    }

    /// The scores written by the most recent `score_into` round.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The widths written by the most recent UCB round (empty for
    /// policies that never score widths).
    pub fn widths(&self) -> &[f64] {
        &self.widths
    }

    /// `Some(scores)` once at least one round has been scored — backs the
    /// default [`crate::Policy::last_scores`].
    pub fn last_scores(&self) -> Option<&[f64]> {
        self.scored_once.then_some(self.scores.as_slice())
    }

    /// Marks the score buffer as holding a completed round.
    pub fn mark_scored(&mut self) {
        self.scored_once = true;
    }

    /// The current model-version epoch. Stashed prefetches are valid
    /// only at the epoch they were computed under — see the *Pipelined
    /// score prefetch* section of the type docs.
    pub fn model_epoch(&self) -> u64 {
        self.model_epoch
    }

    /// Records that learner state changed (an `observe` with a
    /// non-empty arrangement). Any stashed prefetch becomes stale and
    /// will be recomputed on [`ScoreWorkspace::take_prefetch`].
    pub fn bump_model_epoch(&mut self) {
        self.model_epoch += 1;
    }

    /// Stashes the score/width buffers of the round just computed as a
    /// prefetched score set for round `t`, tagged with the current
    /// model epoch. At most one stash is held; a new stash replaces the
    /// old one. Stash buffers are reused across rounds, so steady-state
    /// pipelining allocates nothing once warm.
    pub fn stash_prefetch(&mut self, t: u64) {
        let slot = &mut self.prefetch;
        slot.scores.clear();
        slot.scores.extend_from_slice(&self.scores);
        slot.widths.clear();
        slot.widths.extend_from_slice(&self.widths);
        slot.t = t;
        slot.epoch = self.model_epoch;
        slot.valid = true;
    }

    /// Consumes the stash for round `t` if one is held **and** still
    /// valid (same round, same model epoch): the stashed scores/widths
    /// are swapped into the live buffers and `true` is returned — the
    /// caller skips `score_into`. A stale stash is dropped (counted as
    /// a recompute) and `false` is returned — the caller must score
    /// from scratch. With no stash held this is a cheap no-op returning
    /// `false` and touches no counter.
    pub fn take_prefetch(&mut self, t: u64) -> bool {
        let slot = &mut self.prefetch;
        if !slot.valid {
            return false;
        }
        slot.valid = false;
        if slot.t == t && slot.epoch == self.model_epoch {
            std::mem::swap(&mut self.scores, &mut slot.scores);
            std::mem::swap(&mut self.widths, &mut slot.widths);
            self.prefetch_stats.hits += 1;
            true
        } else {
            self.prefetch_stats.recomputes += 1;
            false
        }
    }

    /// Whether a (possibly stale) prefetched score set is currently
    /// stashed. Diagnostic — [`ScoreWorkspace::take_prefetch`] is the
    /// consuming check.
    pub fn has_prefetch(&self) -> bool {
        self.prefetch.valid
    }

    /// Drops the stash without counting anything. Callers must do this
    /// when the *inputs* a stash was computed from are withdrawn (e.g.
    /// a buffered serve proposal dies with its connection and the round
    /// may later be re-proposed with different contexts) — the (round,
    /// epoch) tag alone cannot see a context change.
    pub fn clear_prefetch(&mut self) {
        self.prefetch.valid = false;
    }

    /// Cumulative prefetch hit/recompute counters since construction.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetch_stats
    }

    /// Cumulative model-tier counters mirrored from a backing estimator
    /// store — all-zero unless the owning policy publishes them via
    /// [`ScoreWorkspace::set_model_tier_stats`].
    pub fn model_tier_stats(&self) -> ModelTierStats {
        self.tier_stats
    }

    /// Publishes the owning policy's current model-tier counters.
    /// Counters are cumulative; policies overwrite (not add) on every
    /// observe so the workspace always reflects the store's totals.
    pub fn set_model_tier_stats(&mut self, stats: ModelTierStats) {
        self.tier_stats = stats;
    }

    /// Runs the installed arrangement engine over the workspace's
    /// scores into a caller-owned arrangement, reusing the workspace's
    /// [`OracleWorkspace`] buffers — see the *Oracle dispatch* section
    /// of the type docs for the precedence order. With no oracle or
    /// arranger installed this is the allocation-free
    /// [`crate::GreedyOracle`] path (pooled when a multi-thread
    /// [`ScorePool`] is installed — bit-identical arrangements either
    /// way).
    pub fn arrange_into(&mut self, view: &SelectionView<'_>, out: &mut Arrangement) {
        let ScoreWorkspace {
            scores,
            oracle_ws,
            oracle,
            arranger,
            ..
        } = self;
        if let Some(arranger) = arranger {
            arranger.arrange(scores, view, oracle_ws, out);
            return;
        }
        if let Some(oracle) = oracle {
            oracle.arrange_into(
                scores,
                view.conflicts,
                view.remaining,
                view.user_capacity,
                oracle_ws,
                out,
            );
            return;
        }
        crate::GreedyOracle.arrange_into(
            scores,
            view.conflicts,
            view.remaining,
            view.user_capacity,
            oracle_ws,
            out,
        );
    }

    /// Approximate bytes held by the workspace buffers (for
    /// [`crate::Policy::state_bytes`] accounting).
    pub fn state_bytes(&self) -> usize {
        (self.scores.len()
            + self.widths.len()
            + self.prefetch.scores.len()
            + self.prefetch.widths.len())
            * std::mem::size_of::<f64>()
            + self.oracle_ws.state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GreedyOracle, TabuOracle};
    use fasea_core::{ConflictGraph, ContextMatrix};

    #[test]
    fn buffers_resize_and_persist() {
        let mut ws = ScoreWorkspace::new();
        assert!(ws.last_scores().is_none());
        ws.scores_mut(4).copy_from_slice(&[0.1, 0.9, 0.5, 0.7]);
        ws.mark_scored();
        assert_eq!(ws.last_scores().unwrap().len(), 4);
        let (s, w) = ws.scores_and_widths_mut(4);
        assert_eq!(s.len(), 4);
        assert_eq!(w.len(), 4);
        assert!(ws.state_bytes() >= 64);
    }

    #[test]
    fn arrange_into_matches_oracle_greedy() {
        let g = ConflictGraph::from_pairs(4, &[(0, 1)]);
        let contexts = ContextMatrix::zeros(4, 1);
        let remaining = [1u32; 4];
        let view = SelectionView {
            t: 0,
            user_capacity: 2,
            contexts: &contexts,
            conflicts: &g,
            remaining: &remaining,
        };
        let scores = [1.10, 0.49, 0.82, 2.00];
        let mut ws = ScoreWorkspace::new();
        ws.scores_mut(4).copy_from_slice(&scores);
        let mut out = Arrangement::empty();
        ws.arrange_into(&view, &mut out);
        let reference = crate::oracle::greedy(&scores, &g, &remaining, 2);
        assert_eq!(out, reference);
        // Reuse: a second round through the same buffers agrees too.
        ws.arrange_into(&view, &mut out);
        assert_eq!(out, reference);
        // An explicitly installed GreedyOracle is bit-identical to the
        // built-in default path.
        ws.set_oracle(Some(Arc::new(GreedyOracle)));
        ws.arrange_into(&view, &mut out);
        assert_eq!(out, reference);
    }

    #[test]
    fn installed_oracle_owns_the_arrangement_step() {
        use fasea_core::EventId;
        // The star trap: greedy keeps the centre, tabu escapes to the
        // leaves — observable only if the installed oracle really runs.
        let g = ConflictGraph::from_pairs(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let contexts = ContextMatrix::zeros(5, 1);
        let remaining = [1u32; 5];
        let view = SelectionView {
            t: 0,
            user_capacity: 4,
            contexts: &contexts,
            conflicts: &g,
            remaining: &remaining,
        };
        let mut ws = ScoreWorkspace::new();
        ws.scores_mut(5)
            .copy_from_slice(&[0.51, 0.5, 0.5, 0.5, 0.5]);
        let mut out = Arrangement::empty();
        ws.arrange_into(&view, &mut out);
        assert_eq!(out.events(), &[EventId(0)]);
        ws.set_oracle(Some(Arc::new(TabuOracle::default())));
        assert!(ws.oracle().is_some());
        ws.arrange_into(&view, &mut out);
        assert_eq!(out.len(), 4, "tabu oracle was not dispatched");
        // Uninstalling restores the greedy default.
        ws.set_oracle(None);
        ws.arrange_into(&view, &mut out);
        assert_eq!(out.events(), &[EventId(0)]);
    }

    #[test]
    fn installed_arranger_owns_the_arrangement_step() {
        use fasea_core::EventId;

        #[derive(Debug)]
        struct Fixed;
        impl Arranger for Fixed {
            fn arrange(
                &self,
                scores: &[f64],
                _view: &SelectionView<'_>,
                _ws: &mut OracleWorkspace,
                out: &mut Arrangement,
            ) {
                assert_eq!(scores.len(), 4);
                out.clear();
                out.push(EventId(3));
            }
        }

        let g = ConflictGraph::new(4);
        let contexts = ContextMatrix::zeros(4, 1);
        let remaining = [1u32; 4];
        let view = SelectionView {
            t: 0,
            user_capacity: 2,
            contexts: &contexts,
            conflicts: &g,
            remaining: &remaining,
        };
        let mut ws = ScoreWorkspace::new();
        ws.scores_mut(4).copy_from_slice(&[1.0, 2.0, 3.0, 0.5]);
        ws.set_arranger(Some(Arc::new(Fixed)));
        assert!(ws.arranger().is_some());
        let mut out = Arrangement::empty();
        ws.arrange_into(&view, &mut out);
        assert_eq!(out.events(), &[EventId(3)]);
        // Uninstalling restores the local oracle.
        ws.set_arranger(None);
        ws.arrange_into(&view, &mut out);
        assert_eq!(out.events(), &[EventId(2), EventId(1)]);
    }

    #[test]
    fn prefetch_round_trip_and_epoch_invalidation() {
        let mut ws = ScoreWorkspace::new();
        // No stash held: take is a no-op and counts nothing.
        assert!(!ws.take_prefetch(7));
        assert_eq!(ws.prefetch_stats(), PrefetchStats::default());

        ws.scores_mut(3).copy_from_slice(&[0.1, 0.2, 0.3]);
        ws.stash_prefetch(7);
        assert!(ws.has_prefetch());
        // Scribble over the live buffer: the stash must restore it.
        ws.scores_mut(3).copy_from_slice(&[9.0, 9.0, 9.0]);
        assert!(ws.take_prefetch(7));
        assert_eq!(ws.scores(), &[0.1, 0.2, 0.3]);
        assert!(!ws.has_prefetch());
        assert_eq!(ws.prefetch_stats().hits, 1);

        // Round mismatch drops the stash and counts a recompute.
        ws.stash_prefetch(8);
        assert!(!ws.take_prefetch(9));
        assert_eq!(ws.prefetch_stats().recomputes, 1);

        // Epoch mismatch (model touched after the stash) likewise.
        ws.stash_prefetch(10);
        let before = ws.model_epoch();
        ws.bump_model_epoch();
        assert_eq!(ws.model_epoch(), before + 1);
        assert!(!ws.take_prefetch(10));
        assert_eq!(
            ws.prefetch_stats(),
            PrefetchStats {
                hits: 1,
                recomputes: 2
            }
        );

        // A fresh stash at the new epoch hits again.
        ws.stash_prefetch(11);
        assert!(ws.take_prefetch(11));
        assert_eq!(ws.prefetch_stats().hits, 2);
    }

    #[test]
    fn with_capacity_preallocates() {
        let mut ws = ScoreWorkspace::with_capacity(128);
        let s = ws.scores_mut(128);
        assert_eq!(s.len(), 128);
    }
}

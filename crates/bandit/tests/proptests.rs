//! Property-based tests for fasea-bandit: Oracle-Greedy feasibility and
//! the Theorem 1 approximation guarantee, estimator consistency, and
//! policy feasibility under arbitrary instances.

use fasea_bandit::{
    oracle_exhaustive, positive_score_sum, EpsilonGreedy, Exploit, GreedyOracle, LinUcb, Oracle,
    OracleOptions, OracleWorkspace, Policy, RandomPolicy, RidgeEstimator, SelectionView,
    TabuFitness, ThompsonSampling,
};
use fasea_core::{
    validate_arrangement, Arrangement, ConflictGraph, ContextMatrix, EventId, Feedback,
};
use proptest::prelude::*;

/// Oracle-Greedy through the public trait — the sole arrangement entry
/// point since the free functions were deprecated.
fn oracle_greedy(scores: &[f64], g: &ConflictGraph, caps: &[u32], cu: u32) -> Arrangement {
    let mut ws = OracleWorkspace::new();
    let mut out = Arrangement::empty();
    GreedyOracle.arrange_into(scores, g, caps, cu, &mut ws, &mut out);
    out
}

/// Strategy: a small FASEA instance (n, conflict pairs, scores, capacities, c_u).
#[allow(clippy::type_complexity)]
fn instance_strategy(
) -> impl Strategy<Value = (usize, Vec<(usize, usize)>, Vec<f64>, Vec<u32>, u32)> {
    (2usize..12).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 0..20)
                .prop_map(move |raw| raw.into_iter().filter(|&(a, b)| a != b).collect::<Vec<_>>()),
            proptest::collection::vec(-1.0f64..1.0, n..=n),
            proptest::collection::vec(0u32..4, n..=n),
            0u32..6,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Oracle-Greedy always returns a feasible arrangement.
    #[test]
    fn oracle_greedy_feasible((n, pairs, scores, caps, cu) in instance_strategy()) {
        let g = ConflictGraph::from_pairs(n, &pairs);
        let a = oracle_greedy(&scores, &g, &caps, cu);
        prop_assert!(validate_arrangement(&a, &g, &caps, cu).is_ok());
    }

    /// Theorem 1: greedy achieves at least 1/c_u of the exhaustive optimum
    /// on positive-score mass.
    #[test]
    fn oracle_greedy_approximation((n, pairs, scores, caps, cu) in instance_strategy()) {
        prop_assume!(cu >= 1);
        let g = ConflictGraph::from_pairs(n, &pairs);
        let greedy = oracle_greedy(&scores, &g, &caps, cu);
        let best = oracle_exhaustive(&scores, &g, &caps, cu);
        let gs = positive_score_sum(&greedy, &scores);
        let bs = positive_score_sum(&best, &scores);
        prop_assert!(
            gs + 1e-12 >= bs / cu as f64,
            "Theorem 1 violated: greedy {gs} < optimal {bs} / c_u {cu}"
        );
        // And exhaustive is never worse than greedy.
        prop_assert!(bs + 1e-12 >= gs);
    }

    /// Oracle-Greedy is monotone in user capacity: a larger c_u never
    /// yields fewer arranged events.
    #[test]
    fn oracle_greedy_monotone_in_cu((n, pairs, scores, caps, cu) in instance_strategy()) {
        let g = ConflictGraph::from_pairs(n, &pairs);
        let small = oracle_greedy(&scores, &g, &caps, cu);
        let large = oracle_greedy(&scores, &g, &caps, cu + 1);
        prop_assert!(large.len() >= small.len());
        // The smaller arrangement is a prefix of the larger one.
        prop_assert_eq!(&large.events()[..small.len()], small.events());
    }

    /// The ridge estimator recovers θ from noiseless observations to
    /// within the regularisation bias.
    #[test]
    fn estimator_recovers_theta(
        theta in proptest::collection::vec(-1.0f64..1.0, 1..5),
        seed in 0u64..500
    ) {
        let d = theta.len();
        let mut e = RidgeEstimator::new(d, 0.01);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for _ in 0..400 {
            let x: Vec<f64> = (0..d).map(|_| {
                state ^= state << 13; state ^= state >> 7; state ^= state << 17;
                (state as f64 / u64::MAX as f64) * 2.0 - 1.0
            }).collect();
            let r: f64 = x.iter().zip(&theta).map(|(a, b)| a * b).sum();
            e.observe(&x, r).unwrap();
        }
        let hat = e.theta_hat();
        for i in 0..d {
            prop_assert!((hat[i] - theta[i]).abs() < 0.05, "dim {i}: {} vs {}", hat[i], theta[i]);
        }
    }

    /// Every policy's selection is feasible on arbitrary instances.
    #[test]
    fn all_policies_feasible((n, pairs, _scores, caps, cu) in instance_strategy(), seed in 0u64..100) {
        let d = 3usize;
        let g = ConflictGraph::from_pairs(n, &pairs);
        let ctx = ContextMatrix::from_fn(n, d, |v, j| {
            ((v * 7 + j * 3 + seed as usize) % 13) as f64 / 13.0 - 0.4
        });
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(LinUcb::new(d, 1.0, 2.0)),
            Box::new(ThompsonSampling::new(d, 1.0, 0.1, seed)),
            Box::new(EpsilonGreedy::new(d, 1.0, 0.3, seed)),
            Box::new(Exploit::new(d, 1.0)),
            Box::new(RandomPolicy::new(seed)),
        ];
        for p in policies.iter_mut() {
            let view = SelectionView {
                t: seed,
                user_capacity: cu,
                contexts: &ctx,
                conflicts: &g,
                remaining: &caps,
            };
            let a = p.select(&view);
            prop_assert!(
                validate_arrangement(&a, &g, &caps, cu).is_ok(),
                "{} produced infeasible arrangement", p.name()
            );
            // Scores are exposed for all events after selection.
            prop_assert_eq!(p.last_scores().map(|s| s.len()), Some(n));
            // Observe round-trips without panicking.
            let fb = Feedback::new(vec![false; a.len()]);
            p.observe(seed, &ctx, &a, &fb);
        }
    }

    /// Oracle-Greedy never arranges a full or conflicting event even with
    /// adversarial score ties.
    #[test]
    fn oracle_greedy_tie_handling(n in 2usize..10, cu in 1u32..5) {
        let g = ConflictGraph::complete(n);
        let scores = vec![0.5; n]; // all tied
        let caps = vec![1u32; n];
        let a = oracle_greedy(&scores, &g, &caps, cu);
        prop_assert_eq!(a.len(), 1); // complete graph: single event max
        prop_assert_eq!(a.events()[0], EventId(0)); // deterministic tie-break
    }

    /// Tabu search always returns a feasible arrangement, under either
    /// fitness function, and is deterministic across repeated runs.
    #[test]
    fn tabu_oracle_feasible_and_deterministic(
        (n, pairs, scores, caps, cu) in instance_strategy(),
        balanced in any::<bool>(),
    ) {
        let g = ConflictGraph::from_pairs(n, &pairs);
        let fitness = if balanced { TabuFitness::BalancedFill } else { TabuFitness::MaxAttendance };
        let oracle = OracleOptions::tabu().with_tabu_fitness(fitness).build();
        let mut ws = OracleWorkspace::new();
        let mut a = Arrangement::empty();
        oracle.arrange_into(&scores, &g, &caps, cu, &mut ws, &mut a);
        prop_assert!(validate_arrangement(&a, &g, &caps, cu).is_ok());
        // Same inputs, fresh workspace: identical output (no hidden RNG).
        let mut ws2 = OracleWorkspace::new();
        let mut b = Arrangement::empty();
        oracle.arrange_into(&scores, &g, &caps, cu, &mut ws2, &mut b);
        prop_assert_eq!(a.events(), b.events());
    }

    /// Under MaxAttendance fitness, tabu never scores below its greedy
    /// seed on positive-score mass.
    #[test]
    fn tabu_oracle_never_below_greedy_seed((n, pairs, scores, caps, cu) in instance_strategy()) {
        let g = ConflictGraph::from_pairs(n, &pairs);
        let greedy = oracle_greedy(&scores, &g, &caps, cu);
        let tabu = OracleOptions::tabu().build();
        let mut ws = OracleWorkspace::new();
        let mut a = Arrangement::empty();
        tabu.arrange_into(&scores, &g, &caps, cu, &mut ws, &mut a);
        prop_assert!(
            positive_score_sum(&a, &scores) + 1e-12 >= positive_score_sum(&greedy, &scores),
            "tabu lost positive-score mass relative to its greedy seed"
        );
    }

    /// Exact-parts round trip: exporting an estimator's raw state and
    /// rebuilding it with `from_exact_parts` preserves θ̂, confidence
    /// widths, and both counters to the last bit — the residency
    /// contract of the personalized model store.
    #[test]
    fn estimator_exact_parts_round_trip_is_bit_equal(
        dim in 1usize..9,
        rounds in 1usize..40,
        raw in proptest::collection::vec(-1.0f64..1.0, 400),
        stale_read in any::<bool>(),
    ) {
        let mut original = RidgeEstimator::new(dim, 0.5);
        let mut at = 0usize;
        let mut next = |n: usize| {
            let s = &raw[at % (raw.len() - n)..];
            at += n;
            s[..n].to_vec()
        };
        for k in 0..rounds {
            let x = next(dim);
            original.observe(&x, (k % 2) as f64).unwrap();
            if k % 3 == 0 {
                let _ = original.theta_hat(); // interleave reads: counter grows
            }
        }
        if stale_read {
            let _ = original.theta_hat(); // leave θ̂ fresh in half the cases
        }

        let restored = RidgeEstimator::from_exact_parts(
            original.lambda(),
            original.gram_matrix().clone(),
            original.y_inv().clone(),
            original.b_vector().clone(),
            original.theta_hat_cached().clone(),
            original.is_theta_stale(),
            original.observations(),
            original.theta_recomputes(),
        )
        .unwrap();

        prop_assert_eq!(restored.is_theta_stale(), original.is_theta_stale());
        prop_assert_eq!(restored.observations(), original.observations());
        prop_assert_eq!(restored.theta_recomputes(), original.theta_recomputes());
        prop_assert_eq!(
            restored.theta_hat_cached().as_slice(),
            original.theta_hat_cached().as_slice(),
            "cached θ̂ bits drifted"
        );
        // Widths go through the restored (verbatim) inverse: bit-equal.
        let probe: Vec<f64> = (0..3 * dim).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut w_orig = vec![0.0; 3];
        let mut w_rest = vec![0.0; 3];
        original.widths_into(&probe, &mut w_orig);
        restored.widths_into(&probe, &mut w_rest);
        prop_assert_eq!(&w_orig, &w_rest, "widths bits drifted");
        // Continuing to learn stays in bit-lockstep, recompute counter
        // included: restored state is indistinguishable from original.
        let mut restored = restored;
        for k in 0..5 {
            let x = next(dim);
            original.observe(&x, (k % 2) as f64).unwrap();
            restored.observe(&x, (k % 2) as f64).unwrap();
            prop_assert_eq!(original.theta_hat().as_slice(), restored.theta_hat().as_slice());
            prop_assert_eq!(original.theta_recomputes(), restored.theta_recomputes());
        }
    }

    /// `from_parts` (the Cholesky-re-deriving snapshot restore) is
    /// idempotent: a second save→restore of a restored estimator
    /// reproduces θ̂ and widths bit-for-bit, and the first restore stays
    /// within factorisation accuracy of the live original.
    #[test]
    fn estimator_from_parts_round_trip_is_stable(
        dim in 1usize..7,
        rounds in 1usize..30,
        raw in proptest::collection::vec(-1.0f64..1.0, 300),
    ) {
        let mut original = RidgeEstimator::new(dim, 1.0);
        for k in 0..rounds {
            let x: Vec<f64> = (0..dim).map(|i| raw[(k * dim + i) % raw.len()]).collect();
            original.observe(&x, (k % 2) as f64).unwrap();
        }
        let mut once = RidgeEstimator::from_parts(
            original.lambda(),
            original.gram_matrix().clone(),
            original.b_vector().clone(),
            original.observations(),
        )
        .unwrap();
        let mut twice = RidgeEstimator::from_parts(
            once.lambda(),
            once.gram_matrix().clone(),
            once.b_vector().clone(),
            once.observations(),
        )
        .unwrap();
        // Same (Y, b) bits in ⇒ same factorisation ⇒ same θ̂/width bits out.
        prop_assert_eq!(once.theta_hat().as_slice(), twice.theta_hat().as_slice());
        let probe: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.61).cos()).collect();
        prop_assert_eq!(
            once.confidence_width(&probe).to_bits(),
            twice.confidence_width(&probe).to_bits()
        );
        // And the re-derived inverse agrees with the maintained one to
        // factorisation accuracy.
        let drift = (once.point_estimate(&probe) - original.point_estimate(&probe)).abs();
        prop_assert!(drift < 1e-8, "from_parts drifted by {drift}");
    }
}

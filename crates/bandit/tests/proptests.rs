//! Property-based tests for fasea-bandit: Oracle-Greedy feasibility and
//! the Theorem 1 approximation guarantee, estimator consistency, and
//! policy feasibility under arbitrary instances.

use fasea_bandit::{
    oracle_exhaustive, oracle_greedy, positive_score_sum, EpsilonGreedy, Exploit, LinUcb, Policy,
    RandomPolicy, RidgeEstimator, SelectionView, ThompsonSampling,
};
use fasea_core::{validate_arrangement, ConflictGraph, ContextMatrix, EventId, Feedback};
use proptest::prelude::*;

/// Strategy: a small FASEA instance (n, conflict pairs, scores, capacities, c_u).
#[allow(clippy::type_complexity)]
fn instance_strategy(
) -> impl Strategy<Value = (usize, Vec<(usize, usize)>, Vec<f64>, Vec<u32>, u32)> {
    (2usize..12).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 0..20)
                .prop_map(move |raw| raw.into_iter().filter(|&(a, b)| a != b).collect::<Vec<_>>()),
            proptest::collection::vec(-1.0f64..1.0, n..=n),
            proptest::collection::vec(0u32..4, n..=n),
            0u32..6,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Oracle-Greedy always returns a feasible arrangement.
    #[test]
    fn oracle_greedy_feasible((n, pairs, scores, caps, cu) in instance_strategy()) {
        let g = ConflictGraph::from_pairs(n, &pairs);
        let a = oracle_greedy(&scores, &g, &caps, cu);
        prop_assert!(validate_arrangement(&a, &g, &caps, cu).is_ok());
    }

    /// Theorem 1: greedy achieves at least 1/c_u of the exhaustive optimum
    /// on positive-score mass.
    #[test]
    fn oracle_greedy_approximation((n, pairs, scores, caps, cu) in instance_strategy()) {
        prop_assume!(cu >= 1);
        let g = ConflictGraph::from_pairs(n, &pairs);
        let greedy = oracle_greedy(&scores, &g, &caps, cu);
        let best = oracle_exhaustive(&scores, &g, &caps, cu);
        let gs = positive_score_sum(&greedy, &scores);
        let bs = positive_score_sum(&best, &scores);
        prop_assert!(
            gs + 1e-12 >= bs / cu as f64,
            "Theorem 1 violated: greedy {gs} < optimal {bs} / c_u {cu}"
        );
        // And exhaustive is never worse than greedy.
        prop_assert!(bs + 1e-12 >= gs);
    }

    /// Oracle-Greedy is monotone in user capacity: a larger c_u never
    /// yields fewer arranged events.
    #[test]
    fn oracle_greedy_monotone_in_cu((n, pairs, scores, caps, cu) in instance_strategy()) {
        let g = ConflictGraph::from_pairs(n, &pairs);
        let small = oracle_greedy(&scores, &g, &caps, cu);
        let large = oracle_greedy(&scores, &g, &caps, cu + 1);
        prop_assert!(large.len() >= small.len());
        // The smaller arrangement is a prefix of the larger one.
        prop_assert_eq!(&large.events()[..small.len()], small.events());
    }

    /// The ridge estimator recovers θ from noiseless observations to
    /// within the regularisation bias.
    #[test]
    fn estimator_recovers_theta(
        theta in proptest::collection::vec(-1.0f64..1.0, 1..5),
        seed in 0u64..500
    ) {
        let d = theta.len();
        let mut e = RidgeEstimator::new(d, 0.01);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for _ in 0..400 {
            let x: Vec<f64> = (0..d).map(|_| {
                state ^= state << 13; state ^= state >> 7; state ^= state << 17;
                (state as f64 / u64::MAX as f64) * 2.0 - 1.0
            }).collect();
            let r: f64 = x.iter().zip(&theta).map(|(a, b)| a * b).sum();
            e.observe(&x, r).unwrap();
        }
        let hat = e.theta_hat();
        for i in 0..d {
            prop_assert!((hat[i] - theta[i]).abs() < 0.05, "dim {i}: {} vs {}", hat[i], theta[i]);
        }
    }

    /// Every policy's selection is feasible on arbitrary instances.
    #[test]
    fn all_policies_feasible((n, pairs, _scores, caps, cu) in instance_strategy(), seed in 0u64..100) {
        let d = 3usize;
        let g = ConflictGraph::from_pairs(n, &pairs);
        let ctx = ContextMatrix::from_fn(n, d, |v, j| {
            ((v * 7 + j * 3 + seed as usize) % 13) as f64 / 13.0 - 0.4
        });
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(LinUcb::new(d, 1.0, 2.0)),
            Box::new(ThompsonSampling::new(d, 1.0, 0.1, seed)),
            Box::new(EpsilonGreedy::new(d, 1.0, 0.3, seed)),
            Box::new(Exploit::new(d, 1.0)),
            Box::new(RandomPolicy::new(seed)),
        ];
        for p in policies.iter_mut() {
            let view = SelectionView {
                t: seed,
                user_capacity: cu,
                contexts: &ctx,
                conflicts: &g,
                remaining: &caps,
            };
            let a = p.select(&view);
            prop_assert!(
                validate_arrangement(&a, &g, &caps, cu).is_ok(),
                "{} produced infeasible arrangement", p.name()
            );
            // Scores are exposed for all events after selection.
            prop_assert_eq!(p.last_scores().map(|s| s.len()), Some(n));
            // Observe round-trips without panicking.
            let fb = Feedback::new(vec![false; a.len()]);
            p.observe(seed, &ctx, &a, &fb);
        }
    }

    /// Oracle-Greedy never arranges a full or conflicting event even with
    /// adversarial score ties.
    #[test]
    fn oracle_greedy_tie_handling(n in 2usize..10, cu in 1u32..5) {
        let g = ConflictGraph::complete(n);
        let scores = vec![0.5; n]; // all tied
        let caps = vec![1u32; n];
        let a = oracle_greedy(&scores, &g, &caps, cu);
        prop_assert_eq!(a.len(), 1); // complete graph: single event max
        prop_assert_eq!(a.events()[0], EventId(0)); // deterministic tie-break
    }
}

//! The batched scoring path must agree with the legacy scalar path.
//!
//! Before the workspace redesign, policies scored one event at a time:
//! clone `θ̂`, then per event `xᵀθ̂ + α·√(xᵀY⁻¹x)` through scalar calls.
//! The batched kernels were written to preserve the exact per-row
//! summation order, so the agreement here is checked to 1e-12 — and in
//! practice is bit-exact, which the determinism/recovery machinery
//! relies on.

use fasea_bandit::{Exploit, LinUcb, Policy, RidgeEstimator, SelectionView};
use fasea_core::{Arrangement, ConflictGraph, ContextMatrix, EventId, Feedback};

/// Deterministic xorshift for reproducible pseudo-random cases without
/// dragging a stats dependency into the test.
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn random_contexts(rng: &mut XorShift, n: usize, d: usize) -> ContextMatrix {
    let data: Vec<f64> = (0..n * d).map(|_| rng.next_f64() - 0.3).collect();
    ContextMatrix::from_rows(n, d, data)
}

/// The pre-redesign scalar scoring of UCB, reimplemented against the
/// public estimator API: per-event point estimate plus α times the
/// per-event confidence width.
fn legacy_ucb_scores(estimator: &RidgeEstimator, alpha: f64, contexts: &ContextMatrix) -> Vec<f64> {
    let mut est = estimator.clone();
    (0..contexts.num_events())
        .map(|v| {
            let x = contexts.context(EventId(v));
            est.point_estimate(x) + alpha * est.confidence_width(x)
        })
        .collect()
}

fn legacy_exploit_scores(estimator: &RidgeEstimator, contexts: &ContextMatrix) -> Vec<f64> {
    let mut est = estimator.clone();
    (0..contexts.num_events())
        .map(|v| est.point_estimate(contexts.context(EventId(v))))
        .collect()
}

#[test]
fn batched_ucb_matches_legacy_scalar_path_across_random_cases() {
    let mut rng = XorShift(0x5EED_CAFE);
    for case in 0..40u64 {
        let n = 5 + (case as usize % 4) * 17; // 5..56 events
        let d = 2 + (case as usize % 5); // 2..6 dims
        let mut ucb = LinUcb::new(d, 1.0, 2.0);
        let conflicts = ConflictGraph::new(n);
        let remaining = vec![100u32; n];

        // Random learning history so Y⁻¹ and θ̂ are non-trivial.
        let mut out = Arrangement::empty();
        for t in 0..12 {
            let ctx = random_contexts(&mut rng, n, d);
            let view = SelectionView {
                t,
                user_capacity: 3,
                contexts: &ctx,
                conflicts: &conflicts,
                remaining: &remaining,
            };
            ucb.select_into(&view, &mut out);
            let fb = Feedback::new(
                (0..out.len())
                    .map(|i| (t as usize + i).is_multiple_of(2))
                    .collect(),
            );
            ucb.observe(t, &ctx, &out, &fb);
        }

        let ctx = random_contexts(&mut rng, n, d);
        let view = SelectionView {
            t: 12,
            user_capacity: 3,
            contexts: &ctx,
            conflicts: &conflicts,
            remaining: &remaining,
        };
        let legacy = legacy_ucb_scores(ucb.estimator(), ucb.alpha(), &ctx);
        let _ = ucb.select(&view);
        let batched = ucb.last_scores().expect("scores after select");
        assert_eq!(batched.len(), legacy.len());
        for (v, (b, l)) in batched.iter().zip(&legacy).enumerate() {
            assert!(
                (b - l).abs() <= 1e-12,
                "case {case}, event {v}: batched {b} vs legacy {l}"
            );
        }
    }
}

#[test]
fn batched_exploit_matches_legacy_scalar_path() {
    let mut rng = XorShift(0xD15EA5E);
    for case in 0..20u64 {
        let n = 10 + (case as usize % 3) * 25;
        let d = 3 + (case as usize % 4);
        let mut p = Exploit::new(d, 0.5);
        let conflicts = ConflictGraph::new(n);
        let remaining = vec![50u32; n];

        let mut out = Arrangement::empty();
        for t in 0..10 {
            let ctx = random_contexts(&mut rng, n, d);
            let view = SelectionView {
                t,
                user_capacity: 2,
                contexts: &ctx,
                conflicts: &conflicts,
                remaining: &remaining,
            };
            p.select_into(&view, &mut out);
            let fb = Feedback::new((0..out.len()).map(|i| i % 2 == 0).collect());
            p.observe(t, &ctx, &out, &fb);
        }

        let ctx = random_contexts(&mut rng, n, d);
        let view = SelectionView {
            t: 10,
            user_capacity: 2,
            contexts: &ctx,
            conflicts: &conflicts,
            remaining: &remaining,
        };
        let legacy = legacy_exploit_scores(p.estimator(), &ctx);
        let _ = p.select(&view);
        let batched = p.last_scores().expect("scores after select");
        for (v, (b, l)) in batched.iter().zip(&legacy).enumerate() {
            assert!(
                (b - l).abs() <= 1e-12,
                "case {case}, event {v}: batched {b} vs legacy {l}"
            );
        }
    }
}

#[test]
fn batched_ucb_width_pass_is_bit_exact_with_scalar_widths() {
    // Stronger than the 1e-12 contract: the batched width kernel keeps
    // the per-row summation order, so it is bit-identical to the scalar
    // `confidence_width` calls.
    let mut rng = XorShift(0xBEEF);
    let (n, d) = (33, 5);
    let mut est = RidgeEstimator::new(d, 1.0);
    for _ in 0..50 {
        let x: Vec<f64> = (0..d).map(|_| rng.next_f64()).collect();
        est.observe(&x, rng.next_f64().round()).unwrap();
    }
    let ctx = random_contexts(&mut rng, n, d);
    let mut batched = vec![0.0; n];
    est.widths_into(ctx.as_slice(), &mut batched);
    for (v, b) in batched.iter().enumerate() {
        let scalar = est.confidence_width(ctx.context(EventId(v)));
        assert_eq!(
            b.to_bits(),
            scalar.to_bits(),
            "event {v}: batched width differs in bits"
        );
    }
}

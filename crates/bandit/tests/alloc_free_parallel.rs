//! The zero-allocation bar extended to the **parallel** scoring path.
//!
//! Unlike `tests/alloc_free.rs`, whose thread-local counters cannot see
//! pool workers, this binary counts allocations **globally** (atomics),
//! so a single worker-side allocation — in the kernels, in the pool's
//! dispatch, in the sharded oracle — fails the test. That only works
//! because this file is its own test process with exactly one `#[test]`
//! (libtest would otherwise run tests on sibling threads and pollute
//! the counters), covering all three deterministic-score policies
//! sequentially.
//!
//! The claim under test: once the workspace, shard scratch, and pool
//! are warm, a steady-state `select_into` + `observe` round through an
//! installed [`ScorePool`] allocates zero bytes on *any* thread —
//! dispatch is condvar + atomics (futex-backed on Linux), chunks run
//! the existing allocation-free kernels into pre-sized shard slices,
//! and the oracle merge reuses workspace buffers.

use fasea_bandit::{EpsilonGreedy, Exploit, LinUcb, Policy, ScorePool, SelectionView};
use fasea_core::{Arrangement, ConflictGraph, ContextMatrix, Feedback};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static BYTES: AtomicU64 = AtomicU64::new(0);
static CALLS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counters are
// static atomics, so the accounting path itself never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Bytes and calls allocated **process-wide** while `f` runs.
fn allocations_during(f: impl FnOnce()) -> (u64, u64) {
    let b0 = BYTES.load(Ordering::SeqCst);
    let c0 = CALLS.load(Ordering::SeqCst);
    f();
    (
        BYTES.load(Ordering::SeqCst) - b0,
        CALLS.load(Ordering::SeqCst) - c0,
    )
}

// Larger than the serial fixture so the instance spans two pool chunks
// (ragged tail) and the shard scratch is meaningfully exercised.
const NUM_EVENTS: usize = fasea_bandit::SCORE_CHUNK + 200;
const DIM: usize = 8;
const POOL_THREADS: usize = 4;

fn fixture() -> (ContextMatrix, ConflictGraph, Vec<u32>) {
    let ctx = ContextMatrix::from_fn(NUM_EVENTS, DIM, |v, j| {
        (((v * 7 + j * 3 + 1) % 11) as f64) / 11.0
    });
    let conflicts =
        ConflictGraph::from_pairs(NUM_EVENTS, &[(0, 1), (2, 3), (10, 20), (30, 40), (41, 42)]);
    let remaining = vec![100_000u32; NUM_EVENTS];
    (ctx, conflicts, remaining)
}

fn assert_parallel_steady_state_allocates_zero(mut policy: Box<dyn Policy>, label: &str) {
    let (ctx, conflicts, remaining) = fixture();
    let cu = 4u32;
    let mut out = Arrangement::empty();
    let pool = ScorePool::shared(POOL_THREADS).expect("multi-thread pool");
    // Thread startup allocates (libstd records the thread name for the
    // stack-overflow handler); sync with it so only steady-state rounds
    // are measured.
    pool.wait_ready();
    policy.workspace_mut().set_score_pool(Some(pool));

    let view_at = |t: u64| SelectionView {
        t,
        user_capacity: cu,
        contexts: &ctx,
        conflicts: &conflicts,
        remaining: &remaining,
    };

    // Warm-up: workspace + shard scratch grow, workers finish starting,
    // the cached θ̂ refresh path runs at least once.
    for t in 0..16 {
        let view = view_at(t);
        policy.select_into(&view, &mut out);
        let fb = Feedback::new(vec![t % 2 == 0; out.len()]);
        policy.observe(t, &ctx, &out, &fb);
    }

    let feedbacks: Vec<Feedback> = (0..64)
        .map(|t| Feedback::new((0..cu as usize).map(|i| (t + i) % 3 == 0).collect()))
        .collect();

    let rounds = 64u64;
    let (bytes, calls) = allocations_during(|| {
        for t in 16..16 + rounds {
            let view = view_at(t);
            policy.select_into(&view, &mut out);
            assert_eq!(out.len(), cu as usize, "{label}: capacity not filled");
            let fb = &feedbacks[(t - 16) as usize];
            policy.observe(t, &ctx, &out, fb);
        }
    });
    assert_eq!(
        (bytes, calls),
        (0, 0),
        "{label}: steady-state parallel rounds allocated {bytes} bytes in {calls} calls"
    );
}

#[test]
fn parallel_steady_state_rounds_are_allocation_free() {
    // Harness guard first: a Vec allocation must be visible globally,
    // or the zero assertions below are vacuous.
    let (bytes, calls) = allocations_during(|| {
        let v: Vec<u64> = Vec::with_capacity(32);
        std::hint::black_box(&v);
    });
    assert!(bytes >= 32 * 8, "allocation went uncounted: {bytes}");
    assert!(calls >= 1);

    assert_parallel_steady_state_allocates_zero(Box::new(LinUcb::new(DIM, 1.0, 2.0)), "UCB");
    assert_parallel_steady_state_allocates_zero(Box::new(Exploit::new(DIM, 1.0)), "Exploit");
    // ε = 0.5 exercises both branches inside the measured region with
    // overwhelming probability over 64 rounds.
    assert_parallel_steady_state_allocates_zero(
        Box::new(EpsilonGreedy::new(DIM, 1.0, 0.5, 7)),
        "eGreedy",
    );
}

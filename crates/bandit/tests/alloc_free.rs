//! The zero-allocation bar for the batched scoring hot path.
//!
//! A counting `GlobalAlloc` wraps the system allocator and tallies
//! per-thread allocation bytes/calls. After a warm-up round (which may
//! grow workspace buffers), every steady-state `select_into` + `observe`
//! round of the deterministic-score learning policies — UCB, Exploit,
//! eGreedy — must allocate **zero** bytes.
//!
//! Caveats encoded here:
//! * rounds stay far below the estimator's Cholesky refresh interval
//!   (4096 observations), which legitimately allocates;
//! * `Feedback` values are pre-built outside the measured region — the
//!   bar is on the policy, not on the harness's own bookkeeping;
//! * TS is exempt: its posterior sample factors `Y` every round.

use fasea_bandit::{EpsilonGreedy, Exploit, LinUcb, Policy, SelectionView};
use fasea_core::{Arrangement, ConflictGraph, ContextMatrix, Feedback};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static BYTES: Cell<u64> = const { Cell::new(0) };
    static CALLS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counters are
// const-initialised thread-locals, so no allocation happens on the
// accounting path itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        CALLS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        CALLS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Growth counts as fresh allocation of the new block.
        BYTES.with(|c| c.set(c.get() + new_size as u64));
        CALLS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Bytes and calls allocated on this thread while `f` runs.
fn allocations_during(f: impl FnOnce()) -> (u64, u64) {
    let b0 = BYTES.with(|c| c.get());
    let c0 = CALLS.with(|c| c.get());
    f();
    (BYTES.with(|c| c.get()) - b0, CALLS.with(|c| c.get()) - c0)
}

const NUM_EVENTS: usize = 60;
const DIM: usize = 8;

fn fixture() -> (ContextMatrix, ConflictGraph, Vec<u32>) {
    let ctx = ContextMatrix::from_fn(NUM_EVENTS, DIM, |v, j| {
        (((v * 7 + j * 3 + 1) % 11) as f64) / 11.0
    });
    let conflicts =
        ConflictGraph::from_pairs(NUM_EVENTS, &[(0, 1), (2, 3), (10, 20), (30, 40), (41, 42)]);
    let remaining = vec![1_000u32; NUM_EVENTS];
    (ctx, conflicts, remaining)
}

/// Warm the policy (growing its workspace and arrangement buffers),
/// then assert that `rounds` further select+observe rounds allocate
/// exactly zero bytes.
fn assert_steady_state_rounds_allocate_zero(mut policy: Box<dyn Policy>, label: &str) {
    let (ctx, conflicts, remaining) = fixture();
    let cu = 4u32;
    let mut out = Arrangement::empty();

    let view_at = |t: u64| SelectionView {
        t,
        user_capacity: cu,
        contexts: &ctx,
        conflicts: &conflicts,
        remaining: &remaining,
    };

    // Warm-up: buffers grow to their steady-state sizes here, and the
    // cached θ̂ refresh path runs at least once.
    for t in 0..16 {
        let view = view_at(t);
        policy.select_into(&view, &mut out);
        let fb = Feedback::new(vec![t % 2 == 0; out.len()]);
        policy.observe(t, &ctx, &out, &fb);
    }

    // Pre-build feedback for every measured round: the harness's own
    // Vec<bool> must not count against the policy. `cu` bounds the
    // arrangement length.
    let feedbacks: Vec<Feedback> = (0..64)
        .map(|t| Feedback::new((0..cu as usize).map(|i| (t + i) % 3 == 0).collect()))
        .collect();

    let rounds = 64u64;
    let (bytes, calls) = allocations_during(|| {
        for t in 16..16 + rounds {
            let view = view_at(t);
            policy.select_into(&view, &mut out);
            assert_eq!(out.len(), cu as usize, "{label}: capacity not filled");
            let fb = &feedbacks[(t - 16) as usize];
            policy.observe(t, &ctx, &out, fb);
        }
    });
    assert_eq!(
        (bytes, calls),
        (0, 0),
        "{label}: steady-state rounds allocated {bytes} bytes in {calls} calls"
    );
}

#[test]
fn ucb_steady_state_rounds_are_allocation_free() {
    assert_steady_state_rounds_allocate_zero(Box::new(LinUcb::new(DIM, 1.0, 2.0)), "UCB");
}

#[test]
fn exploit_steady_state_rounds_are_allocation_free() {
    assert_steady_state_rounds_allocate_zero(Box::new(Exploit::new(DIM, 1.0)), "Exploit");
}

#[test]
fn egreedy_steady_state_rounds_are_allocation_free() {
    // ε = 0.5 exercises both the explore and the exploit branch inside
    // the measured region with overwhelming probability over 64 rounds.
    assert_steady_state_rounds_allocate_zero(
        Box::new(EpsilonGreedy::new(DIM, 1.0, 0.5, 7)),
        "eGreedy",
    );
}

#[test]
fn counting_allocator_actually_counts() {
    // Guard against a silently broken harness: a Vec allocation must be
    // visible to the counter, or the zero assertions above are vacuous.
    let (bytes, calls) = allocations_during(|| {
        let v: Vec<u64> = Vec::with_capacity(32);
        std::hint::black_box(&v);
    });
    assert!(bytes >= 32 * 8, "allocation went uncounted: {bytes}");
    assert!(calls >= 1);
}

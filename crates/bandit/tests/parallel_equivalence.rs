//! Property test: parallel scoring is **bit-equal** to serial scoring.
//!
//! For every policy, every pool width in {1, 2, 3, 8}, and a set of
//! instance shapes chosen to hit the sharding edge cases — `|V|` not a
//! multiple of the chunk size (ragged tail chunk), `|V|` smaller than
//! the thread count, conflict-dense rankings that force the oracle's
//! retry widening, and rounds where every event is full (empty
//! arrangements) — a pooled policy and a serial twin are driven in
//! lockstep through select/observe rounds and must produce:
//!
//! * bit-identical scores (`f64::to_bits`, not approximate), and
//! * identical arrangements,
//!
//! on every round. RNG-consuming policies (TS, eGreedy, Random) are
//! constructed from the same seed on both sides; their draws stay on
//! the caller thread, so the streams must coincide exactly.

use fasea_bandit::{
    EpsilonGreedy, Exploit, LinUcb, Opt, Policy, RandomPolicy, ScorePool, StaticScorePolicy,
    ThompsonSampling, SCORE_CHUNK,
};
use fasea_core::{Arrangement, ConflictGraph, ContextMatrix, Feedback, LinearPayoffModel};
use fasea_linalg::Vector;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

struct Instance {
    label: &'static str,
    contexts: ContextMatrix,
    conflicts: ConflictGraph,
    remaining: Vec<u32>,
    rounds: u64,
}

fn instances() -> Vec<Instance> {
    let mut out = Vec::new();
    // Small: fewer events than any multi-thread pool has workers.
    out.push(Instance {
        label: "tiny",
        contexts: ContextMatrix::from_fn(3, 4, |v, j| ((v * 5 + j * 3 + 1) % 7) as f64 / 7.0),
        conflicts: ConflictGraph::from_pairs(3, &[(0, 2)]),
        remaining: vec![50; 3],
        rounds: 25,
    });
    // Medium with dense conflicts around the score top: exercises the
    // oracle's retry widening on both paths.
    let n = 90;
    let pairs: Vec<(usize, usize)> = (1..60).map(|v| (0, v)).collect();
    out.push(Instance {
        label: "conflict-dense",
        contexts: ContextMatrix::from_fn(n, 6, |v, j| ((v * 7 + j * 11 + 2) % 13) as f64 / 13.0),
        conflicts: ConflictGraph::from_pairs(n, &pairs),
        remaining: vec![8; n],
        rounds: 25,
    });
    // All events full: arrangements must be empty (and equal) while the
    // score scan still runs over every event.
    out.push(Instance {
        label: "all-full",
        contexts: ContextMatrix::from_fn(40, 5, |v, j| ((v + j) % 9) as f64 / 9.0),
        conflicts: ConflictGraph::new(40),
        remaining: vec![0; 40],
        rounds: 8,
    });
    // Large with a ragged tail chunk: |V| = SCORE_CHUNK + 137 spans two
    // chunks, the second partial and (at 137 ∤ 8 boundary-wise) ending
    // mid-lane-group.
    let n = SCORE_CHUNK + 137;
    out.push(Instance {
        label: "ragged-tail",
        contexts: ContextMatrix::from_fn(n, 6, |v, j| {
            (((v * 31 + j * 17 + 3) % 101) as f64) / 101.0
        }),
        conflicts: ConflictGraph::from_pairs(n, &[(5, 2100), (7, 8), (100, 200)]),
        remaining: (0..n).map(|v| if v % 11 == 0 { 0 } else { 30 }).collect(),
        rounds: 4,
    });
    out
}

/// Drives `serial` and `pooled` in lockstep over the instance and
/// asserts bit-equal scores and equal arrangements every round.
fn assert_lockstep_equal(
    mut serial: Box<dyn Policy>,
    mut pooled: Box<dyn Policy>,
    threads: usize,
    inst: &Instance,
) {
    pooled
        .workspace_mut()
        .set_score_pool(ScorePool::shared(threads));
    let mut a_serial = Arrangement::empty();
    let mut a_pooled = Arrangement::empty();
    for t in 0..inst.rounds {
        let view = fasea_bandit::SelectionView {
            t,
            user_capacity: 4,
            contexts: &inst.contexts,
            conflicts: &inst.conflicts,
            remaining: &inst.remaining,
        };
        serial.select_into(&view, &mut a_serial);
        pooled.select_into(&view, &mut a_pooled);
        let s = serial.last_scores().expect("serial scored");
        let p = pooled.last_scores().expect("pooled scored");
        assert_eq!(s.len(), p.len());
        for (v, (a, b)) in s.iter().zip(p).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}[{} threads] t={t}: score of event {v} diverged ({a} vs {b})",
                inst.label,
                threads,
            );
        }
        assert_eq!(
            a_serial, a_pooled,
            "{}[{} threads] t={t}: arrangements diverged",
            inst.label, threads,
        );
        let fb = Feedback::new(
            a_serial
                .iter()
                .map(|v| (t as usize + v.index()).is_multiple_of(3))
                .collect(),
        );
        serial.observe(t, &inst.contexts, &a_serial, &fb);
        pooled.observe(t, &inst.contexts, &a_pooled, &fb);
    }
}

fn policy_pairs(dim: usize, num_events: usize) -> Vec<(Box<dyn Policy>, Box<dyn Policy>)> {
    let theta = Vector::from((0..dim).map(|j| 0.3 + 0.1 * j as f64).collect::<Vec<_>>());
    let static_scores: Vec<f64> = (0..num_events)
        .map(|v| ((v * 13 + 5) % 17) as f64)
        .collect();
    vec![
        (
            Box::new(LinUcb::new(dim, 1.0, 2.0)) as Box<dyn Policy>,
            Box::new(LinUcb::new(dim, 1.0, 2.0)) as Box<dyn Policy>,
        ),
        (
            Box::new(Exploit::new(dim, 1.0)),
            Box::new(Exploit::new(dim, 1.0)),
        ),
        (
            Box::new(ThompsonSampling::new(dim, 1.0, 0.1, 42)),
            Box::new(ThompsonSampling::new(dim, 1.0, 0.1, 42)),
        ),
        // ε = 0.5: both branches run inside a 25-round window with
        // overwhelming probability.
        (
            Box::new(EpsilonGreedy::new(dim, 1.0, 0.5, 9)),
            Box::new(EpsilonGreedy::new(dim, 1.0, 0.5, 9)),
        ),
        (
            Box::new(Opt::new(LinearPayoffModel::new(theta.clone()))),
            Box::new(Opt::new(LinearPayoffModel::new(theta))),
        ),
        (
            Box::new(StaticScorePolicy::new("Online", static_scores.clone())),
            Box::new(StaticScorePolicy::new("Online", static_scores)),
        ),
        // Random never fans out (pure RNG priorities) but must tolerate
        // an installed pool unchanged.
        (
            Box::new(RandomPolicy::new(7)),
            Box::new(RandomPolicy::new(7)),
        ),
    ]
}

#[test]
fn all_policies_bit_equal_across_thread_counts() {
    for inst in &instances() {
        let dim = inst.contexts.dim();
        let n = inst.contexts.num_events();
        for &threads in &THREAD_COUNTS {
            for (serial, pooled) in policy_pairs(dim, n) {
                assert_lockstep_equal(serial, pooled, threads, inst);
            }
        }
    }
}

#[test]
fn empty_instance_with_pool_installed() {
    let mut p = Exploit::new(3, 1.0);
    p.workspace_mut().set_score_pool(ScorePool::shared(4));
    let contexts = ContextMatrix::zeros(0, 3);
    let conflicts = ConflictGraph::new(0);
    let view = fasea_bandit::SelectionView {
        t: 0,
        user_capacity: 2,
        contexts: &contexts,
        conflicts: &conflicts,
        remaining: &[],
    };
    let a = p.select(&view);
    assert!(a.is_empty());
}

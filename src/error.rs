//! The error umbrella: one enum spanning every layer's failure modes.
//!
//! Each workspace crate keeps its own precise error type — linalg
//! factorisation failures, arrangement-protocol violations, snapshot
//! decoding, durable-store I/O, service protocol breaches, client
//! transport faults — but application code driving the facade usually
//! wants a single `Result<_, FaseaError>` with `?` working across
//! layers. [`FaseaError`] is that type: a `From` impl per layer error,
//! `Display` that prefixes the layer, and `std::error::Error::source`
//! threading to the underlying error where one exists.
//!
//! ```
//! use fasea::error::FaseaError;
//!
//! fn fails() -> Result<(), FaseaError> {
//!     // A non-SPD matrix cannot be Cholesky-factored.
//!     let m = fasea::linalg::Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
//!     fasea::linalg::Cholesky::factor(&m)?; // LinalgError -> FaseaError via ?
//!     Ok(())
//! }
//! assert!(matches!(fails(), Err(FaseaError::Linalg(_))));
//! ```

use std::fmt;

/// Any error the FASEA stack can surface, by layer of origin.
///
/// Marked `#[non_exhaustive]`: new layers can add variants without a
/// breaking release, so downstream `match`es need a `_` arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum FaseaError {
    /// A numerical kernel failed (`fasea-linalg`): non-SPD Cholesky,
    /// dimension mismatch, singular Sherman–Morrison update, …
    Linalg(fasea_linalg::LinalgError),
    /// A proposed arrangement violates Definition 3 (`fasea-core`).
    Arrangement(fasea_core::ArrangementError),
    /// A policy-state snapshot would not decode or restore
    /// (`fasea-bandit`).
    Snapshot(fasea_bandit::SnapshotError),
    /// The durable store failed: I/O, corruption, foreign log
    /// (`fasea-store`).
    Store(fasea_store::StoreError),
    /// The arrangement service rejected a call or recovery diverged
    /// (`fasea-sim`).
    Service(fasea_sim::ServiceError),
    /// The blocking TCP client failed (`fasea-serve`).
    Client(fasea_serve::ClientError),
}

impl fmt::Display for FaseaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaseaError::Linalg(e) => write!(f, "linalg: {e}"),
            FaseaError::Arrangement(e) => write!(f, "arrangement: {e}"),
            FaseaError::Snapshot(e) => write!(f, "snapshot: {e}"),
            FaseaError::Store(e) => write!(f, "store: {e}"),
            FaseaError::Service(e) => write!(f, "service: {e}"),
            FaseaError::Client(e) => write!(f, "client: {e}"),
        }
    }
}

impl std::error::Error for FaseaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaseaError::Linalg(e) => Some(e),
            FaseaError::Arrangement(e) => Some(e),
            FaseaError::Snapshot(e) => Some(e),
            FaseaError::Store(e) => Some(e),
            FaseaError::Service(e) => Some(e),
            FaseaError::Client(e) => Some(e),
        }
    }
}

impl From<fasea_linalg::LinalgError> for FaseaError {
    fn from(e: fasea_linalg::LinalgError) -> Self {
        FaseaError::Linalg(e)
    }
}

impl From<fasea_core::ArrangementError> for FaseaError {
    fn from(e: fasea_core::ArrangementError) -> Self {
        FaseaError::Arrangement(e)
    }
}

impl From<fasea_bandit::SnapshotError> for FaseaError {
    fn from(e: fasea_bandit::SnapshotError) -> Self {
        FaseaError::Snapshot(e)
    }
}

impl From<fasea_store::StoreError> for FaseaError {
    fn from(e: fasea_store::StoreError) -> Self {
        FaseaError::Store(e)
    }
}

impl From<fasea_sim::ServiceError> for FaseaError {
    fn from(e: fasea_sim::ServiceError) -> Self {
        FaseaError::Service(e)
    }
}

impl From<fasea_serve::ClientError> for FaseaError {
    fn from(e: fasea_serve::ClientError) -> Self {
        FaseaError::Client(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn every_layer_converts_and_displays_with_prefix() {
        let cases: Vec<(FaseaError, &str)> = vec![
            (fasea_linalg::LinalgError::NonFinite.into(), "linalg: "),
            (
                fasea_core::ArrangementError::EventFull(fasea_core::EventId(3)).into(),
                "arrangement: ",
            ),
            (
                fasea_bandit::SnapshotError::Corrupt("x").into(),
                "snapshot: ",
            ),
            (
                fasea_sim::ServiceError::NoPendingProposal.into(),
                "service: ",
            ),
            (fasea_serve::ClientError::Malformed("y").into(), "client: "),
        ];
        for (err, prefix) in &cases {
            let msg = err.to_string();
            assert!(msg.starts_with(prefix), "{msg:?} missing {prefix:?}");
            assert!(err.source().is_some(), "{msg:?} has no source");
        }
    }

    #[test]
    fn question_mark_propagates_across_layers() {
        fn linalg_layer() -> Result<(), FaseaError> {
            // Non-SPD matrix: Cholesky must fail.
            let m = fasea_linalg::Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
            fasea_linalg::Cholesky::factor(&m)?;
            Ok(())
        }
        fn service_layer() -> Result<(), FaseaError> {
            let instance = fasea_core::ProblemInstance::basic(2, 2);
            let policy = Box::new(fasea_bandit::LinUcb::new(2, 1.0, 2.0));
            let mut svc = fasea_sim::ArrangementService::new(instance, policy);
            svc.feedback(&[true])?; // no pending proposal
            Ok(())
        }
        assert!(matches!(linalg_layer(), Err(FaseaError::Linalg(_))));
        assert!(matches!(service_layer(), Err(FaseaError::Service(_))));
    }
}

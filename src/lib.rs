//! # fasea
//!
//! A Rust implementation of **Feedback-Aware Social Event-participant
//! Arrangement** (FASEA) — She, Tong, Chen & Song, SIGMOD 2017 — the
//! contextual combinatorial bandit formulation of online
//! event-participant arrangement on event-based social networks.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — the problem model: events, conflicts, capacities,
//!   contexts, arrangements, the linear payoff model and the simulated
//!   platform environment.
//! * [`bandit`] — the policies: Thompson Sampling (Algorithm 1), the
//!   Oracle-Greedy arrangement oracle (Algorithm 2), UCB (Algorithm 3),
//!   eGreedy (Algorithm 4), Exploit, Random, OPT, and the
//!   OnlineGreedy-GEACC comparator.
//! * [`datagen`] — Table 4 synthetic workloads and the Table 3
//!   real-dataset analogue.
//! * [`sim`] — the simulation engine, metrics and reporting, including
//!   the crash-safe [`DurableArrangementService`].
//! * [`models`] — the million-user personalized estimator store: COW
//!   priors, quantized warm residency, deterministic LRU demotion, and
//!   a CRC-framed spill log — plus the store-backed `PersonalizedUcb`
//!   and `PersonalizedTs` policies.
//! * [`store`] — the write-ahead round log and snapshot store backing
//!   durability.
//! * [`serve`] — the concurrent TCP serving layer over the durable
//!   service: framed wire protocol, single-writer actor, worker pool,
//!   metrics, and the matching blocking client.
//! * [`shard`] — the sharded event universe: component-preserving
//!   partition, per-shard transaction logs, deterministic cross-shard
//!   two-phase commit, byte-identical to the single-actor service.
//! * [`stats`] / [`linalg`] — the statistical and numerical substrates.
//!
//! ## Quickstart
//!
//! ```
//! use fasea::datagen::{SyntheticConfig, SyntheticWorkload};
//! use fasea::bandit::{LinUcb, RandomPolicy, Policy};
//! use fasea::sim::{run_simulation, RunConfig};
//!
//! // A small instance: 50 events, d = 5, default capacities/conflicts.
//! let workload = SyntheticWorkload::generate(SyntheticConfig {
//!     num_events: 50,
//!     dim: 5,
//!     ..Default::default()
//! });
//! let mut policies: Vec<Box<dyn Policy>> = vec![
//!     Box::new(LinUcb::new(5, 1.0, 2.0)),
//!     Box::new(RandomPolicy::new(7)),
//! ];
//! let result = run_simulation(&workload, &mut policies, &RunConfig::paper(500));
//! // UCB learns; Random does not.
//! assert!(result.policies[0].accounting.total_rewards()
//!     >= result.policies[1].accounting.total_rewards());
//! ```

#![deny(missing_docs)]

/// The FASEA problem model (re-export of `fasea-core`).
pub use fasea_core as core;

/// Bandit policies and the arrangement oracle (re-export of
/// `fasea-bandit`).
pub use fasea_bandit as bandit;

/// Workload generators (re-export of `fasea-datagen`).
pub use fasea_datagen as datagen;

/// Simulation engine and reporting (re-export of `fasea-sim`).
pub use fasea_sim as sim;

/// Personalized per-user model store (re-export of `fasea-models`).
pub use fasea_models as models;

/// Durable storage: write-ahead log and snapshots (re-export of
/// `fasea-store`).
pub use fasea_store as store;

/// Network serving layer (re-export of `fasea-serve`).
pub use fasea_serve as serve;

/// Sharded event universe with deterministic cross-shard commit
/// (re-export of `fasea-shard`).
pub use fasea_shard as shard;

pub use fasea_shard::ShardedArrangementService;
pub use fasea_sim::{ArrangementService, DurableArrangementService, DurableOptions, ServiceError};
pub use fasea_store::FsyncPolicy;

pub mod error;
pub use error::FaseaError;

/// Statistics substrate (re-export of `fasea-stats`).
pub use fasea_stats as stats;

/// Linear-algebra substrate (re-export of `fasea-linalg`).
pub use fasea_linalg as linalg;
